"""Ablation 4 — throughput vs chain length per flavor.

The NF-FG model allows arbitrary chains; this sweep extends the Table 1
methodology to 1..6 NAT-class NFs per chain and reports throughput per
flavor.  Expected shape:

* every flavor degrades roughly as 1/(a + b·k);
* the VM flavor degrades fastest (two vm-exits per NF crossing), so
  the VM:native gap *widens* with chain length — the longer the edge
  chain, the stronger the paper's case for NNFs.
"""

import pytest

from benchmarks.conftest import print_block
from repro.catalog.templates import Technology
from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.pipeline import Stage, measure_throughput

LENGTHS = (1, 2, 3, 4, 6)
FLAVORS = (Technology.NATIVE, Technology.DOCKER, Technology.VM)


def chain_throughput(technology: Technology, length: int) -> float:
    model = CostModel()
    workload = NfWorkload.nat()
    hops = [model.nf_seconds(technology, workload, 1500,
                             uses_kernel_datapath=(
                                 technology is not Technology.VM))
            for _ in range(length)]
    chain = model.chain_seconds(hops)
    return measure_throughput([Stage("chain", chain.total)],
                              duration=0.05).throughput_mbps


@pytest.fixture(scope="module")
def curves():
    data = {flavor: {k: chain_throughput(flavor, k) for k in LENGTHS}
            for flavor in FLAVORS}
    lines = [f"{'k':>3} " + " ".join(f"{f.value:>10}" for f in FLAVORS)]
    for k in LENGTHS:
        lines.append(f"{k:>3} " + " ".join(
            f"{data[f][k]:>9.0f}M" for f in FLAVORS))
    print_block("Ablation 4: throughput vs chain length", "\n".join(lines))
    return data


def test_chain_length_benchmark(benchmark, curves):
    result = benchmark(chain_throughput, Technology.NATIVE, 3)
    assert result > 0
    native, vm = curves[Technology.NATIVE], curves[Technology.VM]
    # Monotone decrease for every flavor.
    for flavor in FLAVORS:
        series = [curves[flavor][k] for k in LENGTHS]
        assert series == sorted(series, reverse=True), flavor
    # The VM gap widens with chain length.
    assert vm[6] / native[6] < vm[1] / native[1]


def test_native_and_docker_stay_close(curves):
    for k in LENGTHS:
        ratio = (curves[Technology.DOCKER][k]
                 / curves[Technology.NATIVE][k])
        assert 0.97 <= ratio <= 1.0


def test_vm_degradation_dominated_by_vmexits(curves):
    # Removing the vm-exit cost should collapse most of the VM gap
    # (compared in per-packet service time, where costs are additive).
    def chain_seconds(model, technology):
        hops = [model.nf_seconds(technology, NfWorkload.nat(), 1500,
                                 uses_kernel_datapath=(
                                     technology is not Technology.VM))
                for _ in range(6)]
        return model.chain_seconds(hops).total

    default = CostModel()
    no_exit_model = CostModel(vmexit_seconds=0.0)
    t_native = chain_seconds(default, Technology.NATIVE)
    t_vm = chain_seconds(default, Technology.VM)
    t_vm_no_exits = chain_seconds(no_exit_model, Technology.VM)
    assert t_vm_no_exits < t_vm
    remaining_gap = t_vm_no_exits - t_native
    full_gap = t_vm - t_native
    assert remaining_gap < 0.45 * full_gap
