"""Ablation 2 — the adaptation layer's marking mechanism (paper §2).

The single-interface adaptation layer costs two VLAN operations per
packet on the trunk plus the per-graph demux rules inside the NNF.
This bench measures both halves:

* functional: frames of G multiplexed graphs through one shared NNF
  trunk, verifying zero cross-graph leakage at increasing G;
* timing: per-packet overhead of VLAN push/pop + mark rules vs an
  untagged dedicated port.
"""

import pytest

from benchmarks.conftest import print_block
from repro import ComputeNode, Nffg
from repro.catalog.templates import Technology
from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.pipeline import Stage, measure_throughput

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


def multiplexed_node(graphs: int) -> ComputeNode:
    node = ComputeNode("ablation-marking")
    node.add_physical_interface("wan0")
    for index in range(1, graphs + 1):
        node.add_physical_interface(f"lan{index}")
        graph = Nffg(graph_id=f"m{index}")
        graph.add_nf("nat", "nat", config={
            "lan.address": f"10.{index}.0.1/24",
            "wan.address": f"100.64.{index}.2/24",
            "gateway": f"100.64.{index}.1",
        })
        graph.add_endpoint("lan", f"lan{index}")
        graph.add_endpoint("wan", "wan0")
        graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat:lan")
        graph.add_flow_rule("r2", "vnf:nat:lan", "endpoint:lan")
        graph.add_flow_rule("r3", "vnf:nat:wan", "endpoint:wan")
        graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat:wan",
                            ip_dst=f"100.64.{index}.0/24")
        node.deploy(graph)
    return node


def drive_all_graphs(node: ComputeNode, graphs: int) -> dict[str, str]:
    """Send one flow per graph; returns {payload: egress source ip}."""
    seen: dict[str, str] = {}
    wire = node.wire("wan0")
    wire.attach_handler(lambda dev, frame: seen.update({
        parse_frame(frame).udp.payload.decode():
        parse_frame(frame).ipv4.src}))
    try:
        for index in range(1, graphs + 1):
            node.wire(f"lan{index}").transmit(make_udp_frame(
                CLIENT, REMOTE, f"10.{index}.0.9", "8.8.8.8",
                2000 + index, 53, f"graph{index}".encode()))
    finally:
        wire.detach_handler()
    return seen


def overhead_percent(tagged: bool, marking_rules: int) -> float:
    model = CostModel()
    base = model.chain_seconds([model.nf_seconds(
        Technology.NATIVE, NfWorkload.nat(), 1500)])
    with_marking = model.chain_seconds([model.nf_seconds(
        Technology.NATIVE, NfWorkload.nat(), 1500,
        marking_rules=marking_rules, tagged_port=tagged)])
    slow = measure_throughput([Stage("c", with_marking.total)],
                              duration=0.05).throughput_mbps
    fast = measure_throughput([Stage("c", base.total)],
                              duration=0.05).throughput_mbps
    return 100.0 * (fast - slow) / fast


@pytest.fixture(scope="module")
def report():
    lines = ["correctness: graphs multiplexed over one trunk -> own pool"]
    for graphs in (2, 4, 8):
        node = multiplexed_node(graphs)
        seen = drive_all_graphs(node, graphs)
        ok = all(seen.get(f"graph{i}") == f"100.64.{i}.2"
                 for i in range(1, graphs + 1))
        lines.append(f"  G={graphs}: {len(seen)} egress flows, "
                     f"isolation {'OK' if ok else 'VIOLATED'}")
    lines.append("marking overhead vs dedicated untagged port:")
    for graphs in (1, 4, 16, 64):
        pct = overhead_percent(tagged=True, marking_rules=graphs)
        lines.append(f"  G={graphs:<3} {pct:5.2f}% throughput tax")
    print_block("Ablation 2: adaptation-layer marking", "\n".join(lines))
    return None


def test_marking_benchmark(benchmark, report):
    """Times the 4-graph multiplexed deployment + correctness drive."""
    def run():
        node = multiplexed_node(4)
        return drive_all_graphs(node, 4)
    seen = benchmark(run)
    assert len(seen) == 4
    for index in range(1, 5):
        assert seen[f"graph{index}"] == f"100.64.{index}.2"


def test_marking_overhead_small_at_cpe_scale(report):
    # A CPE hosts a handful of graphs; the tax must stay tiny.
    assert overhead_percent(tagged=True, marking_rules=4) < 5.0


def test_marking_overhead_grows_with_rules(report):
    assert (overhead_percent(tagged=True, marking_rules=64)
            > overhead_percent(tagged=True, marking_rules=1))
