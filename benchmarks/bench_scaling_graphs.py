"""Scale-1 — orchestration scalability in the number of NF-FGs.

Figure 1 shows "LSI - graph 1 ... LSI - graph N": the architecture
creates per-graph state (an LSI, a controller channel, flow entries,
namespaces).  This bench sweeps N and reports deploy time, flow-entry
counts, control-channel traffic and node RAM — the orchestration-plane
cost curve of the architecture.  Expected shape: all linear in N
(no superlinear blow-up), with native placement keeping RAM flat-ish.
"""

import pytest

from benchmarks.conftest import print_block
from repro import ComputeNode, Nffg

SWEEP = (1, 2, 4, 8)


def subscriber_graph(index: int) -> Nffg:
    graph = Nffg(graph_id=f"s{index}")
    graph.add_nf("nat", "nat", config={
        "lan.address": f"10.{index}.0.1/24",
        "wan.address": f"100.64.{index}.2/24",
        "gateway": f"100.64.{index}.1",
    })
    graph.add_endpoint("lan", f"lan{index}")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat:lan")
    graph.add_flow_rule("r2", "vnf:nat:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat:wan",
                        ip_dst=f"100.64.{index}.0/24")
    return graph


def deploy_n(n: int) -> ComputeNode:
    node = ComputeNode("scaling-node")
    node.add_physical_interface("wan0")
    for index in range(1, n + 1):
        node.add_physical_interface(f"lan{index}")
        node.deploy(subscriber_graph(index))
    return node


def stats_for(n: int) -> dict:
    node = deploy_n(n)
    flow_entries = sum(node.steering.flow_counts().values())
    control_messages = (
        node.steering.base_controller.channel.messages_exchanged
        + sum(net.controller.channel.messages_exchanged
              for net in node.steering.graphs.values()))
    ram = sum(i.runtime_ram_mb for i in node.compute.instances())
    namespaces = len(node.host.namespaces)
    return {"flows": flow_entries, "control_msgs": control_messages,
            "ram_mb": ram, "netns": namespaces,
            "lsis": 1 + len(node.steering.graphs)}


@pytest.fixture(scope="module")
def sweep():
    data = {n: stats_for(n) for n in SWEEP}
    lines = [f"{'N':>3} {'LSIs':>5} {'flows':>6} {'ctrl-msgs':>10} "
             f"{'netns':>6} {'RAM MB':>8}"]
    for n, row in data.items():
        lines.append(f"{n:>3} {row['lsis']:>5} {row['flows']:>6} "
                     f"{row['control_msgs']:>10} {row['netns']:>6} "
                     f"{row['ram_mb']:>8.1f}")
    print_block("Scale-1: N concurrent NF-FGs", "\n".join(lines))
    return data


def test_scaling_deploy_benchmark(benchmark, sweep):
    node = benchmark(deploy_n, 4)
    assert len(node.steering.graphs) == 4
    # Linear flow growth: flows(8)/flows(2) ~ 4, well under quadratic.
    assert sweep[8]["flows"] <= 4.5 * sweep[2]["flows"]
    assert sweep[8]["lsis"] == 9


def test_control_channel_traffic_linear(sweep):
    growth = sweep[8]["control_msgs"] / sweep[1]["control_msgs"]
    assert growth < 10  # ~linear; 8x graphs => <10x messages


def test_shared_nnf_keeps_ram_flat(sweep):
    # All subscribers share the native NAT: RAM independent of N.
    assert sweep[8]["ram_mb"] == pytest.approx(sweep[1]["ram_mb"],
                                               abs=1.0)


def test_one_shared_namespace_not_n(sweep):
    # root + 1 shared NNF namespace, regardless of N.
    assert sweep[8]["netns"] == sweep[1]["netns"] == 2
