"""Dataplane pps sweep: indexed flow lookup + batched LSI-chain pipeline.

Sweeps flow-table sizes (10/100/1k/5k entries) against the pre-PR
linear scan, and chain lengths for the batched pipeline; writes
``BENCH_dataplane.json`` so later PRs can track the pps trajectory.

Run with pytest (perf marker)::

    PYTHONPATH=src python -m pytest -m perf benchmarks/bench_dataplane_pps.py -s

or standalone::

    PYTHONPATH=src python benchmarks/bench_dataplane_pps.py
"""

import os
import sys

import pytest

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.conftest import bench_json_path, print_block
from repro.perf.dataplane import check_results, format_results, \
    run_dataplane_bench, write_bench_json

@pytest.fixture(scope="module")
def results(request):
    # Sweep parameters are the run_dataplane_bench defaults so this
    # entry point and tests/test_perf_dataplane.py cannot drift.
    data = run_dataplane_bench()
    print_block("Dataplane pps: indexed lookup + batched pipeline",
                format_results(data))
    path = bench_json_path(request.config)
    write_bench_json(data, path)
    print(f"wrote {path}")
    return data


@pytest.mark.perf
def test_acceptance_criteria(results):
    check_results(results)  # >=10x at 1k entries, parse_cidr-free


@pytest.mark.perf
def test_speedup_grows_with_table_size(results):
    speedups = [p["speedup"] for p in results["lookup"]]
    assert speedups[-1] > speedups[0], speedups


@pytest.mark.perf
def test_batched_chain_not_slower(results):
    for point in results["chain"]:
        assert point["speedup"] > 0.9, point


def main() -> None:
    data = run_dataplane_bench()
    print_block("Dataplane pps: indexed lookup + batched pipeline",
                format_results(data))
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_dataplane.json")
    write_bench_json(data, path)
    print(f"wrote {path}")
    check_results(data)


if __name__ == "__main__":
    main()
