"""Dataplane pps sweep: flow lookup, compiled actions, batched chains.

Sweeps flow-table sizes (10/100/1k/5k entries — small-table bypass
below 17, two-level index above) against the pre-PR linear scan, the
compiled action closures against the interpreted reference loop per
steering shape, and chain lengths for the batched pipeline vs
per-frame interpretation; writes ``BENCH_dataplane.json`` so later PRs
can track the pps trajectory.

Run with pytest (perf marker)::

    PYTHONPATH=src python -m pytest -m perf benchmarks/bench_dataplane_pps.py -s

or standalone::

    PYTHONPATH=src python benchmarks/bench_dataplane_pps.py
"""

import os
import sys

import pytest

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from benchmarks.conftest import bench_json_path, print_block
from repro.perf.dataplane import check_results, format_results, \
    run_dataplane_bench, write_bench_json

@pytest.fixture(scope="module")
def results(request):
    # Sweep parameters are the run_dataplane_bench defaults so this
    # entry point and tests/test_perf_dataplane.py cannot drift.
    quick = request.config.getoption("--quick")
    data = run_dataplane_bench(quick=quick)
    print_block("Dataplane pps: indexed lookup + batched pipeline",
                format_results(data))
    if not quick:  # the trajectory artifact always comes from a full sweep
        path = bench_json_path(request.config)
        write_bench_json(data, path)
        print(f"wrote {path}")
    return data


@pytest.mark.perf
def test_acceptance_criteria(results):
    # check_results is the single source of truth for every threshold:
    # >=10x at 1k entries, >=1.3x chain batching, no small-table
    # regression, compiled actions not slower on average, parse_cidr-free.
    check_results(results)


@pytest.mark.perf
def test_speedup_grows_with_table_size(results):
    speedups = [p["speedup"] for p in results["lookup"]]
    if len(speedups) < 2:
        pytest.skip("quick sweep has a single table size")
    assert speedups[-1] > speedups[0], speedups


def main() -> None:
    data = run_dataplane_bench()
    print_block("Dataplane pps: indexed lookup + batched pipeline",
                format_results(data))
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_dataplane.json")
    write_bench_json(data, path)
    print(f"wrote {path}")
    check_results(data)


if __name__ == "__main__":
    main()
