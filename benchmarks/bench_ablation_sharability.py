"""Ablation 1 — sharable NNF vs per-graph instances (paper §2).

Design question: what does the sharability machinery buy (and cost)?

* RAM: K graphs through one shared component vs K dedicated instances
  (per-graph namespaces) vs K Docker containers vs K VMs;
* throughput: the shared instance pays the marking tax (mark rules
  scanned per packet + VLAN ops on the trunk) — quantified per K.

Expected shape: shared-NNF RAM is flat in K while every alternative
grows linearly; the marking tax stays single-digit percent for
CPE-scale K.
"""

import pytest

from benchmarks.conftest import print_block
from repro import ComputeNode, Nffg
from repro.catalog.templates import Technology
from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.pipeline import Stage, measure_throughput

K_GRAPHS = 4


def nat_graph(index: int, technology=None) -> Nffg:
    graph = Nffg(graph_id=f"t{index}")
    graph.add_nf("nat", "nat", technology=technology, config={
        "lan.address": f"10.{index}.0.1/24",
        "wan.address": f"100.64.{index}.2/24",
        "gateway": f"100.64.{index}.1",
    })
    graph.add_endpoint("lan", f"lan{index}")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat:lan")
    graph.add_flow_rule("r2", "vnf:nat:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat:wan",
                        ip_dst=f"100.64.{index}.0/24")
    return graph


def deploy_k(technology, k: int = K_GRAPHS) -> ComputeNode:
    node = ComputeNode("ablation-shar")
    node.add_physical_interface("wan0")
    for index in range(1, k + 1):
        node.add_physical_interface(f"lan{index}")
        node.deploy(nat_graph(index, technology))
    return node


def ram_for(technology, k: int = K_GRAPHS) -> float:
    node = deploy_k(technology, k)
    return sum(i.runtime_ram_mb for i in node.compute.instances())


def shared_throughput_mbps(k: int) -> float:
    """Throughput of one graph when the NNF is shared k ways."""
    model = CostModel()
    nf = model.nf_seconds(Technology.NATIVE, NfWorkload.nat(), 1500,
                          marking_rules=k, tagged_port=True)
    chain = model.chain_seconds([nf])
    return measure_throughput([Stage("chain", chain.total)],
                              duration=0.1).throughput_mbps


@pytest.fixture(scope="module")
def report():
    rows = {
        "native (shared)": ram_for(None),
        "docker x K": ram_for("docker"),
        "vm x K": ram_for("vm"),
    }
    tput = {k: shared_throughput_mbps(k) for k in (1, 2, 4, 8, 16)}
    body = [f"RAM for K={K_GRAPHS} NAT graphs:"]
    body += [f"  {name:<16} {ram:8.1f} MB" for name, ram in rows.items()]
    body.append("throughput per graph vs sharing degree (marking tax):")
    body += [f"  K={k:<3} {mbps:8.0f} Mbps" for k, mbps in tput.items()]
    print_block("Ablation 1: sharability", "\n".join(body))
    return rows, tput


def test_sharability_ram_benchmark(benchmark, report):
    rows, tput = report
    total = benchmark(ram_for, None, K_GRAPHS)
    # One shared kernel component: RAM flat, far below K containers.
    assert total < rows["docker x K"] / 5
    assert rows["docker x K"] < rows["vm x K"] / 5
    # Marking tax stays below ~10% at CPE scale (K=8) and grows
    # monotonically with the sharing degree.
    assert tput[8] > 0.90 * tput[1]
    assert tput[1] >= tput[8] >= tput[16]


def test_shared_ram_flat_in_k(report):
    assert abs(ram_for(None, 2) - ram_for(None, 6)) < 1.0


def test_dedicated_ram_linear_in_k():
    two = ram_for("docker", 2)
    six = ram_for("docker", 6)
    assert six == pytest.approx(3 * two, rel=0.05)
