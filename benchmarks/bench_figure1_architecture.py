"""Figure 1 — the compute-node architecture, instantiated and measured.

Figure 1 is an architecture diagram, not a data plot; the reproducible
artefact is the *structure*: one REST front-end, a base LSI classifying
node traffic, one LSI + OpenFlow controller per deployed NF-FG,
virtual links between LSIs, and per-technology management drivers
coexisting under one compute manager.  The bench deploys N
mixed-technology graphs through the REST API, verifies every
architectural invariant, and times the full deploy path (the
orchestration-plane cost the architecture implies).
"""

import pytest

from benchmarks.conftest import print_block
from repro import ComputeNode, Nffg, RestApp, RestClient

N_GRAPHS = 4


def service_graph(index: int) -> Nffg:
    """Firewall (native) + DPI (docker) chain, one per subscriber."""
    graph = Nffg(graph_id=f"g{index}", name=f"subscriber {index}")
    graph.add_nf("fw", "firewall", config={
        "lan.address": f"10.{index}.0.1/24",
        "wan.address": f"10.{index}.1.1/24",
        "gateway": f"10.{index}.1.2",
    })
    graph.add_nf("dpi1", "dpi")
    graph.add_endpoint("lan", f"lan{index}")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan")
    graph.add_flow_rule("r2", "vnf:fw:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:fw:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r4", "vnf:dpi1:in", "vnf:fw:wan")
    graph.add_flow_rule("r5", "vnf:dpi1:out", "endpoint:wan")
    graph.add_flow_rule("r6", "endpoint:wan", "vnf:dpi1:out",
                        ip_dst=f"10.{index}.0.0/24")
    return graph


def deploy_node(n_graphs: int = N_GRAPHS):
    # A branch-office x86 node: enough cores for N DPI containers
    # (the residential profile would refuse the third DPI on CPU).
    from repro.resources.capabilities import NodeCapabilities, NodeClass
    capabilities = NodeCapabilities(
        node_class=NodeClass.CPE, cpu_cores=16, cpu_mhz=2400,
        ram_mb=16384, disk_mb=65536,
        features=frozenset({"native", "docker", "kvm", "linux",
                            "netns", "iptables", "xfrm"}))
    node = ComputeNode("figure1-node", capabilities=capabilities)
    node.add_physical_interface("wan0")
    client = RestClient(RestApp(node))
    for index in range(1, n_graphs + 1):
        node.add_physical_interface(f"lan{index}")
        client.deploy_graph(service_graph(index))
    return node, client


@pytest.fixture(scope="module")
def deployed():
    node, client = deploy_node()
    lines = [
        f"graphs deployed via REST: {client.list_graphs()}",
        f"LSIs: LSI-0 + {len(node.steering.graphs)} graph LSIs",
        f"flow entries per LSI: {node.steering.flow_counts()}",
        f"driver technologies registered: "
        f"{[t.value for t in node.compute.technologies]}",
        f"REST requests served: {client.app.requests_served}",
    ]
    print_block("Figure 1: compute node architecture", "\n".join(lines))
    return node, client


def test_figure1_deploy_benchmark(benchmark):
    """Times bringing up the whole node with N graphs via REST,
    asserting the architectural invariants on the result."""
    node, client = benchmark(deploy_node)
    # One LSI per NF-FG plus the base LSI.
    assert len(node.steering.graphs) == N_GRAPHS
    assert node.steering.base.is_base
    for network in node.steering.graphs.values():
        # Each graph LSI has its own connected OpenFlow controller...
        assert network.controller.connected
        assert network.controller.dpid == network.lsi.datapath.dpid
        # ...and a virtual link to LSI-0.
        assert network.link.far_port(node.steering.base.datapath)
        assert network.link.far_port(network.lsi.datapath)
    # Multiple driver technologies coexist under the compute manager.
    technologies = {i.technology.value
                    for i in node.compute.instances()}
    assert {"native", "docker"} <= technologies
    # The REST front-end reports description, capabilities, resources.
    description = client.node_description()
    assert description["deployed-graphs"] == [
        f"g{i}" for i in range(1, N_GRAPHS + 1)]
    assert description["utilisation"]["ram"] > 0


def test_every_flow_mod_crossed_the_control_channel(deployed):
    node, _client = deployed
    # Rules are installed exclusively through the per-LSI controllers.
    total_sent = node.steering.base_controller.flow_mods_sent + sum(
        network.controller.flow_mods_sent
        for network in node.steering.graphs.values())
    total_installed = sum(node.steering.flow_counts().values())
    assert total_installed > 0
    assert total_sent >= total_installed


def test_lsi0_classifies_per_graph(deployed):
    node, _client = deployed
    # Every graph's LAN ingress rule lives in LSI-0 and forwards over
    # that graph's virtual link (the classification role).
    base_table = node.steering.base.datapath.table
    vlink_ports = {network.base_link_port.port_no
                   for network in node.steering.graphs.values()}
    forwarded = set()
    for entry in base_table:
        for action in entry.actions:
            port = getattr(action, "port", None)
            if port in vlink_ports:
                forwarded.add(port)
    assert forwarded == vlink_ports


def test_rest_status_reports_placements(deployed):
    _node, client = deployed
    status = client.graph_status("g1")
    assert status["nfs"]["fw"]["technology"] == "native"
    assert status["nfs"]["dpi1"]["technology"] == "docker"
    assert status["nfs"]["fw"]["state"] == "running"


def test_undeploy_via_rest_removes_lsi(deployed):
    node, client = deployed
    before = len(node.steering.graphs)
    extra = service_graph(99)
    node.add_physical_interface("lan99")
    client.deploy_graph(extra)
    assert len(node.steering.graphs) == before + 1
    client.undeploy_graph("g99")
    assert len(node.steering.graphs) == before
