"""Ablation 5 — service activation latency per flavor.

The paper's image-size column is not just disk: it is what must cross
the subscriber's access link before a service activates, plus the
technology's instantiation time.  This bench models end-to-end
activation (image pull over a 100 Mbps access link when absent +
instantiation) for the Table 1 IPsec NF, and measures the *orchestrator
overhead* (wall-clock deploy path) separately.

Expected shape: native activates in well under a second (package is
5 MB and usually pre-installed); Docker pays a one-time ~20 s pull then
sub-second starts; the VM pays both a 40+ s pull and a ~24 s boot.
"""

import pytest

from benchmarks.conftest import print_block
from repro import ComputeNode
from repro.catalog.templates import Technology
from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.native import NativeDriver
from repro.compute.drivers.vm_kvm import KvmDriver
from repro.perf.table1 import ipsec_cpe_graph
from repro.resources.images import ImageRegistry

ACCESS_LINK_MBPS = 100.0

_BOOT = {Technology.VM: KvmDriver.boot_seconds,
         Technology.DOCKER: DockerDriver.boot_seconds,
         Technology.NATIVE: NativeDriver.boot_seconds}
_IMAGE = {Technology.VM: "strongswan-vm",
          Technology.DOCKER: "strongswan-docker",
          Technology.NATIVE: "strongswan-native"}


def activation_seconds(technology: Technology, image_cached: bool) -> float:
    images = ImageRegistry.stock()
    pull = 0.0 if image_cached else images.transfer_seconds(
        _IMAGE[technology], link_mbps=ACCESS_LINK_MBPS)
    return pull + _BOOT[technology]


def orchestrator_wall_seconds(technology: Technology) -> float:
    node = ComputeNode(f"lat-{technology.value}")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    record = node.deploy(ipsec_cpe_graph("lat", technology.value))
    return record.wall_deploy_seconds


@pytest.fixture(scope="module")
def report():
    rows = {}
    for technology in (Technology.VM, Technology.DOCKER,
                       Technology.NATIVE):
        rows[technology] = {
            "cold": activation_seconds(technology, image_cached=False),
            "warm": activation_seconds(technology, image_cached=True),
        }
    lines = [f"{'flavor':<10} {'cold start':>12} {'image cached':>14}"]
    for technology, row in rows.items():
        lines.append(f"{technology.value:<10} {row['cold']:>10.1f}s "
                     f"{row['warm']:>12.1f}s")
    print_block("Ablation 5: service activation latency "
                f"({ACCESS_LINK_MBPS:.0f} Mbps access link)",
                "\n".join(lines))
    return rows


def test_deploy_latency_benchmark(benchmark, report):
    """Wall-clock orchestration overhead for the native deploy path."""
    wall = benchmark(orchestrator_wall_seconds, Technology.NATIVE)
    assert wall < 1.0  # orchestrator itself is not the bottleneck
    # Modeled activation shape (the thing subscribers feel):
    assert report[Technology.NATIVE]["cold"] < 1.0
    assert report[Technology.DOCKER]["cold"] > 10.0
    assert report[Technology.VM]["cold"] > 60.0
    # Warm starts: VM still pays the guest boot; containers do not.
    assert report[Technology.VM]["warm"] > 20.0
    assert report[Technology.DOCKER]["warm"] < 1.0


def test_cold_start_ordering(report):
    assert (report[Technology.NATIVE]["cold"]
            < report[Technology.DOCKER]["cold"]
            < report[Technology.VM]["cold"])


def test_pull_time_proportional_to_image(report):
    vm_pull = (report[Technology.VM]["cold"]
               - report[Technology.VM]["warm"])
    native_pull = (report[Technology.NATIVE]["cold"]
                   - report[Technology.NATIVE]["warm"])
    assert vm_pull / native_pull == pytest.approx(522 / 5, rel=0.01)
