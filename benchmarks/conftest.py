"""Shared helpers for the benchmark suite.

The ``perf`` marker and the ``--bench-json`` option are registered by
the repo-root ``conftest.py`` (pytest only honors ``pytest_addoption``
in root conftests); :func:`bench_json_path` resolves the option for
benches run from either entry point.
"""

def print_block(title: str, body: str) -> None:
    """Readable experiment output inside pytest-benchmark runs."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def bench_json_path(config) -> str:
    """Where perf benches should write their JSON results."""
    try:
        return config.getoption("--bench-json")
    except (ValueError, KeyError):  # option not registered (isolated run)
        # Single source of truth for the default path is the root
        # conftest; load it by file to dodge conftest-module renaming.
        import importlib.util
        import os
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec = importlib.util.spec_from_file_location(
            "_root_conftest", os.path.join(root, "conftest.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.DEFAULT_BENCH_JSON
