"""Shared helpers for the benchmark suite."""

import pytest


def print_block(title: str, body: str) -> None:
    """Readable experiment output inside pytest-benchmark runs."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
