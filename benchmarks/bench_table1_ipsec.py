"""Table 1 — IPsec client NF as KVM/QEMU vs Docker vs Native NF.

Regenerates every cell of the paper's Table 1 (max throughput, runtime
RAM, image size) from the deployed system + calibrated models, prints
the paper-vs-measured table, and asserts the result *shape*:

* the VM flavor is markedly slowest (paper ratio 796/1094 = 0.73);
* Docker and Native throughput are within a few percent;
* RAM ordering VM >> Docker > Native;
* image ordering VM > Docker >> Native (two orders of magnitude).
"""

import pytest

from benchmarks.conftest import print_block
from repro.perf.table1 import (
    PAPER_TABLE1,
    render_table,
    run_table1,
)


@pytest.fixture(scope="module")
def table1_rows():
    rows = run_table1(duration=0.2)
    print_block("Table 1: IPsec endpoint, three flavors",
                render_table(rows))
    return {row.flavor: row for row in rows}


def test_table1_benchmark(benchmark, table1_rows):
    """Times one full Table 1 regeneration (3 deployments + DES runs)
    and asserts the shape inline so --benchmark-only runs validate too."""
    rows = benchmark(run_table1, duration=0.05)
    assert len(rows) == 3
    by_flavor = {row.flavor: row for row in rows}
    vm, docker, native = (by_flavor["vm"], by_flavor["docker"],
                          by_flavor["native"])
    assert vm.probe_delivered and vm.esp_on_wire
    assert 0.65 <= vm.throughput_mbps / native.throughput_mbps <= 0.82
    assert 0.97 <= docker.throughput_mbps / native.throughput_mbps <= 1.03
    assert vm.ram_mb > 10 * docker.ram_mb > 10 * native.ram_mb / 2
    assert vm.image_mb > docker.image_mb > native.image_mb


def test_dataplane_probes_deliver_and_encrypt(table1_rows):
    for flavor, row in table1_rows.items():
        assert row.probe_delivered, f"{flavor}: dataplane black-holed"
        assert row.esp_on_wire, f"{flavor}: payload left in cleartext"


def test_throughput_shape(table1_rows):
    vm = table1_rows["vm"].throughput_mbps
    docker = table1_rows["docker"].throughput_mbps
    native = table1_rows["native"].throughput_mbps
    # VM markedly worst: paper ratio 0.727; accept a band around it.
    assert 0.65 <= vm / native <= 0.82, (vm, native)
    # Docker ~= native (paper: 1095 vs 1094).
    assert 0.97 <= docker / native <= 1.03, (docker, native)


def test_throughput_within_band_of_paper(table1_rows):
    for flavor, row in table1_rows.items():
        paper = PAPER_TABLE1[flavor]["throughput_mbps"]
        assert abs(row.throughput_mbps - paper) / paper < 0.10, (
            flavor, row.throughput_mbps, paper)


def test_ram_shape(table1_rows):
    vm = table1_rows["vm"].ram_mb
    docker = table1_rows["docker"].ram_mb
    native = table1_rows["native"].ram_mb
    assert vm > 10 * docker            # paper: 390.6 vs 24.2
    assert docker > native             # paper: 24.2 vs 19.4
    for flavor in ("vm", "docker", "native"):
        paper = PAPER_TABLE1[flavor]["ram_mb"]
        measured = table1_rows[flavor].ram_mb
        assert abs(measured - paper) / paper < 0.10, (flavor, measured)


def test_image_shape(table1_rows):
    vm = table1_rows["vm"].image_mb
    docker = table1_rows["docker"].image_mb
    native = table1_rows["native"].image_mb
    assert vm > docker > native
    assert vm / native > 50            # paper: 522 / 5 ≈ 104×
    for flavor in ("vm", "docker", "native"):
        paper = PAPER_TABLE1[flavor]["image_mb"]
        measured = table1_rows[flavor].image_mb
        assert abs(measured - paper) / paper < 0.15, (flavor, measured)
