"""Ablation 3 — placement policy across CPE and data center (paper §1).

Compares three policies for a subscriber service of five NFs:

* ``nnf-first`` (the paper's): pin user-proximate NFs to the CPE as
  NNFs, overflow to the DC;
* ``vm-only``: classic NFV — everything is a VM in the DC;
* ``cpe-only-vnf``: VNFs on the CPE without the native option.

Reported per policy: CPE RAM consumed, NFs placeable at the edge, and
aggregate image bytes to transfer.  Expected shape: nnf-first keeps the
user-proximate NFs at the edge for ~an order of magnitude less CPE RAM
than VM packaging, and vm-only cannot place anything on a KVM-less CPE.
"""

import pytest

from benchmarks.conftest import print_block
from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import ResolutionPolicy, VnfResolver
from repro.catalog.scheduler import NodeDescriptor, PlacementError, VnfScheduler
from repro.catalog.templates import Technology
from repro.nnf.plugins import stock_registry
from repro.resources.capabilities import NodeCapabilities
from repro.resources.images import ImageRegistry

SERVICE = ("ipsec-endpoint", "nat", "firewall", "dhcp-server", "dpi")


def schedule(policy: str):
    repository = VnfRepository.stock()
    cpe_caps = NodeCapabilities.residential_cpe()
    dc_caps = NodeCapabilities.datacenter_server()
    nnfs = stock_registry()
    if policy == "nnf-first":
        cpe_resolver = VnfResolver(cpe_caps, nnf_status=nnfs.availability,
                                   policy=ResolutionPolicy.PREFER_NATIVE)
    elif policy == "vm-only":
        # Classic NFV: the only packaging is a full VM.  The home CPE
        # has no KVM, so nothing can run at the edge.
        vm_only_caps = NodeCapabilities(
            node_class=cpe_caps.node_class,
            cpu_cores=cpe_caps.cpu_cores, cpu_mhz=cpe_caps.cpu_mhz,
            ram_mb=cpe_caps.ram_mb, disk_mb=cpe_caps.disk_mb,
            features=frozenset({"linux"}))
        cpe_caps = vm_only_caps
        cpe_resolver = VnfResolver(cpe_caps,
                                   policy=ResolutionPolicy.PREFER_VM)
    else:
        # Resolver that never sees native plugins as installed.
        from repro.catalog.resolver import NnfAvailability
        cpe_resolver = VnfResolver(
            cpe_caps, nnf_status=lambda name: NnfAvailability(
                installed=False),
            policy=ResolutionPolicy.MIN_RAM)
    nodes = [NodeDescriptor("cpe", cpe_caps, cpe_resolver)]
    if policy != "cpe-only-vnf":
        nodes.append(NodeDescriptor(
            "dc", dc_caps, VnfResolver(
                dc_caps, policy=ResolutionPolicy.PREFER_VM)))
    scheduler = VnfScheduler(nodes)
    templates = [repository.get(name) for name in SERVICE]
    return scheduler.schedule(templates)


def summarise(placements):
    images = ImageRegistry.stock()
    cpe_ram = sum(p.implementation.ram_mb for p in placements
                  if p.node == "cpe")
    on_cpe = sum(1 for p in placements if p.node == "cpe")
    native = sum(1 for p in placements if p.is_native)
    transfer = sum(images.get(p.implementation.image).size_mb
                   for p in placements)
    return {"cpe_ram_mb": cpe_ram, "nfs_on_cpe": on_cpe,
            "native_nfs": native, "image_transfer_mb": transfer}


@pytest.fixture(scope="module")
def report():
    rows = {}
    for policy in ("nnf-first", "vm-only"):
        rows[policy] = summarise(schedule(policy))
    try:
        rows["cpe-only-vnf"] = summarise(schedule("cpe-only-vnf"))
    except PlacementError as exc:
        rows["cpe-only-vnf"] = {"error": str(exc)}
    lines = [f"service: {', '.join(SERVICE)}"]
    for policy, stats in rows.items():
        lines.append(f"  {policy:<14} {stats}")
    print_block("Ablation 3: placement policies", "\n".join(lines))
    return rows


def test_placement_benchmark(benchmark, report):
    placements = benchmark(schedule, "nnf-first")
    by_name = {p.nf_name: p for p in placements}
    # Proximity-pinned NFs stay at the edge, natively.
    assert by_name["ipsec-endpoint"].node == "cpe"
    assert by_name["ipsec-endpoint"].is_native
    assert by_name["nat"].is_native
    # The heavy DPI overflows to the data center.
    assert by_name["dpi"].node == "dc"
    assert by_name["dpi"].implementation.technology in (
        Technology.VM, Technology.DOCKER)


def test_nnf_first_uses_far_less_cpe_ram(report):
    nnf_first = report["nnf-first"]["cpe_ram_mb"]
    vm_only = report["vm-only"]["cpe_ram_mb"]
    # vm-only cannot run VMs on the KVM-less CPE at all, or pays dearly.
    assert nnf_first < 60
    assert report["nnf-first"]["nfs_on_cpe"] >= 4


def test_vm_only_cannot_use_the_cpe(report):
    # Without native plugins and KVM the CPE hosts nothing; everything
    # hairpins through the data center.
    assert report["vm-only"]["nfs_on_cpe"] == 0


def test_cpe_only_vnf_fails_for_full_service(report):
    # A CPE-only deployment without NNFs cannot place the service.
    assert "error" in report["cpe-only-vnf"]


def test_image_transfer_favours_nnf(report):
    assert (report["nnf-first"]["image_transfer_mb"]
            < report["vm-only"]["image_transfer_mb"])
