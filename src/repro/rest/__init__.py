"""REST front-end of the compute node (Figure 1's "REST server").

The API mirrors the un-orchestrator's north-bound interface:

=======  ============================  =======================================
method   path                          meaning
=======  ============================  =======================================
GET      /                             node description, capabilities, resources
GET      /nffg                         ids of deployed graphs
PUT      /nffg/{id}                    deploy (or update) the NF-FG in the body
GET      /nffg/{id}                    the deployed graph document
GET      /nffg/{id}/status             placement/state/RAM per NF
DELETE   /nffg/{id}                    undeploy
GET      /nnfs                         native-function inventory
=======  ============================  =======================================

The application object is transport-independent: the in-process
:class:`~repro.rest.client.RestClient` calls it directly (tests,
examples), and :mod:`repro.rest.server` exposes the same app over a
real HTTP socket for interactive use.
"""

from repro.rest.app import HttpError, Request, Response, RestApp
from repro.rest.client import RestClient
from repro.rest.server import serve_node

__all__ = ["HttpError", "Request", "Response", "RestApp", "RestClient",
           "serve_node"]
