"""In-process REST client: the test/example-facing API surface."""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.nffg.json_codec import nffg_to_dict
from repro.nffg.model import Nffg
from repro.rest.app import Response, RestApp

__all__ = ["RestClient"]


class RestClient:
    """Calls the app directly — same requests, no socket."""

    def __init__(self, app: RestApp) -> None:
        self.app = app

    # -- generic verbs ------------------------------------------------------------
    def get(self, path: str) -> Response:
        return self.app.handle("GET", path)

    def put(self, path: str, document: Any) -> Response:
        return self.app.handle("PUT", path,
                               json.dumps(document).encode())

    def delete(self, path: str) -> Response:
        return self.app.handle("DELETE", path)

    def post(self, path: str, document: Any = None) -> Response:
        body = b"" if document is None else json.dumps(document).encode()
        return self.app.handle("POST", path, body)

    # -- convenience --------------------------------------------------------------
    def node_description(self) -> dict:
        return self._expect(self.get("/"), 200)

    def deploy_graph(self, graph: Nffg) -> dict:
        response = self.put(f"/nffg/{graph.graph_id}", nffg_to_dict(graph))
        if response.status not in (200, 201):
            raise RuntimeError(
                f"deploy failed ({response.status}): {response.body}")
        return response.body

    def graph_status(self, graph_id: str) -> dict:
        return self._expect(self.get(f"/nffg/{graph_id}/status"), 200)

    def undeploy_graph(self, graph_id: str) -> None:
        self._expect(self.delete(f"/nffg/{graph_id}"), 204)

    def list_graphs(self) -> list[str]:
        return self._expect(self.get("/nffg"), 200)["nffgs"]

    def list_nnfs(self) -> list[dict]:
        return self._expect(self.get("/nnfs"), 200)["nnfs"]

    def graph_events(self, graph_id: str) -> list[dict]:
        return self._expect(
            self.get(f"/graphs/{graph_id}/events"), 200)["events"]

    def reconcile_graph(self, graph_id: str) -> dict:
        return self._expect(self.post(f"/graphs/{graph_id}/reconcile"), 200)

    def graph_policies(self, graph_id: str) -> list[dict]:
        return self._expect(self.get(f"/graphs/{graph_id}/policies"),
                            200)["scaling-policies"]

    def set_graph_policies(self, graph_id: str,
                           policies: list[dict]) -> list[dict]:
        return self._expect(
            self.put(f"/graphs/{graph_id}/policies",
                     {"scaling-policies": policies}),
            200)["scaling-policies"]

    def node_metrics(self) -> dict:
        return self._expect(self.get("/metrics.json"), 200)

    def graph_metrics(self, graph_id: str) -> dict:
        return self._expect(self.get(f"/graphs/{graph_id}/metrics"), 200)

    def traces(self) -> dict:
        return self._expect(self.get("/traces"), 200)

    def flight_dumps(self) -> dict:
        return self._expect(self.get("/traces/flight"), 200)

    def prometheus_metrics(self) -> str:
        response = self.get("/metrics")
        if response.status != 200:
            raise RuntimeError(
                f"expected HTTP 200, got {response.status}: "
                f"{response.body}")
        return response.text or ""

    @staticmethod
    def _expect(response: Response, status: int) -> Any:
        if response.status != status:
            raise RuntimeError(
                f"expected HTTP {status}, got {response.status}: "
                f"{response.body}")
        return response.body
