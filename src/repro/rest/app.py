"""The REST application: routing plus the node's API handlers."""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.node import ComputeNode
from repro.core.orchestrator import OrchestrationError
from repro.nffg.json_codec import nffg_from_dict, nffg_to_dict

__all__ = ["HttpError", "Request", "Response", "RestApp"]


class HttpError(Exception):
    """Maps to a non-2xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    method: str
    path: str
    body: bytes = b""
    params: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


@dataclass
class Response:
    status: int
    body: Any = None
    #: plain-text payload (Prometheus exposition); mutually exclusive
    #: with ``body`` — set, it wins and the content type flips.
    text: Optional[str] = None

    def to_bytes(self) -> bytes:
        if self.text is not None:
            return self.text.encode()
        if self.body is None:
            return b""
        return json.dumps(self.body, indent=2, sort_keys=True).encode()

    @property
    def content_type(self) -> str:
        if self.text is not None:
            return "text/plain; version=0.0.4; charset=utf-8"
        return "application/json"

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]


class RestApp:
    """Pattern router + the node endpoints."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self._routes: list[tuple[str, re.Pattern, str, Handler]] = []
        self.requests_served = 0
        self._register_default_routes()

    # -- routing -----------------------------------------------------------------
    def route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register a handler; ``{name}`` segments become params."""
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method.upper(), regex, pattern, handler))

    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        self.requests_served += 1
        matched_path = False
        for route_method, regex, pattern, handler in self._routes:
            hit = regex.match(path)
            if hit is None:
                continue
            matched_path = True
            if route_method != method.upper():
                continue
            request = Request(method=method.upper(), path=path, body=body,
                              params=hit.groupdict())
            # Dispatch latency is labelled by the route *pattern*, not
            # the concrete path — bounded label cardinality no matter
            # how many graphs are deployed.
            tracer = getattr(self.node, "tracer", None)
            started = time.perf_counter() if tracer is not None else 0.0
            try:
                return handler(request)
            except HttpError as exc:
                return Response(exc.status, {"error": exc.message})
            except OrchestrationError as exc:
                return Response(409, {"error": str(exc)})
            finally:
                if tracer is not None:
                    tracer.histograms.observe(
                        "rest_dispatch", (request.method, pattern),
                        time.perf_counter() - started)
        if matched_path:
            return Response(405, {"error": f"method {method} not allowed "
                                           f"on {path}"})
        return Response(404, {"error": f"no such resource {path}"})

    # -- node endpoints ------------------------------------------------------------
    def _register_default_routes(self) -> None:
        self.route("GET", "/", self._get_root)
        self.route("GET", "/nffg", self._list_graphs)
        self.route("PUT", "/nffg/{graph_id}", self._put_graph)
        self.route("GET", "/nffg/{graph_id}", self._get_graph)
        self.route("GET", "/nffg/{graph_id}/status", self._get_status)
        self.route("DELETE", "/nffg/{graph_id}", self._delete_graph)
        self.route("GET", "/nnfs", self._list_nnfs)
        self.route("POST", "/traffic/{interface}", self._inject_traffic)
        self.route("GET", "/graphs/{graph_id}/events", self._get_events)
        self.route("GET", "/graphs/{graph_id}/policies", self._get_policies)
        self.route("PUT", "/graphs/{graph_id}/policies", self._put_policies)
        self.route("POST", "/graphs/{graph_id}/reconcile", self._reconcile)
        self.route("GET", "/metrics", self._get_metrics)
        self.route("GET", "/metrics.json", self._get_metrics_json)
        self.route("GET", "/graphs/{graph_id}/metrics",
                   self._get_graph_metrics)
        self.route("GET", "/traces", self._get_traces)
        self.route("GET", "/traces/flight", self._get_flight)

    def _get_root(self, request: Request) -> Response:
        return Response(200, self.node.describe())

    def _list_graphs(self, request: Request) -> Response:
        return Response(200, {"nffgs": self.node.orchestrator.list_graphs()})

    def _put_graph(self, request: Request) -> Response:
        """Deploy-or-update (upsert) one NF-FG.

        Delegates the deployed-or-not decision to
        :meth:`LocalOrchestrator.apply`, which holds the graph lock
        across the check *and* the verb — the handler-side
        check-then-act this used to do raced concurrent PUTs of the
        same graph into spurious 409s (both threads saw "not deployed",
        both called deploy, one lost).
        """
        document = request.json()
        try:
            graph = nffg_from_dict(document)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        graph_id = request.params["graph_id"]
        if graph.graph_id != graph_id:
            raise HttpError(400, f"graph id {graph.graph_id!r} in body "
                                 f"does not match URL {graph_id!r}")
        _, created = self.node.apply(graph)
        return Response(201 if created else 200,
                        self.node.orchestrator.status(graph_id))

    def _get_graph(self, request: Request) -> Response:
        graph_id = request.params["graph_id"]
        record = self.node.orchestrator.deployed.get(graph_id)
        if record is None:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        return Response(200, nffg_to_dict(record.graph))

    def _get_status(self, request: Request) -> Response:
        graph_id = request.params["graph_id"]
        if graph_id not in self.node.orchestrator.deployed:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        return Response(200, self.node.orchestrator.status(graph_id))

    def _delete_graph(self, request: Request) -> Response:
        graph_id = request.params["graph_id"]
        if graph_id not in self.node.orchestrator.deployed:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        self.node.undeploy(graph_id)
        return Response(204)

    def _list_nnfs(self, request: Request) -> Response:
        return Response(200, {"nnfs": self.node.nnf_registry.describe()})

    def _get_events(self, request: Request) -> Response:
        """The graph's reconciliation journal, oldest first.

        The journal outlives the graph — events of an undeployed (or
        crashed-and-healed) graph stay readable for post-mortems, so
        404 only means the engine never touched that graph_id.
        """
        graph_id = request.params["graph_id"]
        events = self.node.orchestrator.events(graph_id)
        if not events \
                and graph_id not in self.node.orchestrator.deployed:
            raise HttpError(404, f"no events for graph {graph_id!r}")
        journal = self.node.orchestrator.journal
        return Response(200, {"graph-id": graph_id,
                              "events": [e.to_dict() for e in events],
                              "dropped": journal.dropped_count(graph_id),
                              "max-events": journal.max_events})

    def _get_policies(self, request: Request) -> Response:
        """The graph's persisted scaling policies (durable graph state)."""
        graph_id = request.params["graph_id"]
        raw = self.node.orchestrator.reconciler.desired_raw.get(graph_id)
        if raw is None:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        return Response(200, {"graph-id": graph_id,
                              "scaling-policies": [p.to_dict()
                                                   for p in raw.policies]})

    def _put_policies(self, request: Request) -> Response:
        """Replace the graph's scaling policies wholesale.

        Body: ``{"scaling-policies": [...]}`` or a bare policy array;
        an empty array clears autoscaling for the graph.  Policies land
        in the reconciler's durable desired state — they serialize with
        the NF-FG, survive plain graph re-PUTs, and the control loop
        honors them with no driver script attached.
        """
        from repro.nffg.model import Nffg, ScalingPolicy
        from repro.nffg.validate import NffgValidationError, validate_nffg

        document = request.json()
        if isinstance(document, dict):
            entries = document.get("scaling-policies")
        else:
            entries = document
        if not isinstance(entries, list):
            raise HttpError(400, 'body must be {"scaling-policies": [...]} '
                                 "or a policy array")
        try:
            policies = [ScalingPolicy.from_dict(entry) for entry in entries]
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        graph_id = request.params["graph_id"]
        reconciler = self.node.orchestrator.reconciler
        # The read-modify-write of the desired graph must not interleave
        # with a concurrent PUT /nffg/{id} or an autoscaler evaluation.
        with reconciler.lock(graph_id):
            raw = reconciler.desired_raw.get(graph_id)
            if raw is None:
                raise HttpError(404, f"graph {graph_id!r} is not deployed")
            new_graph = Nffg(graph_id=raw.graph_id, name=raw.name,
                             nfs=list(raw.nfs),
                             endpoints=list(raw.endpoints),
                             flow_rules=list(raw.flow_rules),
                             policies=policies)
            try:
                validate_nffg(new_graph)
            except NffgValidationError as exc:
                raise HttpError(400, f"invalid policies: {exc}") from exc
            reconciler.set_desired(new_graph)
        return Response(200, {"graph-id": graph_id,
                              "scaling-policies": [p.to_dict()
                                                   for p in policies]})

    def _reconcile(self, request: Request) -> Response:
        """Run the reconciler to convergence for one graph.

        Probes instance health, compiles and executes plans until the
        observed state matches the desired one — the manual "heal now"
        trigger (the same engine deploy/update run internally).
        """
        graph_id = request.params["graph_id"]
        if graph_id not in self.node.orchestrator.deployed \
                and graph_id not in \
                self.node.orchestrator.reconciler.desired:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        result = self.node.orchestrator.reconcile(graph_id)
        return Response(200, result.to_dict())

    def _get_metrics(self, request: Request) -> Response:
        """Node metrics in Prometheus text exposition format.

        Each scrape takes a fresh sample first — a node without a
        running control loop still reports correct totals, and rates
        appear from the second scrape on (rate windows are derived
        between consecutive samples, whoever takes them).
        """
        from repro.telemetry.export import render_prometheus

        self.node.telemetry.sample()
        text = render_prometheus(self.node.telemetry)
        tracer = getattr(self.node, "tracer", None)
        if tracer is not None:
            from repro.telemetry.histograms import render_histograms
            text += render_histograms(tracer.histograms)
        return Response(200, text=text)

    def _get_metrics_json(self, request: Request) -> Response:
        """The same registry as a JSON document (the `repro top` feed)."""
        self.node.telemetry.sample()
        document = self.node.telemetry.to_dict()
        tracer = getattr(self.node, "tracer", None)
        if tracer is not None:
            document["histograms"] = tracer.histograms.to_dict()
            document["tracing"] = tracer.stats()
        return Response(200, document)

    def _get_traces(self, request: Request) -> Response:
        """The live span ring: recent sampled spans + sampler stats."""
        tracer = getattr(self.node, "tracer", None)
        if tracer is None:
            raise HttpError(404, "tracing is not enabled on this node")
        return Response(200, tracer.traces_document())

    def _get_flight(self, request: Request) -> Response:
        """Frozen flight-recorder dumps (anomaly captures)."""
        tracer = getattr(self.node, "tracer", None)
        if tracer is None:
            raise HttpError(404, "tracing is not enabled on this node")
        return Response(200, tracer.flight_document())

    def _get_graph_metrics(self, request: Request) -> Response:
        """Per-graph rates, replica counts and availability metrics."""
        graph_id = request.params["graph_id"]
        if graph_id not in self.node.orchestrator.deployed:
            raise HttpError(404, f"graph {graph_id!r} is not deployed")
        self.node.telemetry.sample()
        return Response(200, self.node.telemetry.graph_metrics(graph_id))

    def _inject_traffic(self, request: Request) -> Response:
        """Inject a batch of frames into a node interface.

        Body: ``{"frames": ["<hex frame bytes>", ...]}``.  The whole
        batch enters LSI-0 in one
        :meth:`~repro.core.steering.TrafficSteeringManager.inject_batch`
        call, i.e. through the batched zero-reparse pipeline — REST
        driven traffic takes the same fast path as device ingress.
        """
        from repro.core.steering import SteeringError
        from repro.net.ethernet import EthernetFrame

        document = request.json()
        if not isinstance(document, dict) or "frames" not in document:
            raise HttpError(400, 'body must be {"frames": [...]}')
        encoded = document["frames"]
        if not isinstance(encoded, list) or not encoded:
            raise HttpError(400, '"frames" must be a non-empty list')
        frames = []
        for index, item in enumerate(encoded):
            if not isinstance(item, str):
                raise HttpError(400, f"frame {index} is not a hex string")
            # Decode everything up front so a malformed frame rejects
            # the request before any part of the batch is injected.
            try:
                frames.append(EthernetFrame.from_bytes(bytes.fromhex(item)))
            except ValueError as exc:
                raise HttpError(
                    400, f"frame {index} is malformed: {exc}") from exc
        interface = request.params["interface"]
        try:
            self.node.steering.inject_batch(interface, frames)
        except SteeringError as exc:
            raise HttpError(404, str(exc)) from exc
        return Response(200, {"injected": len(frames)})
