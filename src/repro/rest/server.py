"""Socket transport for the REST app (stdlib http.server).

Optional — everything in the repository works through the in-process
client — but ``repro serve`` exposes the node on localhost so the API
can be driven with curl, as the real un-orchestrator is.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core.node import ComputeNode
from repro.rest.app import RestApp

__all__ = ["NodeHttpServer", "serve_node"]


def _make_handler(app: RestApp):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("Content-Length", "0") or "0")
            body = self.rfile.read(length) if length else b""
            response = app.handle(method, self.path, body)
            payload = response.to_bytes()
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            if payload:
                self.wfile.write(payload)

        def do_GET(self) -> None:       # noqa: N802 (http.server API)
            self._dispatch("GET")

        def do_PUT(self) -> None:       # noqa: N802
            self._dispatch("PUT")

        def do_DELETE(self) -> None:    # noqa: N802
            self._dispatch("DELETE")

        def do_POST(self) -> None:      # noqa: N802
            self._dispatch("POST")

        def log_message(self, fmt: str, *args) -> None:
            pass  # tests and examples keep stdout clean

    return Handler


class NodeHttpServer:
    """ThreadingHTTPServer wrapper with clean start/stop."""

    def __init__(self, node: ComputeNode, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = RestApp(node)
        self._server = ThreadingHTTPServer((host, port),
                                           _make_handler(self.app))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "NodeHttpServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="rest-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


def serve_node(node: ComputeNode, host: str = "127.0.0.1",
               port: int = 8080) -> NodeHttpServer:
    """Start serving ``node``; returns the running server."""
    return NodeHttpServer(node, host=host, port=port).start()
