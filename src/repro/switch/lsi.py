"""Logical Switch Instances and the virtual links that join them.

Figure 1 of the paper: LSI-0 (the base LSI) owns the node's physical
ports and classifies traffic into per-graph LSIs over *virtual links*;
each graph LSI owns the ports of the NFs in that graph.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.net.builder import ParsedFrame
from repro.net.ethernet import EthernetFrame
from repro.switch.datapath import Datapath, SwitchPort

__all__ = ["LogicalSwitchInstance", "VirtualLink"]

_dpids = itertools.count(0x100)


class LogicalSwitchInstance:
    """One LSI: a datapath plus its role metadata.

    ``graph_id`` is ``None`` for the base LSI (LSI-0) and the NF-FG id
    for per-graph LSIs.
    """

    def __init__(self, name: str, graph_id: Optional[str] = None,
                 dpid: Optional[int] = None) -> None:
        self.name = name
        self.graph_id = graph_id
        self.datapath = Datapath(dpid if dpid is not None else next(_dpids),
                                 name=name)
        self.controller = None  # set by repro.openflow.controller

    @property
    def is_base(self) -> bool:
        return self.graph_id is None

    def __repr__(self) -> str:
        role = "base" if self.is_base else f"graph {self.graph_id}"
        return f"<LSI {self.name} ({role})>"


class VirtualLink:
    """Patch cable between a port on one datapath and a port on another."""

    def __init__(self, name: str = "vlink") -> None:
        self.name = name
        self.a: Optional[SwitchPort] = None
        self.b: Optional[SwitchPort] = None
        self.carried = 0
        #: When False, batch carries strip the frames back to raw
        #: :class:`EthernetFrame` objects, forcing the far LSI to
        #: re-parse every frame — the pre-zero-reparse cost model.  The
        #: differential test harness flips this to pin down that both
        #: modes are observably identical; production leaves it True.
        self.carry_parsed = True

    @classmethod
    def connect(cls, dp_a: Datapath, dp_b: Datapath,
                name: str = "vlink") -> "VirtualLink":
        """Create the link and one port on each datapath."""
        link = cls(name=name)
        port_a = dp_a.add_port(f"{name}-{dp_b.name}")
        port_b = dp_b.add_port(f"{name}-{dp_a.name}")
        link.attach(port_a, port_b)
        return link

    def attach(self, port_a: SwitchPort, port_b: SwitchPort) -> None:
        if self.a is not None or self.b is not None:
            raise ValueError(f"virtual link {self.name} already attached")
        if port_a.device is not None or port_b.device is not None:
            raise ValueError("virtual link ports cannot wrap devices")
        self.a = port_a
        self.b = port_b
        port_a.peer_link = self
        port_b.peer_link = self
        self._invalidate_fusion()

    def detach(self) -> None:
        for port in (self.a, self.b):
            if port is not None:
                port.peer_link = None
        self._invalidate_fusion()
        self.a = None
        self.b = None

    def _invalidate_fusion(self) -> None:
        """Rewiring a link changes chain topology: drop fused programs
        on both endpoints' datapaths.  (Chains *through* these LSIs
        whose ingress lies elsewhere are caught by the flush-time
        validity check — ``peer_link`` identity is part of it.)"""
        for port in (self.a, self.b):
            if port is not None and port.datapath is not None:
                port.datapath.fusion.invalidate()

    def _far(self, from_port: SwitchPort) -> Optional[SwitchPort]:
        if from_port is self.a:
            return self.b
        if from_port is self.b:
            return self.a
        raise ValueError("frame from a port not on this link")

    def carry(self, from_port: SwitchPort, frame: EthernetFrame) -> None:
        """Move a frame to the far end and process it there."""
        far = self._far(from_port)
        if far is None or far.datapath is None:
            return
        self.carried += 1
        far.datapath.process(far.port_no, frame)

    def carry_batch(self, from_port: SwitchPort,
                    frames: "list[ParsedFrame | EthernetFrame]") -> None:
        """Move a whole batch to the far end in one pipeline pass.

        This is what keeps a chain of LSIs batch-at-a-time: the far
        datapath receives the frames through
        :meth:`~repro.switch.datapath.Datapath.process_batch_from`, so
        lookup, compiled-action execution and flow/port counter
        amortization carry across every hop.  The frames are normally
        :class:`~repro.net.builder.ParsedFrame` views queued by the
        near datapath's batch flush, forwarded *as parsed* — the far
        LSI never re-parses an untouched frame (set
        :attr:`carry_parsed` to False to restore the old re-parse-per-
        hop behavior).  The link's own ``carried`` counter and the
        egress port's tx counters are likewise written once per batch,
        not per frame (chain egress happens in the far datapath's batch
        flush).
        """
        if not frames:
            return
        far = self._far(from_port)
        if far is None or far.datapath is None:
            return
        self.carried += len(frames)
        if not self.carry_parsed:
            frames = [frame.eth if type(frame) is ParsedFrame else frame
                      for frame in frames]
        far.datapath.process_batch_from(far.port_no, frames)

    def far_port(self, datapath: Datapath) -> SwitchPort:
        """The link's port that lives on ``datapath``."""
        if self.a is not None and self.a.datapath is datapath:
            return self.a
        if self.b is not None and self.b.datapath is datapath:
            return self.b
        raise ValueError(f"link {self.name} has no port on {datapath.name}")
