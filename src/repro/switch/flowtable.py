"""Flow tables: OpenFlow-style matching with priorities and counters."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.net.addresses import MacAddress, ip_to_int, parse_cidr
from repro.net.builder import ParsedFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.actions import Action

__all__ = ["ANY_VLAN", "FlowEntry", "FlowMatch", "FlowTable", "NO_VLAN"]

#: Match any VLAN id (but the frame must be tagged).
ANY_VLAN = -1
#: Match only untagged frames.
NO_VLAN = -2


@dataclass(frozen=True)
class FlowMatch:
    """Match criteria; ``None`` means wildcard.

    ``vlan_vid`` accepts a concrete VID, :data:`ANY_VLAN` (tagged, any
    id) or :data:`NO_VLAN` (untagged only) — the three cases the
    steering and adaptation layers need.
    """

    in_port: Optional[int] = None
    eth_src: Optional[MacAddress] = None
    eth_dst: Optional[MacAddress] = None
    eth_type: Optional[int] = None
    vlan_vid: Optional[int] = None
    ip_src: Optional[str] = None     # CIDR
    ip_dst: Optional[str] = None     # CIDR
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        for cidr in (self.ip_src, self.ip_dst):
            if cidr is not None:
                parse_cidr(cidr if "/" in cidr else cidr + "/32")
        if self.vlan_vid is not None and not (
                self.vlan_vid in (ANY_VLAN, NO_VLAN)
                or 0 <= self.vlan_vid <= 4095):
            raise ValueError(f"bad vlan_vid {self.vlan_vid}")

    def hits(self, in_port: int, parsed: ParsedFrame) -> bool:
        eth = parsed.eth
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.eth_src is not None and eth.src != self.eth_src:
            return False
        if self.eth_dst is not None and eth.dst != self.eth_dst:
            return False
        if self.eth_type is not None and eth.ethertype != self.eth_type:
            return False
        if self.vlan_vid is not None:
            if self.vlan_vid == NO_VLAN:
                if eth.vlan is not None:
                    return False
            elif self.vlan_vid == ANY_VLAN:
                if eth.vlan is None:
                    return False
            elif eth.vlan != self.vlan_vid:
                return False
        if self.ip_src is not None or self.ip_dst is not None \
                or self.ip_proto is not None:
            if parsed.ipv4 is None:
                return False
            if self.ip_src is not None and not _cidr_hit(
                    self.ip_src, parsed.ipv4.src):
                return False
            if self.ip_dst is not None and not _cidr_hit(
                    self.ip_dst, parsed.ipv4.dst):
                return False
            if self.ip_proto is not None \
                    and parsed.ipv4.proto != self.ip_proto:
                return False
        if self.tp_src is not None or self.tp_dst is not None:
            five = parsed.five_tuple
            if five is None:
                return False
            if self.tp_src is not None and five[3] != self.tp_src:
                return False
            if self.tp_dst is not None and five[4] != self.tp_dst:
                return False
        return True

    _FIELDS = ("in_port", "eth_src", "eth_dst", "eth_type", "vlan_vid",
               "ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst")

    def subsumes(self, other: "FlowMatch") -> bool:
        """True when every concrete field of self equals other's field.

        This is the filter semantics of a non-strict OpenFlow delete: a
        wildcarded (None) field in the delete match covers any value.
        """
        return all(
            getattr(self, name) is None
            or getattr(self, name) == getattr(other, name)
            for name in self._FIELDS)

    def describe(self) -> str:
        parts = []
        for name in ("in_port", "eth_src", "eth_dst", "eth_type", "vlan_vid",
                     "ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst"):
            value = getattr(self, name)
            if value is not None:
                if name == "vlan_vid" and value == ANY_VLAN:
                    value = "any"
                elif name == "vlan_vid" and value == NO_VLAN:
                    value = "none"
                parts.append(f"{name}={value}")
        return ",".join(parts) or "*"


def _cidr_hit(cidr: str, address: str) -> bool:
    if "/" not in cidr:
        cidr += "/32"
    network, plen = parse_cidr(cidr)
    if plen == 0:
        return True
    shift = 32 - plen
    return (ip_to_int(address) >> shift) == (network >> shift)


_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One installed flow: match, priority, action list, counters."""

    match: FlowMatch
    actions: Sequence["Action"]
    priority: int = 100
    cookie: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets: int = 0
    bytes: int = 0

    def describe(self) -> str:
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return (f"priority={self.priority} match[{self.match.describe()}] "
                f"actions[{acts}]")


class FlowTable:
    """Priority-ordered flow table with add/modify/delete semantics."""

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def add(self, entry: FlowEntry) -> None:
        """Install; replaces an entry with identical match+priority."""
        self.delete(match=entry.match, priority=entry.priority, strict=True)
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, e.entry_id))

    def delete(self, match: Optional[FlowMatch] = None,
               priority: Optional[int] = None, cookie: Optional[int] = None,
               strict: bool = False) -> int:
        """Remove matching entries; returns how many were removed."""
        def doomed(entry: FlowEntry) -> bool:
            if cookie is not None and entry.cookie != cookie:
                return False
            if strict:
                return (match is not None and entry.match == match
                        and (priority is None or entry.priority == priority))
            if match is not None and not match.subsumes(entry.match):
                return False
            if priority is not None and entry.priority != priority:
                return False
            return True

        before = len(self._entries)
        self._entries = [e for e in self._entries if not doomed(e)]
        return before - len(self._entries)

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        return count

    def lookup(self, in_port: int,
               parsed: ParsedFrame) -> Optional[FlowEntry]:
        """Highest-priority matching entry, or None (table miss)."""
        self.lookups += 1
        for entry in self._entries:
            if entry.match.hits(in_port, parsed):
                self.matches += 1
                entry.packets += 1
                entry.bytes += len(parsed.eth)
                return entry
        return None

    def dump(self) -> list[str]:
        return [entry.describe() for entry in self._entries]
