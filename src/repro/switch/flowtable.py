"""Flow tables: OpenFlow-style matching with priorities and counters.

Lookup engine design (the node's hottest path — Figure 1 sends every
packet through at least two LSIs, so per-lookup cost multiplies along
the chain):

* **Compiled matches.**  A :class:`FlowMatch` compiles itself at
  construction into a tuple of closed-over predicate functions; CIDR
  strings are reduced to ``(network >> shift, shift)`` integer pairs via
  :func:`repro.net.addresses.compile_cidr`, so the per-packet test is
  two integer ops.  ``parse_cidr`` is **never** called after
  construction — the fast path touches no strings.

* **Two-level index.**  Entries are bucketed by the fields the steering
  layer always sets:

  1. *exact level* — hash buckets keyed on ``(in_port, vlan_vid)`` for
     entries with both fields concrete (``NO_VLAN`` keys untagged
     traffic);
  2. *port level* — per-``in_port`` buckets for entries whose VLAN is
     wildcarded (or :data:`ANY_VLAN`);
  3. *wildcard list* — everything with ``in_port`` wildcarded.

  Every bucket is kept priority-sorted (``bisect.insort`` on
  ``(-priority, entry_id)`` — no full re-sort per insert) and a lookup
  is a 3-way merge of the relevant buckets, returning the first
  compiled-predicate hit.  This preserves exact linear-scan semantics
  while visiting only the few entries that could possibly match.

* **Small-table bypass.**  Index-merge bookkeeping costs more than it
  saves on tiny tables, so lookups on tables of at most
  :data:`SMALL_TABLE_THRESHOLD` (16) entries scan the plain
  priority-sorted entry list directly (still with compiled
  predicates).  The buckets are maintained on every add/delete either
  way, so the table flips between modes for free as it grows past the
  threshold or shrinks back under it; ``FlowTable.index_active`` tells
  which mode the next lookup will use.

* **Correctness oracle.**  :meth:`FlowTable.lookup_linear` keeps the
  original priority-ordered linear scan (string-based matching and
  all); setting ``table.oracle = True`` cross-checks every lookup —
  in *both* bypass and indexed modes — against it and raises
  :class:`FlowTableOracleError` on any divergence.  The property-based
  suite drives both paths with random tables and frames.

* **Compiled actions.**  A :class:`FlowEntry` compiles its action list
  into a fused closure (:func:`repro.switch.actions.compile_actions`)
  at construction and caches it in ``entry.compiled``; the datapath
  executes that one closure per matching frame.  ``entry.actions`` is
  normalized to a tuple so the list cannot be mutated in place behind
  the cache; *rebinding* ``entry.actions`` after construction is
  unsupported unless :meth:`FlowEntry.invalidate` is called to
  recompile.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field
from heapq import merge as _heap_merge
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.net.addresses import MacAddress, compile_cidr, ip_to_int, \
    parse_cidr
from repro.net.builder import ParsedFrame
from repro.switch.actions import compile_actions

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.actions import Action, CompiledActions

__all__ = ["ANY_VLAN", "FlowEntry", "FlowMatch", "FlowTable",
           "FlowTableOracleError", "NO_VLAN", "SMALL_TABLE_THRESHOLD"]

#: Match any VLAN id (but the frame must be tagged).
ANY_VLAN = -1
#: Match only untagged frames.
NO_VLAN = -2

#: Predicate compiled from one concrete FlowMatch field.
MatchCheck = Callable[[int, ParsedFrame], bool]


@dataclass(frozen=True)
class FlowMatch:
    """Match criteria; ``None`` means wildcard.

    ``vlan_vid`` accepts a concrete VID, :data:`ANY_VLAN` (tagged, any
    id) or :data:`NO_VLAN` (untagged only) — the three cases the
    steering and adaptation layers need.

    Construction compiles the concrete fields into integer-only
    predicates (see module docstring); :meth:`hits` evaluates the
    compiled form, :meth:`hits_reference` the original string-based
    logic (kept as the oracle's reference).
    """

    in_port: Optional[int] = None
    eth_src: Optional[MacAddress] = None
    eth_dst: Optional[MacAddress] = None
    eth_type: Optional[int] = None
    vlan_vid: Optional[int] = None
    ip_src: Optional[str] = None     # CIDR
    ip_dst: Optional[str] = None     # CIDR
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.vlan_vid is not None and not (
                self.vlan_vid in (ANY_VLAN, NO_VLAN)
                or 0 <= self.vlan_vid <= 4095):
            raise ValueError(f"bad vlan_vid {self.vlan_vid}")
        # Validate CIDRs once and precompute their integer forms; also
        # compile the whole match so the hot path never parses strings.
        src_key = (None if self.ip_src is None
                   else compile_cidr(self.ip_src))
        dst_key = (None if self.ip_dst is None
                   else compile_cidr(self.ip_dst))
        object.__setattr__(self, "_src_key", src_key)
        object.__setattr__(self, "_dst_key", dst_key)
        object.__setattr__(self, "_checks", self._compile(src_key, dst_key))
        # True when in_port/vlan_vid are the only concrete fields — the
        # steering layer's standard shape.  The small-table bypass
        # checks those two inline and can then skip the predicate walk.
        object.__setattr__(self, "_port_vlan_only", all(
            getattr(self, name) is None
            for name in self._FIELDS if name not in ("in_port", "vlan_vid")))

    def _compile(self, src_key: Optional[tuple[int, int]],
                 dst_key: Optional[tuple[int, int]]) -> tuple[MatchCheck, ...]:
        checks: list[MatchCheck] = []
        if self.in_port is not None:
            want_port = self.in_port
            checks.append(lambda port, parsed: port == want_port)
        if self.eth_src is not None:
            want_src = self.eth_src
            checks.append(lambda port, parsed: parsed.eth.src == want_src)
        if self.eth_dst is not None:
            want_dst = self.eth_dst
            checks.append(lambda port, parsed: parsed.eth.dst == want_dst)
        if self.eth_type is not None:
            want_type = self.eth_type
            checks.append(
                lambda port, parsed: parsed.eth.ethertype == want_type)
        if self.vlan_vid is not None:
            vid = self.vlan_vid
            if vid == NO_VLAN:
                checks.append(lambda port, parsed: parsed.eth.vlan is None)
            elif vid == ANY_VLAN:
                checks.append(
                    lambda port, parsed: parsed.eth.vlan is not None)
            else:
                checks.append(lambda port, parsed: parsed.eth.vlan == vid)
        if src_key is not None:
            src_net, src_shift = src_key
            def check_src(port: int, parsed: ParsedFrame,
                          net: int = src_net, shift: int = src_shift) -> bool:
                ints = parsed.ip_ints
                return ints is not None and ints[0] >> shift == net
            checks.append(check_src)
        if dst_key is not None:
            dst_net, dst_shift = dst_key
            def check_dst(port: int, parsed: ParsedFrame,
                          net: int = dst_net, shift: int = dst_shift) -> bool:
                ints = parsed.ip_ints
                return ints is not None and ints[1] >> shift == net
            checks.append(check_dst)
        if self.ip_proto is not None:
            want_proto = self.ip_proto
            def check_proto(port: int, parsed: ParsedFrame) -> bool:
                packet = parsed.ipv4
                return packet is not None and packet.proto == want_proto
            checks.append(check_proto)
        # L4 port checks read the decoded segments directly instead of
        # five_tuple, which rebuilds a string-bearing tuple per call.
        # Reference semantics: non-IPv4 never matches; IPv4 without a
        # parsed L4 exposes ports as 0.
        if self.tp_src is not None:
            want_sport = self.tp_src
            def check_sport(port: int, parsed: ParsedFrame) -> bool:
                if parsed.ipv4 is None:
                    return False
                udp = parsed.udp
                if udp is not None:
                    return udp.src_port == want_sport
                tcp = parsed.tcp
                if tcp is not None:
                    return tcp.src_port == want_sport
                return want_sport == 0
            checks.append(check_sport)
        if self.tp_dst is not None:
            want_dport = self.tp_dst
            def check_dport(port: int, parsed: ParsedFrame) -> bool:
                if parsed.ipv4 is None:
                    return False
                udp = parsed.udp
                if udp is not None:
                    return udp.dst_port == want_dport
                tcp = parsed.tcp
                if tcp is not None:
                    return tcp.dst_port == want_dport
                return want_dport == 0
            checks.append(check_dport)
        return tuple(checks)

    def hits(self, in_port: int, parsed: ParsedFrame) -> bool:
        """Compiled predicate: no string parsing per packet."""
        for check in self._checks:  # type: ignore[attr-defined]
            if not check(in_port, parsed):
                return False
        return True

    def hits_reference(self, in_port: int, parsed: ParsedFrame) -> bool:
        """Original (pre-index) matching logic; the oracle's reference."""
        eth = parsed.eth
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.eth_src is not None and eth.src != self.eth_src:
            return False
        if self.eth_dst is not None and eth.dst != self.eth_dst:
            return False
        if self.eth_type is not None and eth.ethertype != self.eth_type:
            return False
        if self.vlan_vid is not None:
            if self.vlan_vid == NO_VLAN:
                if eth.vlan is not None:
                    return False
            elif self.vlan_vid == ANY_VLAN:
                if eth.vlan is None:
                    return False
            elif eth.vlan != self.vlan_vid:
                return False
        if self.ip_src is not None or self.ip_dst is not None \
                or self.ip_proto is not None:
            if parsed.ipv4 is None:
                return False
            if self.ip_src is not None and not _cidr_hit(
                    self.ip_src, parsed.ipv4.src):
                return False
            if self.ip_dst is not None and not _cidr_hit(
                    self.ip_dst, parsed.ipv4.dst):
                return False
            if self.ip_proto is not None \
                    and parsed.ipv4.proto != self.ip_proto:
                return False
        if self.tp_src is not None or self.tp_dst is not None:
            five = parsed.five_tuple
            if five is None:
                return False
            if self.tp_src is not None and five[3] != self.tp_src:
                return False
            if self.tp_dst is not None and five[4] != self.tp_dst:
                return False
        return True

    _FIELDS = ("in_port", "eth_src", "eth_dst", "eth_type", "vlan_vid",
               "ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst")

    def __reduce__(self):
        # The compiled predicate closures are not picklable; rebuild
        # from the declared fields (recompiles on unpickle).
        return (self.__class__,
                tuple(getattr(self, name) for name in self._FIELDS))

    def subsumes(self, other: "FlowMatch") -> bool:
        """True when every concrete field of self equals other's field.

        This is the filter semantics of a non-strict OpenFlow delete: a
        wildcarded (None) field in the delete match covers any value.
        """
        return all(
            getattr(self, name) is None
            or getattr(self, name) == getattr(other, name)
            for name in self._FIELDS)

    def describe(self) -> str:
        parts = []
        for name in ("in_port", "eth_src", "eth_dst", "eth_type", "vlan_vid",
                     "ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst"):
            value = getattr(self, name)
            if value is not None:
                if name == "vlan_vid" and value == ANY_VLAN:
                    value = "any"
                elif name == "vlan_vid" and value == NO_VLAN:
                    value = "none"
                parts.append(f"{name}={value}")
        return ",".join(parts) or "*"


def _cidr_hit(cidr: str, address: str) -> bool:
    if "/" not in cidr:
        cidr += "/32"
    network, plen = parse_cidr(cidr)
    if plen == 0:
        return True
    shift = 32 - plen
    return (ip_to_int(address) >> shift) == (network >> shift)


_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One installed flow: match, priority, action tuple, counters.

    ``actions`` is normalized to a tuple at construction and compiled
    into a fused per-frame closure, cached as :attr:`compiled` (the
    datapath calls it directly — see
    :func:`repro.switch.actions.compile_actions`).  In-place mutation
    of the action list is therefore impossible; **rebinding**
    ``entry.actions`` after construction is unsupported unless you call
    :meth:`invalidate` afterwards — otherwise an installed entry keeps
    executing its previously compiled program.
    """

    match: FlowMatch
    actions: Sequence["Action"]
    priority: int = 100
    cookie: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets: int = 0
    bytes: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)
        self.compiled: "CompiledActions" = compile_actions(self.actions)
        #: Egress port of a pure-output program, else None.  The batched
        #: datapath reads this per matched frame to skip the compiled
        #: call entirely for plain forwarding hops (the per-entry emit
        #: specialization), so it is cached here once per install.
        self.fast_out: "int | None" = getattr(self.compiled, "out_port",
                                              None)
        #: Chain-fusion cache (see :mod:`repro.switch.fusion`).
        #: Tri-state: ``None`` — never traced; a
        #: :class:`~repro.switch.fusion.FusedChain` — the straight-line
        #: program for the whole chain starting at this entry; an
        #: ``int`` — "not fuseable", stamped with the tracing engine's
        #: epoch so a steering-level invalidation retries the trace.
        self.fused = None
        #: Back-references to the dispatch-table slots that resolve to
        #: this entry (see :class:`~repro.switch.fusion.FusionEngine`
        #: ``dispatch``).  When this entry's fused program is dropped
        #: reactively, the slots are stamped stale through this list so
        #: no ``(in_port, vlan)`` slice keeps dispatching to it.
        self.dispatch: list = []

    def invalidate(self) -> None:
        """Recompile after ``entry.actions`` was rebound.

        The compiled closure is bound to the action tuple it was built
        from; call this if you replace ``entry.actions`` on a live
        entry (normally you should install a fresh entry instead).
        """
        self.actions = tuple(self.actions)
        self.compiled = compile_actions(self.actions)
        self.fast_out = getattr(self.compiled, "out_port", None)
        self.fused = None
        for slot in self.dispatch:
            slot[0] = -1
            slot[1] = None
            slot[2] = None
        del self.dispatch[:]

    def __getstate__(self):
        # The compiled closure is not picklable; drop it and recompile
        # on unpickle (mirrors FlowMatch.__reduce__).  The fused-chain
        # cache and the dispatch-slot back-references point at live
        # ports, tables and slot lists, so neither ever travels — a
        # round-tripped entry must come back cold, not pointing into
        # some other process's dispatch state.
        state = self.__dict__.copy()
        del state["compiled"]
        state["fused"] = None
        state["dispatch"] = []
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.compiled = compile_actions(self.actions)
        self.fast_out = getattr(self.compiled, "out_port", None)
        self.fused = None
        self.dispatch = []

    def describe(self) -> str:
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return (f"priority={self.priority} match[{self.match.describe()}] "
                f"actions[{acts}]")


class FlowTableOracleError(AssertionError):
    """Indexed lookup diverged from the reference linear scan."""


def _sort_key(entry: FlowEntry) -> tuple[int, int]:
    return (-entry.priority, entry.entry_id)


#: At or below this many entries, lookups scan the sorted entry list
#: directly instead of merging index buckets (see module docstring).
SMALL_TABLE_THRESHOLD = 16


class FlowTable:
    """Indexed flow table with priority add/modify/delete semantics.

    See the module docstring for the two-level index layout and the
    small-table bypass.  Public semantics are identical to a
    priority-ordered linear scan; set ``oracle = True`` to verify that
    on every lookup.  ``small_table_threshold`` is per-instance
    (default :data:`SMALL_TABLE_THRESHOLD`); set it to 0 to force the
    index on from the first entry.
    """

    def __init__(self, table_id: int = 0,
                 small_table_threshold: int = SMALL_TABLE_THRESHOLD) -> None:
        self.table_id = table_id
        self.small_table_threshold = small_table_threshold
        self._entries: list[FlowEntry] = []
        # Index level 1: (in_port, vid-or-NO_VLAN) -> sorted entries.
        self._exact: dict[tuple[int, int], list[FlowEntry]] = {}
        # Index level 2: in_port -> sorted entries with wildcard/ANY vlan.
        self._by_port: dict[int, list[FlowEntry]] = {}
        # Fallback: entries with wildcard in_port.
        self._wild: list[FlowEntry] = []
        self.lookups = 0
        self.matches = 0
        #: Monotonic generation counter, bumped on every add/delete/
        #: clear that changes the entry set.  Fused chain programs
        #: (:mod:`repro.switch.fusion`) record the version of every
        #: table they traversed and refuse to run against a table that
        #: has moved on — this is what makes a flow-mod anywhere along
        #: a fused chain an immediate, safe fallback to the per-hop
        #: path, even when the mod lands mid-batch.
        self.version = 0
        #: When True every lookup is cross-checked against the linear scan.
        self.oracle = False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def index_active(self) -> bool:
        """True when the next lookup will use the two-level index
        (i.e. the table has outgrown the small-table bypass)."""
        return len(self._entries) > self.small_table_threshold

    def __iter__(self):
        return iter(self._entries)

    # -- index maintenance -------------------------------------------------
    def _bucket(self, match: FlowMatch) -> list[FlowEntry]:
        """The index bucket this match belongs to (created on demand)."""
        if match.in_port is None:
            return self._wild
        if match.vlan_vid is None or match.vlan_vid == ANY_VLAN:
            return self._by_port.setdefault(match.in_port, [])
        return self._exact.setdefault((match.in_port, match.vlan_vid), [])

    def _unindex(self, entry: FlowEntry) -> None:
        match = entry.match
        if match.in_port is None:
            self._wild.remove(entry)
            return
        if match.vlan_vid is None or match.vlan_vid == ANY_VLAN:
            bucket = self._by_port[match.in_port]
            bucket.remove(entry)
            if not bucket:
                del self._by_port[match.in_port]
            return
        key = (match.in_port, match.vlan_vid)
        bucket = self._exact[key]
        bucket.remove(entry)
        if not bucket:
            del self._exact[key]

    # -- modification ------------------------------------------------------
    def add(self, entry: FlowEntry) -> None:
        """Install; replaces an entry with identical match+priority."""
        self.delete(match=entry.match, priority=entry.priority, strict=True)
        self.version += 1
        insort(self._entries, entry, key=_sort_key)
        insort(self._bucket(entry.match), entry, key=_sort_key)

    def delete(self, match: Optional[FlowMatch] = None,
               priority: Optional[int] = None, cookie: Optional[int] = None,
               strict: bool = False) -> int:
        """Remove matching entries; returns how many were removed."""
        def doomed(entry: FlowEntry) -> bool:
            if cookie is not None and entry.cookie != cookie:
                return False
            if strict:
                return (match is not None and entry.match == match
                        and (priority is None or entry.priority == priority))
            if match is not None and not match.subsumes(entry.match):
                return False
            if priority is not None and entry.priority != priority:
                return False
            return True

        victims = [entry for entry in self._entries if doomed(entry)]
        if not victims:
            return 0
        self.version += 1
        victim_ids = {entry.entry_id for entry in victims}
        self._entries = [entry for entry in self._entries
                         if entry.entry_id not in victim_ids]
        for entry in victims:
            self._unindex(entry)
        return len(victims)

    def clear(self) -> int:
        count = len(self._entries)
        if count:
            self.version += 1
        self._entries.clear()
        self._exact.clear()
        self._by_port.clear()
        self._wild.clear()
        return count

    # -- lookup ------------------------------------------------------------
    def _select(self, in_port: int,
                parsed: ParsedFrame) -> Optional[FlowEntry]:
        """Candidate walk (bypass or indexed); no counter updates."""
        entries = self._entries
        if len(entries) <= self.small_table_threshold:
            # Small-table bypass: the priority-sorted entry list *is*
            # the merge result.  The two fields the steering layer
            # always sets are pre-filtered inline (plain integer
            # compares, no calls) so most non-candidates die before the
            # compiled predicate runs — this is what keeps the bypass
            # ahead of the bare reference scan.
            vlan = parsed.eth.vlan
            for entry in entries:
                match = entry.match
                want_port = match.in_port
                if want_port is not None and want_port != in_port:
                    continue
                want_vid = match.vlan_vid
                if want_vid is not None:
                    if want_vid >= 0:
                        if vlan != want_vid:
                            continue
                    elif want_vid == NO_VLAN:
                        if vlan is not None:
                            continue
                    elif vlan is None:  # ANY_VLAN
                        continue
                if match._port_vlan_only or match.hits(in_port, parsed):
                    return entry
            return None
        vlan = parsed.eth.vlan
        exact = self._exact.get(
            (in_port, vlan if vlan is not None else NO_VLAN))
        by_port = self._by_port.get(in_port)
        lists = [bucket for bucket in (exact, by_port) if bucket]
        if self._wild:
            lists.append(self._wild)
        if not lists:
            return None
        if len(lists) == 1:
            for entry in lists[0]:
                if entry.match.hits(in_port, parsed):
                    return entry
            return None
        if len(lists) == 2:
            # Manual two-list merge: the common case (exact bucket plus
            # one fallback list) and ~2x cheaper than heapq with a key.
            first, second = lists
            i = j = 0
            len_first, len_second = len(first), len(second)
            while i < len_first or j < len_second:
                if j >= len_second:
                    entry = first[i]
                    i += 1
                elif i >= len_first:
                    entry = second[j]
                    j += 1
                else:
                    head_a, head_b = first[i], second[j]
                    if (-head_a.priority, head_a.entry_id) \
                            <= (-head_b.priority, head_b.entry_id):
                        entry = head_a
                        i += 1
                    else:
                        entry = head_b
                        j += 1
                if entry.match.hits(in_port, parsed):
                    return entry
            return None
        for entry in _heap_merge(*lists, key=_sort_key):
            if entry.match.hits(in_port, parsed):
                return entry
        return None

    def lookup(self, in_port: int, parsed: ParsedFrame,
               count: bool = True) -> Optional[FlowEntry]:
        """Highest-priority matching entry, or None (table miss).

        ``parsed`` is whatever :class:`ParsedFrame` the pipeline
        carries — on a chain's later hops it is the view forwarded (or
        derived) from the previous LSI, not a fresh parse, so an IP/L4
        match here reuses the decode a hop upstream already paid for.
        Lookup never assumes a fresh parse and never mutates the view
        beyond triggering its lazy decode.

        ``count=False`` skips the per-entry counter updates; the batched
        datapath uses it and flushes accumulated counts once per batch
        through :meth:`credit`.
        """
        self.lookups += 1
        entry = self._select(in_port, parsed)
        if self.oracle:
            reference = self.lookup_linear(in_port, parsed)
            if reference is not entry:
                raise FlowTableOracleError(
                    f"table {self.table_id}: indexed lookup returned "
                    f"{entry and entry.describe()!r}, linear scan "
                    f"{reference and reference.describe()!r}")
        if entry is not None and count:
            self.matches += 1
            entry.packets += 1
            entry.bytes += parsed.wire_len
        return entry

    def lookup_linear(self, in_port: int,
                      parsed: ParsedFrame) -> Optional[FlowEntry]:
        """Reference pre-index linear scan (string matching, no counters)."""
        for entry in self._entries:
            if entry.match.hits_reference(in_port, parsed):
                return entry
        return None

    def slice_winner(self, in_port: int,
                     vlan: Optional[int]) -> Optional[FlowEntry]:
        """The frame-independent lookup winner of one ``(in_port, vlan)``
        traffic slice, or ``None`` when the slice's winner depends on
        frame contents (or the slice misses entirely).

        This is the dispatch-fusion analogue of the per-chain
        ``_resolve_next`` check (:mod:`repro.switch.fusion`), applied
        at the *ingress* table: walk the priority order once and stop
        at the first entry whose port/VLAN constraints admit the slice.
        If that entry matches on port and VLAN alone
        (``FlowMatch._port_vlan_only``) it wins every lookup any frame
        of the slice could run; if it also matches frame fields, some
        frames may fall through it to a different entry, so the slice
        cannot be dispatched.  ``vlan`` is the frame's tag state
        (``eth.vlan``): a concrete vid or ``None`` for untagged.
        """
        for entry in self._entries:
            match = entry.match
            want_port = match.in_port
            if want_port is not None and want_port != in_port:
                continue
            want_vid = match.vlan_vid
            if want_vid is not None:
                if want_vid >= 0:
                    if vlan != want_vid:
                        continue
                elif want_vid == NO_VLAN:
                    if vlan is not None:
                        continue
                else:  # ANY_VLAN
                    if vlan is None:
                        continue
            return entry if match._port_vlan_only else None
        return None

    def credit(self, entry: FlowEntry, packets: int, nbytes: int) -> None:
        """Flush batched counters for ``entry`` (see ``lookup(count=)``)."""
        self.matches += packets
        entry.packets += packets
        entry.bytes += nbytes

    def dump(self) -> list[str]:
        return [entry.describe() for entry in self._entries]
