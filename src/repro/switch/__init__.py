"""Software switch substrate: the Logical Switch Instances of Figure 1.

The un-orchestrator steers traffic with one software switch per service
graph (the *LSI*) plus a base *LSI-0* that classifies node ingress
traffic, all programmed over OpenFlow.  This package provides:

* :mod:`repro.switch.flowtable` — priority-ordered match/action tables
  with OpenFlow-1.0-style field matching (in_port, MACs, ethertype,
  VLAN, IPv4 prefixes, L4 ports) and counters;
* :mod:`repro.switch.actions` — output / push-pop VLAN / set-field /
  controller actions;
* :mod:`repro.switch.datapath` — the pipeline: ports, lookup, action
  execution, packet-in on miss;
* :mod:`repro.switch.fusion` — chain fusion: whole stable LSI chains
  compiled into straight-line programs, one ingress lookup per batch
  group;
* :mod:`repro.switch.state` — per-flow state tables (OpenState-style
  match -> state -> action) giving load-balanced hops replica
  affinity that survives scale events;
* :mod:`repro.switch.lsi` — the LSI wrapper and inter-LSI virtual
  links (the "Virtual Link among LSIs" of Figure 1).
"""

from repro.switch.actions import (
    ActionError,
    Controller,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    SetField,
    flow_hash,
    flow_key,
    rendezvous_select,
)
from repro.switch.datapath import Datapath, SwitchPort
from repro.switch.flowtable import (
    FlowEntry,
    FlowMatch,
    FlowTable,
    FlowTableOracleError,
)
from repro.switch.fusion import FusedChain, FusionEngine
from repro.switch.lsi import LogicalSwitchInstance, VirtualLink
from repro.switch.state import FlowStateRegistry, FlowStateTable

__all__ = [
    "ActionError",
    "Controller",
    "Datapath",
    "FlowEntry",
    "FlowMatch",
    "FlowStateRegistry",
    "FlowStateTable",
    "FlowTable",
    "FlowTableOracleError",
    "FusedChain",
    "FusionEngine",
    "LogicalSwitchInstance",
    "Output",
    "PopVlan",
    "PushVlan",
    "SelectOutput",
    "SetField",
    "SwitchPort",
    "VirtualLink",
    "flow_hash",
    "flow_key",
    "rendezvous_select",
]
