"""Flow-entry actions: output, VLAN tag manipulation, header rewrites.

Actions are applied in sequence to a frame; an action list with no
Output action drops the packet (OpenFlow semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.net.addresses import MacAddress
from repro.net.ethernet import EthernetFrame

__all__ = ["Action", "ActionError", "Controller", "FLOOD_PORT", "Output",
           "PopVlan", "PushVlan", "SetField"]

#: Pseudo port number: send to every port except ingress.
FLOOD_PORT = 0xFFFB
#: Pseudo port number: punt to the OpenFlow controller.
CONTROLLER_PORT = 0xFFFD


class ActionError(Exception):
    """Invalid action application (e.g. pop on an untagged frame)."""


@dataclass(frozen=True)
class Output:
    """Emit the frame on a port (or FLOOD)."""

    port: int

    def __str__(self) -> str:
        return "output:FLOOD" if self.port == FLOOD_PORT \
            else f"output:{self.port}"


@dataclass(frozen=True)
class Controller:
    """Punt the frame to the controller (packet-in)."""

    max_len: int = 128

    def __str__(self) -> str:
        return "output:CONTROLLER"


@dataclass(frozen=True)
class PushVlan:
    """Tag the frame; the traffic-marking primitive of the adaptation layer."""

    vid: int
    pcp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vid <= 4095:
            raise ValueError(f"bad VLAN id {self.vid}")

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        return frame.with_vlan(self.vid, self.pcp)

    def __str__(self) -> str:
        return f"push_vlan:{self.vid}"


@dataclass(frozen=True)
class PopVlan:
    """Strip the outer VLAN tag."""

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        if frame.vlan is None:
            raise ActionError("pop_vlan on an untagged frame")
        return frame.without_vlan()

    def __str__(self) -> str:
        return "pop_vlan"


@dataclass(frozen=True)
class SetField:
    """Rewrite a header field (eth_src / eth_dst / vlan_vid)."""

    field: str
    value: "int | str | MacAddress"

    _ALLOWED = ("eth_src", "eth_dst", "vlan_vid")

    def __post_init__(self) -> None:
        if self.field not in self._ALLOWED:
            raise ValueError(f"unsupported set-field {self.field!r}; "
                             f"one of {self._ALLOWED}")

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        from dataclasses import replace
        if self.field == "eth_src":
            return replace(frame, src=MacAddress(self.value))
        if self.field == "eth_dst":
            return replace(frame, dst=MacAddress(self.value))
        if frame.vlan is None:
            raise ActionError("set vlan_vid on an untagged frame")
        return replace(frame, vlan=int(self.value))

    def __str__(self) -> str:
        return f"set_{self.field}:{self.value}"


Action = Union[Output, Controller, PushVlan, PopVlan, SetField]
