"""Flow-entry actions: output, VLAN tag manipulation, header rewrites.

Actions are applied in sequence to a frame; an action list with no
Output action drops the packet (OpenFlow semantics).

Two execution forms exist:

* **Interpreted** — :meth:`~repro.switch.datapath.Datapath.execute_interpreted`
  walks the action list per frame, dispatching on each action's type.
  This is the reference semantics and the baseline the perf sweep
  measures against.
* **Compiled** — :func:`compile_actions` specializes an action list
  *once* into a single fused closure.  The hot steering shapes
  (``Output``, ``PushVlan+Output``, ``PopVlan+Output``,
  ``PopVlan+PushVlan+Output``) collapse to straight-line code with at
  most one frame copy; anything else falls back to a pre-dispatched
  opcode loop that never touches ``isinstance`` per frame.
  :class:`~repro.switch.flowtable.FlowEntry` compiles its list at
  construction and caches the closure, so the datapath executes one
  call per frame.

A compiled program is bound to the exact action tuple it was built
from; see :meth:`FlowEntry.invalidate` for the (rare) rebinding case.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence, Union

from repro.net.addresses import MacAddress
from repro.net.builder import ParsedFrame, parse_frame
from repro.net.ethernet import EthernetFrame

__all__ = ["Action", "ActionError", "CompiledActions", "Controller",
           "EmitFn", "FLOOD_PORT", "Output", "PopVlan", "PushVlan",
           "SelectOutput", "SetField", "compile_actions", "flow_hash",
           "flow_key", "hoisted_select", "rendezvous_select",
           "resolve_select"]

#: Pseudo port number: send to every port except ingress.
FLOOD_PORT = 0xFFFB
#: Pseudo port number: punt to the OpenFlow controller.
CONTROLLER_PORT = 0xFFFD


class ActionError(Exception):
    """Invalid action application (e.g. pop on an untagged frame)."""


@dataclass(frozen=True)
class Output:
    """Emit the frame on a port (or FLOOD)."""

    port: int

    def __str__(self) -> str:
        return "output:FLOOD" if self.port == FLOOD_PORT \
            else f"output:{self.port}"


@dataclass(frozen=True)
class Controller:
    """Punt the frame to the controller (packet-in)."""

    max_len: int = 128

    def __str__(self) -> str:
        return "output:CONTROLLER"


@dataclass(frozen=True)
class PushVlan:
    """Tag the frame; the traffic-marking primitive of the adaptation layer."""

    vid: int
    pcp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vid <= 4095:
            raise ValueError(f"bad VLAN id {self.vid}")

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        return frame.with_vlan(self.vid, self.pcp)

    def __str__(self) -> str:
        return f"push_vlan:{self.vid}"


@dataclass(frozen=True)
class PopVlan:
    """Strip the outer VLAN tag."""

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        if frame.vlan is None:
            raise ActionError("pop_vlan on an untagged frame")
        return frame.without_vlan()

    def __str__(self) -> str:
        return "pop_vlan"


#: 32-bit golden-ratio multiplier (Knuth); the per-step mixer of
#: :func:`flow_hash`.
_HASH_MULT = 0x9E3779B1


def flow_hash(parsed: ParsedFrame) -> int:
    """Deterministic 5-tuple hash of a parsed frame.

    Reads the :class:`~repro.net.builder.ParsedFrame`'s cached views —
    ``ip_ints`` for the addresses, the lazy UDP/TCP decode for the
    ports — so on the batched pipeline (which carries the parse across
    every hop) hashing a frame costs a few integer multiplies and **no
    parsing**.  The value is a pure function of (src, dst, proto,
    sport, dport): every frame of one flow hashes identically in both
    directions of the pipeline and across process restarts (no
    ``hash()`` randomization).  Non-IPv4 frames (ARP, raw L2) hash
    their (src MAC, dst MAC, ethertype): every L2 conversation gets a
    stable value of its own instead of all collapsing to 0 — so
    L2-only traffic both spreads across a replica group *and* keeps
    per-conversation affinity.  Never raises, whatever the payload.
    """
    ints = parsed.ip_ints
    if ints is None:
        eth = parsed.eth
        h = ((int(eth.src) * _HASH_MULT) ^ int(eth.dst)) & 0xFFFFFFFF
        h = ((h * _HASH_MULT) ^ eth.ethertype) & 0xFFFFFFFF
        h = (h * _HASH_MULT) & 0xFFFFFFFF
        return (h ^ (h >> 16)) & 0xFFFF
    h = ((ints[0] * _HASH_MULT) ^ ints[1]) & 0xFFFFFFFF
    h = ((h * _HASH_MULT) ^ parsed.ipv4.proto) & 0xFFFFFFFF
    udp = parsed.udp
    if udp is not None:
        l4 = (udp.src_port << 16) | udp.dst_port
    else:
        tcp = parsed.tcp
        l4 = ((tcp.src_port << 16) | tcp.dst_port) if tcp is not None else 0
    h = ((h ^ l4) * _HASH_MULT) & 0xFFFFFFFF
    # Small replica counts read few bits; finish with a fold so every
    # bit carries entropy from the whole word.
    return (h ^ (h >> 16)) & 0xFFFF


def flow_key(parsed: ParsedFrame) -> tuple:
    """Exact flow identity of a frame (state-table key).

    Where :func:`flow_hash` folds the flow down to 16 bits for the
    rendezvous weights, the *state* table needs collision-free
    identity: a hash collision between two flows must never glue their
    connection state together.  IPv4 frames key on the full 5-tuple
    ints; everything else keys on the L2 conversation (src MAC, dst
    MAC, ethertype).  Pure function of the frame, never raises.
    """
    ints = parsed.ip_ints
    if ints is None:
        eth = parsed.eth
        return (int(eth.src), int(eth.dst), eth.ethertype)
    udp = parsed.udp
    if udp is not None:
        l4 = (udp.src_port << 16) | udp.dst_port
    else:
        tcp = parsed.tcp
        l4 = ((tcp.src_port << 16) | tcp.dst_port) if tcp is not None else 0
    return (ints[0], ints[1], parsed.ipv4.proto, l4)


def _port_seed(port: int) -> int:
    """Per-port rendezvous seed: a 32-bit avalanche of the port number.

    Computed once per compiled program (or once per selection for the
    uncompiled reference path) — never per frame per port.
    """
    x = (port + 0x9E3779B9) & 0xFFFFFFFF
    x = ((x ^ (x >> 16)) * 0x85EBCA6B) & 0xFFFFFFFF
    x = ((x ^ (x >> 13)) * 0xC2B2AE35) & 0xFFFFFFFF
    return (x ^ (x >> 16)) & 0xFFFFFFFF


def rendezvous_select(ports: "tuple[int, ...]", flow: int,
                      seeds: "tuple[int, ...] | None" = None) -> int:
    """Highest-random-weight (rendezvous) port choice for a flow.

    Every (flow, port) pair gets an independent 32-bit weight; the
    port with the highest weight wins (ties break to the lowest port
    number, deterministically).  The defining property — what replaces
    the old ``ports[hash % N]`` — is *minimal churn*: adding a port
    moves exactly the flows the new port now wins (≈1/(N+1) of them),
    removing a port moves exactly the flows it owned (≈1/N), and every
    other flow keeps its port.  Pure integer arithmetic on
    :func:`flow_hash` output: deterministic across process restarts.

    ``seeds`` is the precomputed :func:`_port_seed` tuple aligned with
    ``ports``; hot paths pass it, one-shot callers may omit it.
    """
    if seeds is None:
        seeds = tuple(_port_seed(port) for port in ports)
    best = ports[0]
    x = (flow ^ seeds[0]) & 0xFFFFFFFF
    x = ((x ^ (x >> 16)) * 0x85EBCA6B) & 0xFFFFFFFF
    best_weight = (x ^ (x >> 13)) & 0xFFFFFFFF
    for i in range(1, len(ports)):
        x = (flow ^ seeds[i]) & 0xFFFFFFFF
        x = ((x ^ (x >> 16)) * 0x85EBCA6B) & 0xFFFFFFFF
        weight = (x ^ (x >> 13)) & 0xFFFFFFFF
        if weight > best_weight or (weight == best_weight
                                    and ports[i] < best):
            best_weight = weight
            best = ports[i]
    return best


def _carried_parse(dp: Any, frame: EthernetFrame) -> ParsedFrame:
    """The pipeline's parse of ``frame``, without re-parsing.

    Every datapath ingress path rebinds ``dp.carried[0]`` to the
    current frame's :class:`ParsedFrame` before actions run, so this
    is an attribute read plus an identity check.  A caller executing
    actions *outside* a pipeline pass (OpenFlow packet-out, direct
    ``execute`` in tests) has no carried parse and pays a one-off
    ``parse_frame`` — never the fast path.
    """
    cell = getattr(dp, "carried", None)
    if cell is not None:
        parsed = cell[0]
        if parsed is not None and parsed.eth is frame:
            return parsed
    return parse_frame(frame)


@dataclass(frozen=True)
class SelectOutput:
    """Hash-select one of several output ports (replica load balancing).

    The steering layer installs this on rules whose destination NF is a
    replica group: the frame leaves on the *rendezvous* winner of its
    flow hash over ``ports`` (:func:`rendezvous_select`), so every
    frame of one 5-tuple always takes the same port — *flow affinity* —
    and a stateful replica behind each port sees complete flows.  When
    the replica set changes, rendezvous hashing bounds the damage to
    ~1/N of flows (the old modulo remapped nearly all of them).

    ``group``, when set, names a per-flow *state table* on the
    executing datapath (:mod:`repro.switch.state`): established flows
    then stick to the replica that owns their state even across
    replica-set changes, not just across hash-stable ones.  The group
    id is codec-serializable (it rides the OpenFlow flow-mod) and is
    chosen by the steering layer to be stable across scale events —
    that stability is what carries ownership from one replica set to
    the next.
    """

    ports: tuple[int, ...]
    group: "str | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ports", tuple(self.ports))
        if not self.ports:
            raise ValueError("select-output needs at least one port")

    def __str__(self) -> str:
        text = "select:" + "|".join(str(port) for port in self.ports)
        return text if self.group is None else f"{text}@{self.group}"


@dataclass(frozen=True)
class SetField:
    """Rewrite a header field (eth_src / eth_dst / vlan_vid)."""

    field: str
    value: "int | str | MacAddress"

    _ALLOWED = ("eth_src", "eth_dst", "vlan_vid")

    def __post_init__(self) -> None:
        if self.field not in self._ALLOWED:
            raise ValueError(f"unsupported set-field {self.field!r}; "
                             f"one of {self._ALLOWED}")

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        if self.field == "eth_src":
            return replace(frame, src=MacAddress(self.value))
        if self.field == "eth_dst":
            return replace(frame, dst=MacAddress(self.value))
        if frame.vlan is None:
            raise ActionError("set vlan_vid on an untagged frame")
        return replace(frame, vlan=int(self.value))

    def __str__(self) -> str:
        return f"set_{self.field}:{self.value}"


def resolve_select(dp: Any, action: SelectOutput,
                   parsed: ParsedFrame) -> int:
    """Reference semantics of :class:`SelectOutput` for one frame.

    The interpreted action loop (and anything else outside a compiled
    program) resolves the output port through here, so the compiled
    shapes have exactly one oracle: stateless selects are pure
    rendezvous over the flow hash; stateful selects (``group`` set)
    consult the executing datapath's per-flow state table
    (:mod:`repro.switch.state`).
    """
    if action.group is None:
        return rendezvous_select(action.ports, flow_hash(parsed))
    table = dp.flow_state.table(action.group)
    return table.steer(parsed, action.ports, frozenset(action.ports))


def hoisted_select(action: SelectOutput) -> tuple:
    """``(ports, seeds, port_set, group)`` of one SelectOutput, hoisted.

    Everything a per-frame replica pick needs that is derivable from
    the action alone: the port tuple, the aligned rendezvous seed
    tuple (:func:`_port_seed`), the frozen live-port set the stateful
    steer consults, and the state-group name.  Computed once — at
    compile time by :func:`_compile_select`, at trace time by the
    chain-fusion select tail (:mod:`repro.switch.fusion`) — so both
    consumers pick replicas from identical constants.
    """
    ports = action.ports
    return (ports, tuple(_port_seed(port) for port in ports),
            frozenset(ports), action.group)


def _compile_select(action: SelectOutput):
    """The per-frame port picker of one SelectOutput, constants hoisted.

    Returns ``pick(dp, parsed) -> port`` with everything derivable
    from the action (see :func:`hoisted_select`) computed here, once
    per install.  A stateful picker resolves its datapath's state
    table on first use and caches it (a compiled program only ever
    runs on the datapath whose table holds its entry).
    """
    ports, seeds, port_set, group = hoisted_select(action)
    if group is None:
        def pick(dp: Any, parsed: ParsedFrame) -> int:
            return rendezvous_select(ports, flow_hash(parsed), seeds)
        return pick
    cache: list = [None, None]

    def pick_stateful(dp: Any, parsed: ParsedFrame) -> int:
        if cache[0] is not dp:
            cache[0] = dp
            cache[1] = dp.flow_state.table(group)
        return cache[1].steer(parsed, ports, port_set, seeds)
    return pick_stateful


Action = Union[Output, Controller, PushVlan, PopVlan, SetField,
               SelectOutput]

#: ``emit(out_port, in_port, frame)`` — how a compiled program hands a
#: frame to the datapath's routing policy (FLOOD expansion, drops).
EmitFn = Callable[[int, int, EthernetFrame], None]

#: ``compiled(dp, in_port, frame, emit)`` — one call runs the whole
#: action list for one frame.  ``dp`` is duck-typed: the program only
#: touches ``packet_in_handler``, ``action_errors``, ``dropped`` and —
#: for hash-select programs — ``carried``, the two-slot
#: ``[ParsedFrame, wire_len]`` cell every datapath ingress path rebinds
#: to the current frame before actions run (see :func:`_carried_parse`).
#: Every compiled program carries a ``mutates`` attribute: True when the
#: list contains a frame transform (push/pop/set-field), i.e. when an
#: emitted frame can be a different object than the input frame.  The
#: batched pipeline dispatches on the tag: a non-mutating program always
#: emits the ingress frame itself, so it runs with a carry-only emit
#: that forwards the existing :class:`~repro.net.builder.ParsedFrame`
#: to the next hop without even an identity check (see
#: ``Datapath._batch_emit``).
CompiledActions = Callable[[Any, int, EthernetFrame, EmitFn], None]

# Opcodes of the generic (non-specialized) compiled program.
_OP_XFORM = 0   # arg: frame -> frame (may raise ActionError)
_OP_OUT = 1     # arg: output port number
_OP_CTRL = 2    # arg: unused (packet-in punt)
_OP_SELECT = 3  # arg: the SelectOutput action (rendezvous-select one port)


def _compile_transform(action: "PushVlan | PopVlan | SetField"):
    """One frame transform, specialized at compile time.

    Everything per-frame is reduced to a single ``replace``: VLAN ids
    and PCPs are closed over as ints, and — the point of this function —
    a :class:`SetField` MAC target is converted to a
    :class:`MacAddress` exactly once here, not once per frame inside
    ``SetField.apply``.
    """
    if isinstance(action, PushVlan):
        vid, pcp = action.vid, action.pcp

        def push(frame: EthernetFrame) -> EthernetFrame:
            return replace(frame, vlan=vid, vlan_pcp=pcp)
        return push
    if isinstance(action, PopVlan):
        def pop(frame: EthernetFrame) -> EthernetFrame:
            if frame.vlan is None:
                raise ActionError("pop_vlan on an untagged frame")
            return replace(frame, vlan=None, vlan_pcp=0)
        return pop
    if action.field == "eth_src":
        src_mac = MacAddress(action.value)

        def set_src(frame: EthernetFrame) -> EthernetFrame:
            return replace(frame, src=src_mac)
        return set_src
    if action.field == "eth_dst":
        dst_mac = MacAddress(action.value)

        def set_dst(frame: EthernetFrame) -> EthernetFrame:
            return replace(frame, dst=dst_mac)
        return set_dst
    new_vid = int(action.value)

    def set_vid(frame: EthernetFrame) -> EthernetFrame:
        if frame.vlan is None:
            raise ActionError("set vlan_vid on an untagged frame")
        return replace(frame, vlan=new_vid)
    return set_vid


def compile_actions(actions: Sequence[Action]) -> CompiledActions:
    """Compile an action list into a single fused per-frame closure.

    The returned program is semantically identical to interpreting the
    list: transforms apply left to right, an :class:`ActionError`
    increments ``dp.action_errors`` and aborts the rest of the list
    (frames already emitted stay emitted), and a list containing no
    Output/Controller counts the frame as dropped.  The property suite
    in ``tests/test_compiled_actions.py`` asserts this equivalence over
    random action lists and frames.

    Constant work happens here, not per frame: set-field targets (e.g.
    MAC addresses given as strings) are converted once, and the program
    is tagged with ``mutates`` (see :data:`CompiledActions`).

    Unknown action types fail here, at compile time, instead of on the
    first matching packet.
    """
    acts = tuple(actions)
    kinds = tuple(type(action) for action in acts)

    # Fused fast shapes — everything the steering layer emits
    # (see TrafficSteeringManager._install_rule) compiles to one of
    # these: straight-line code, at most one frame copy, no loop.
    if kinds == (Output,):
        out = acts[0].port

        def run_out(dp: Any, in_port: int, frame: EthernetFrame,
                    emit: EmitFn) -> None:
            emit(out, in_port, frame)
        run_out.mutates = False
        # Pure-output marker: the batched pipeline reads this to skip
        # the program call (and the carried-cell rebind) entirely and
        # enqueue the parsed frame straight on the port — the per-emit
        # specialization of chain hops (see Datapath.process_batch_from).
        run_out.out_port = out
        return run_out

    if kinds == (SelectOutput,):
        select_ports = acts[0].ports
        if len(select_ports) == 1:
            only = select_ports[0]

            def run_select_one(dp: Any, in_port: int, frame: EthernetFrame,
                               emit: EmitFn) -> None:
                emit(only, in_port, frame)
            run_select_one.mutates = False
            run_select_one.out_port = only
            return run_select_one
        pick = _compile_select(acts[0])

        def run_select(dp: Any, in_port: int, frame: EthernetFrame,
                       emit: EmitFn) -> None:
            emit(pick(dp, _carried_parse(dp, frame)), in_port, frame)
        run_select.mutates = False
        return run_select

    if kinds == (PopVlan, SelectOutput):
        # The LB tail of an inter-LSI segment: strip the internal tag,
        # rendezvous-spread across the replica ports.  The hash reads
        # the *carried* parse of the ingress frame — VLAN ops never
        # touch the 5-tuple, so affinity is computed before the copy.
        pick = _compile_select(acts[1])

        def run_pop_select(dp: Any, in_port: int, frame: EthernetFrame,
                           emit: EmitFn) -> None:
            if frame.vlan is None:
                dp.action_errors += 1
                return
            out = pick(dp, _carried_parse(dp, frame))
            emit(out, in_port, replace(frame, vlan=None, vlan_pcp=0))
        run_pop_select.mutates = True
        return run_pop_select

    if kinds == (PushVlan, Output):
        vid, pcp, out = acts[0].vid, acts[0].pcp, acts[1].port

        def run_push_out(dp: Any, in_port: int, frame: EthernetFrame,
                         emit: EmitFn) -> None:
            emit(out, in_port, replace(frame, vlan=vid, vlan_pcp=pcp))
        run_push_out.mutates = True
        return run_push_out

    if kinds == (PopVlan, Output):
        out = acts[1].port

        def run_pop_out(dp: Any, in_port: int, frame: EthernetFrame,
                        emit: EmitFn) -> None:
            if frame.vlan is None:
                dp.action_errors += 1
                return
            emit(out, in_port, replace(frame, vlan=None, vlan_pcp=0))
        run_pop_out.mutates = True
        return run_pop_out

    if kinds == (PopVlan, PushVlan, Output):
        # Retag: pop+push fuse into a single replace (one frame copy
        # instead of two) — the inter-LSI segment's exact shape.
        vid, pcp, out = acts[1].vid, acts[1].pcp, acts[2].port

        def run_retag_out(dp: Any, in_port: int, frame: EthernetFrame,
                          emit: EmitFn) -> None:
            if frame.vlan is None:
                dp.action_errors += 1
                return
            emit(out, in_port, replace(frame, vlan=vid, vlan_pcp=pcp))
        run_retag_out.mutates = True
        return run_retag_out

    if kinds == (SetField, PushVlan, Output) \
            and acts[0].field in ("eth_src", "eth_dst"):
        # MAC rewrite + tag fuse into one replace; the MacAddress target
        # is built here, once per install, never per frame.
        mac_kw = {"src" if acts[0].field == "eth_src" else "dst":
                  MacAddress(acts[0].value)}
        vid, pcp, out = acts[1].vid, acts[1].pcp, acts[2].port

        def run_setmac_push_out(dp: Any, in_port: int, frame: EthernetFrame,
                                emit: EmitFn) -> None:
            emit(out, in_port,
                 replace(frame, vlan=vid, vlan_pcp=pcp, **mac_kw))
        run_setmac_push_out.mutates = True
        return run_setmac_push_out

    # Generic program: dispatch resolved at compile time into small-int
    # opcodes; transforms are closures specialized per action (see
    # :func:`_compile_transform`).
    steps: list[tuple[int, Any]] = []
    emits = False
    mutates = False
    for action in acts:
        if isinstance(action, Output):
            steps.append((_OP_OUT, action.port))
            emits = True
        elif isinstance(action, Controller):
            steps.append((_OP_CTRL, None))
            emits = True
        elif isinstance(action, SelectOutput):
            steps.append((_OP_SELECT, _compile_select(action)))
            emits = True
        elif isinstance(action, (PushVlan, PopVlan, SetField)):
            steps.append((_OP_XFORM, _compile_transform(action)))
            mutates = True
        else:
            raise TypeError(f"unknown action {action!r}")
    program = tuple(steps)
    drops = not emits

    def run_generic(dp: Any, in_port: int, frame: EthernetFrame,
                    emit: EmitFn) -> None:
        current = frame
        for op, arg in program:
            if op == _OP_OUT:
                emit(arg, in_port, current)
            elif op == _OP_XFORM:
                try:
                    current = arg(current)
                except ActionError:
                    dp.action_errors += 1
                    return
            elif op == _OP_SELECT:
                # Hash on the *ingress* frame's parse: the transforms a
                # program may have applied are all L2-only, so the
                # 5-tuple is the carried one either way.
                parsed = _carried_parse(dp, frame)
                emit(arg(dp, parsed), in_port, current)
            else:
                handler = dp.packet_in_handler
                if handler is not None:
                    handler(dp, in_port, current)
        if drops:
            dp.dropped += 1
    run_generic.mutates = mutates
    return run_generic
