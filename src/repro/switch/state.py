"""Per-flow state tables: match -> state -> action for the datapath.

The stateful-forwarding abstraction (OpenState, arXiv:1611.02853)
keeps flow state *in the switch*: a lookup keyed on the flow precedes
the action, the action may update the state, and aging reclaims idle
entries.  Here the abstraction serves one job the paper's NFV node
needs badly: **replica affinity across scale events**.  A rendezvous
hash (:func:`repro.switch.actions.rendezvous_select`) already bounds
churn to ~1/N of flows per replica-set change — but a stateful NF
(NAT, firewall, IPsec) cannot afford even that for *established*
connections.  So every load-balancing hop with a ``group`` consults a
:class:`FlowStateTable`:

* **match** — the exact flow key (:func:`repro.switch.actions.flow_key`:
  full 5-tuple ints for IPv4, the L2 conversation otherwise);
* **state** — the owning replica port plus last-seen time;
* **action** — emit on the owner if it is still in the live port set
  (*pinned*); rendezvous-reselect when the owner left (*remapped*) or
  the entry idled out (*churned* if the fresh choice differs); insert
  on first sight.

First sight of an *established* TCP flow (ACK set, SYN clear) is
special: it predates the state table — the destination was a single
instance before the group first scaled out, so the flow's connection
state lives on the replica that kept the base identity.  The steering
layer records that port as :attr:`FlowStateTable.default_owner` when
it installs a spread, and unknown-but-established flows are adopted
to it instead of being sprayed.  New flows (SYN, or anything the
frame cannot prove established) take the rendezvous choice — that is
the load balancing.

Aging runs on a pluggable clock: wall-monotonic by default, rebound
to the virtual clock by sim-driven control loops (the same contract
as the event journal), so state lifetimes in tests are deterministic.
Tables are bounded (``capacity``); overflow evicts idle entries
first, then the least-recently-seen.

Fusion interplay: chain fusion traces *into* a terminal
``SelectOutput`` hop (:class:`repro.switch.fusion.FusedSelectChain`),
but the state decision itself is never baked in — the fused program
calls :meth:`FlowStateTable.steer` per frame in arrival order, on the
very table object the compiled picker would consult, so pins, remaps
and adoptions evolve identically on both paths.  The program holds
that table by identity and refuses to run if the registry dropped or
recreated the group; the steering layer still drops fused chains
around every LB-rule install/uninstall exactly like any other
flow-mod.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.net.builder import ParsedFrame
from repro.switch.actions import flow_hash, flow_key, rendezvous_select

__all__ = ["FlowStateEntry", "FlowStateRegistry", "FlowStateTable"]

#: Seconds of inactivity before a flow's state entry ages out.
DEFAULT_IDLE_TIMEOUT = 120.0
#: Entries per table before eviction kicks in.
DEFAULT_CAPACITY = 65536

# TCP flag masks for the established test (ACK set, SYN clear).
_TCP_SYN = 0x02
_TCP_ACK = 0x10


class FlowStateEntry:
    """State of one flow: owning port + timestamps."""

    __slots__ = ("port", "born", "last_seen")

    def __init__(self, port: int, now: float) -> None:
        self.port = port
        self.born = now
        self.last_seen = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowStateEntry port={self.port} seen={self.last_seen}>"


def _established(parsed: ParsedFrame) -> bool:
    """Whether the frame proves an already-established connection.

    Only TCP can: ACK without SYN means both ends completed the
    handshake before this frame.  UDP/L2 traffic has no handshake to
    read, so a state-table miss there is treated as a new flow.
    """
    tcp = parsed.tcp
    return (tcp is not None
            and (tcp.flags & (_TCP_SYN | _TCP_ACK)) == _TCP_ACK)


class FlowStateTable:
    """One group's flow-state store (see the module docstring)."""

    __slots__ = ("name", "idle_timeout", "capacity", "default_owner",
                 "_entries", "_now", "pinned", "remapped", "churned",
                 "adopted", "inserted", "expired", "evicted")

    def __init__(self, name: str = "",
                 idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
                 capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {idle_timeout}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.name = name
        self.idle_timeout = idle_timeout
        self.capacity = capacity
        #: The port that owned every flow before this group first
        #: scaled out (replica 0's port); unknown-but-established
        #: flows are adopted here.  None disables adoption.
        self.default_owner: Optional[int] = None
        self._entries: dict = {}
        self._now = clock if clock is not None else time.monotonic
        self.pinned = 0
        self.remapped = 0
        self.churned = 0
        self.adopted = 0
        self.inserted = 0
        self.expired = 0
        self.evicted = 0

    # -- the hot path -----------------------------------------------------------
    def steer(self, parsed: ParsedFrame, ports: "tuple[int, ...]",
              port_set: frozenset,
              seeds: "tuple[int, ...] | None" = None) -> int:
        """match -> state -> action for one frame; returns the port.

        ``ports``/``port_set``/``seeds`` describe the live replica set
        of the select action consulting the table (the caller hoists
        them out of the per-frame path).
        """
        now = self._now()
        key = flow_key(parsed)
        entries = self._entries
        entry = entries.get(key)
        old_port: Optional[int] = None
        if entry is not None:
            if now - entry.last_seen > self.idle_timeout:
                # Aged out mid-conversation gap: forget the owner and
                # treat the flow as fresh (it re-enters below).
                old_port = entry.port
                del entries[key]
                self.expired += 1
            elif entry.port in port_set:
                entry.last_seen = now
                self.pinned += 1
                return entry.port
            else:
                # The owner left the replica set (scale-in, heal):
                # the flow must move; rendezvous picks its new home.
                port = rendezvous_select(ports, flow_hash(parsed), seeds)
                entry.port = port
                entry.last_seen = now
                self.remapped += 1
                self.churned += 1
                return port
        if (self.default_owner is not None
                and self.default_owner in port_set
                and _established(parsed)):
            port = self.default_owner
            self.adopted += 1
        else:
            port = rendezvous_select(ports, flow_hash(parsed), seeds)
        if old_port is not None and port != old_port:
            self.churned += 1
        self._insert(key, port, now)
        return port

    def _insert(self, key, port: int, now: float) -> None:
        entries = self._entries
        if len(entries) >= self.capacity:
            self.expire(now)
            if len(entries) >= self.capacity:
                oldest = min(entries, key=lambda k: entries[k].last_seen)
                del entries[oldest]
                self.evicted += 1
        entries[key] = FlowStateEntry(port, now)
        self.inserted += 1

    # -- lifecycle --------------------------------------------------------------
    def expire(self, now: Optional[float] = None) -> int:
        """Sweep idle entries; returns how many aged out."""
        if now is None:
            now = self._now()
        horizon = now - self.idle_timeout
        entries = self._entries
        dead = [key for key, entry in entries.items()
                if entry.last_seen < horizon]
        for key in dead:
            del entries[key]
        self.expired += len(dead)
        return len(dead)

    def owner(self, parsed: ParsedFrame) -> Optional[int]:
        """The recorded owner port of a frame's flow (inspection)."""
        entry = self._entries.get(flow_key(parsed))
        return entry.port if entry is not None else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "flows": len(self._entries),
            "pinned": self.pinned,
            "remapped": self.remapped,
            "churned": self.churned,
            "adopted": self.adopted,
            "inserted": self.inserted,
            "expired": self.expired,
            "evicted": self.evicted,
        }


class FlowStateRegistry:
    """A datapath's state tables, one per select group.

    Tables are created on first consultation and *persist across rule
    installs* — that persistence is the whole point: the LB rule id
    changes with every replica count (``@lbN``), but the group id does
    not, so established-flow ownership survives the reinstall.  The
    registry's :attr:`clock` is read dynamically by every table it
    owns; rebinding it (sim-driven control loops) rebases aging for
    all of them at once.
    """

    def __init__(self, name: str = "",
                 idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.idle_timeout = idle_timeout
        self.capacity = capacity
        self.clock: Callable[[], float] = time.monotonic
        self._tables: dict[str, FlowStateTable] = {}

    def _now(self) -> float:
        return self.clock()

    def table(self, group: str) -> FlowStateTable:
        table = self._tables.get(group)
        if table is None:
            table = FlowStateTable(name=group,
                                   idle_timeout=self.idle_timeout,
                                   capacity=self.capacity,
                                   clock=self._now)
            self._tables[group] = table
        return table

    def peek(self, group: str) -> "FlowStateTable | None":
        """The group's table if it exists, without creating it.

        Fused select tails (:mod:`repro.switch.fusion`) resolve their
        state table once at trace time and re-check its *identity*
        here on every run — a dropped-and-recreated group must fail
        the check rather than silently steer against forgotten state.
        """
        return self._tables.get(group)

    def tables(self) -> "dict[str, FlowStateTable]":
        return dict(self._tables)

    def drop(self, group: str) -> bool:
        """Forget one group's state entirely (graph teardown)."""
        return self._tables.pop(group, None) is not None

    def expire(self, now: Optional[float] = None) -> int:
        """Sweep idle entries in every table; returns total aged out."""
        return sum(table.expire(now) for table in self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def stats(self) -> dict:
        """Aggregated counters over every group (telemetry view)."""
        totals = {"groups": len(self._tables), "flows": 0, "pinned": 0,
                  "remapped": 0, "churned": 0, "adopted": 0,
                  "inserted": 0, "expired": 0, "evicted": 0}
        for table in self._tables.values():
            for key, value in table.stats().items():
                totals[key] += value
        return totals
