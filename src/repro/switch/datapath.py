"""The switch pipeline: ports, table lookup, action execution, packet-in.

A :class:`Datapath` is a single-table OpenFlow-style switch.  Ports
either wrap a :class:`~repro.linuxnet.devices.NetDevice` (NF ports and
node physical ports) or connect to another datapath through a
:class:`~repro.switch.lsi.VirtualLink` (inter-LSI wiring).

Three ingress paths exist:

* :meth:`Datapath.process` — one frame, counters updated inline;
* :meth:`Datapath.process_batch` — many ``(in_port, frame)`` pairs,
  amortizing per-packet overheads: flow counters *and* port rx/tx
  counters are accumulated locally and flushed once per batch, and
  frames leaving through a virtual link are carried to the far LSI as
  one batch so a whole chain of LSIs runs batch-at-a-time;
* :meth:`Datapath.process_batch_from` — a whole batch from *one*
  ingress port (what virtual links and batch-aware NetDevices deliver);
  same semantics with the port lookup and rx accounting hoisted out of
  the per-frame loop.

The batch paths are *zero-reparse*: each frame is parsed at most once
per chain.  Batch items may be raw :class:`EthernetFrame` objects
(parsed on entry) or already-carried
:class:`~repro.net.builder.ParsedFrame` views; egress queues hold
``ParsedFrame`` objects and virtual links forward them as-is, so the
next hop's lookup reuses the existing parse (including the lazy
IPv4/L4 decode and cached ``ip_ints``).  When a compiled action list
rewrites a frame (``compiled.mutates``), the emitted frame's parse is
*derived* from the carried one (:meth:`ParsedFrame.derive`): still-valid
layers carry over, anything the rewrite could have touched is dropped.

Action execution is *compiled*: every matching frame runs its entry's
cached closure (one call — see
:func:`repro.switch.actions.compile_actions`).  Set
``datapath.compiled_actions = False`` to fall back to the interpreted
reference loop (:meth:`Datapath.execute_interpreted`), which the perf
sweep uses as its baseline and the property suite as its oracle.

One level further up sits *chain fusion*
(:mod:`repro.switch.fusion`): when an ingress entry's whole chain —
pure-output/rewrite hops over ``carry_parsed`` links to a terminal
egress — is statically determined, the batch paths collect its frames
into one group and settle the entire traversal at flush through a
:class:`~repro.switch.fusion.FusedChain`: a single ingress lookup, no
intermediate ``carry_batch``/``process_batch_from`` round-trips, all
per-hop counters accumulated arithmetically.  Fused programs are
re-validated immediately before running, so any mid-batch change
along the chain falls the group back to the per-hop batch path, which
stays the differential oracle (``datapath.fusion.enabled = False``
pins it).

Batch contracts (both batch paths): the ingress port is resolved once
per same-port run (not per frame), taps run in a pre-pass over the
run's frames before any lookup, and rx counters flush once per run —
a packet-in handler therefore sees pre-run rx totals, pre-batch
flow/tx totals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.linuxnet.devices import NetDevice
from repro.net.builder import ParsedFrame, parse_frame
from repro.net.ethernet import EthernetFrame
from repro.switch.actions import (
    ActionError,
    Controller,
    EmitFn,
    FLOOD_PORT,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    SetField,
    resolve_select,
)
from repro.switch.flowtable import FlowEntry, FlowTable
from repro.switch.fusion import FusedChain, FusionEngine
from repro.switch.state import FlowStateRegistry

__all__ = ["Datapath", "SwitchPort"]

PacketInHandler = Callable[["Datapath", int, EthernetFrame], None]
TapHandler = Callable[[int, EthernetFrame], None]


class SwitchPort:
    """One switch port, optionally bound to a NetDevice."""

    def __init__(self, port_no: int, name: str,
                 device: Optional[NetDevice] = None) -> None:
        self.port_no = port_no
        self.name = name
        self.device = device
        self.datapath: Optional["Datapath"] = None
        self.peer_link = None  # set by VirtualLink
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    def deliver_out(self, frame: EthernetFrame) -> None:
        """Frame leaving the switch through this port."""
        self.tx_packets += 1
        self.tx_bytes += len(frame)
        if self.device is not None:
            # Out the device towards its peer (veth half inside an NF
            # namespace, or the node's physical NIC).
            self.device.transmit(frame)
        elif self.peer_link is not None:
            self.peer_link.carry(self, frame)

    def deliver_out_batch(self, frames: list[ParsedFrame],
                          nbytes: Optional[int] = None) -> None:
        """Batch egress of carried parses: a device receives the raw
        frames in one ``transmit_batch``, a virtual-link peer receives
        the parsed views in one carry (no re-parse at the far LSI).

        ``nbytes`` is the batch's total wire length, accumulated by the
        datapath's emit closures as frames were queued — passing it
        spares the flush a second ``wire_len`` pass; ``None`` (direct
        callers) re-sums."""
        self.tx_packets += len(frames)
        self.tx_bytes += (nbytes if nbytes is not None
                          else sum(parsed.wire_len for parsed in frames))
        if self.device is not None:
            self.device.transmit_batch([parsed.eth for parsed in frames])
        elif self.peer_link is not None:
            self.peer_link.carry_batch(self, frames)

    def __repr__(self) -> str:
        return f"<SwitchPort {self.port_no}:{self.name}>"


class _BatchState:
    """Shared mutable state of one batch invocation: the flow-counter
    accumulator and egress queues every ingress run feeds, the emit
    closures bound to them, and — when fusion is engaged — the fused
    groups awaiting settlement in :meth:`Datapath._finish_batch`.

    ``fusion`` is the ingress datapath's engine when fusion is live
    for this batch (enabled, compiled mode, no taps), else ``None``.
    ``fused`` maps ingress ``entry_id`` to
    ``[program, frames, nbytes, in_port, disp_n, disp_bytes]``
    groups — ``disp_n``/``disp_bytes`` count the group's frames that
    arrived through a dispatch slot and therefore still owe their
    ingress lookup/flow counters at flush (lookup-path frames settled
    theirs through ``pending``).  One group per entry regardless of
    arrival path, so per-entry egress order survives a mid-batch mix
    of dispatch hits and lookup hits.  ``dispatch_engaged`` records
    whether the per-port dispatch layer was live for this batch (it
    additionally requires ``fusion.dispatch_enabled`` and the table's
    oracle mode off — dispatch skips ``lookup()``, which would
    silently bypass the oracle cross-check).
    """

    __slots__ = ("pending", "queues", "emit", "emit_carry", "enqueue",
                 "fusion", "fused", "dispatch_engaged", "trace")


class Datapath:
    """Single-table software switch."""

    def __init__(self, dpid: int, name: str = "") -> None:
        self.dpid = dpid
        self.name = name or f"dp{dpid}"
        self.table = FlowTable()
        self.ports: dict[int, SwitchPort] = {}
        self._ports_by_name: dict[str, SwitchPort] = {}
        self._next_port = 1
        self.packet_in_handler: Optional[PacketInHandler] = None
        self.taps: list[TapHandler] = []
        self.rx_packets = 0
        self.table_misses = 0
        self.dropped = 0
        self.action_errors = 0
        #: False switches execute() to the interpreted reference loop
        #: (perf baseline / property-test oracle).
        self.compiled_actions = True
        #: ``[ParsedFrame, wire_len]`` of the frame whose actions are
        #: currently executing.  Every ingress path rebinds slot 0
        #: before actions run; compiled programs that need header
        #: fields beyond L2 (hash select-output) read the parse from
        #: here instead of re-parsing the frame.  Single-threaded by
        #: design, like the rest of the pipeline; a packet-in handler
        #: that re-injects mid-program would clobber it, so hash-select
        #: programs read the cell before any punt.
        self.carried: list = [None, 0]
        #: Chain-fusion engine for chains whose *ingress* is this LSI
        #: (see :mod:`repro.switch.fusion`).  On by default; the perf
        #: sweep's per-hop leg and the differential oracle disable it
        #: per instance.
        self.fusion = FusionEngine(self)
        #: Per-flow state tables consulted by stateful select-output
        #: actions (``SelectOutput.group``); see
        #: :mod:`repro.switch.state`.  Tables outlive the flow entries
        #: that consult them — replica-affinity state survives the
        #: rule churn of a scale event by design.
        self.flow_state = FlowStateRegistry(name=self.name)
        #: Optional :class:`repro.telemetry.tracing.Tracer`.  When
        #: attached, ``_begin_batch`` runs its 1-in-N sampler inline —
        #: an unsampled batch pays one counter compare and nothing
        #: else; a sampled batch records an ingress→dispatch→hops→
        #: egress span tree and the per-batch latency histogram.
        self.tracer = None

    # -- port management --------------------------------------------------------
    def add_port(self, name: str, device: Optional[NetDevice] = None,
                 port_no: Optional[int] = None) -> SwitchPort:
        if port_no is None:
            port_no = self._next_port
        if port_no in self.ports:
            raise ValueError(f"port {port_no} already on {self.name}")
        self._next_port = max(self._next_port, port_no) + 1
        port = SwitchPort(port_no, name, device)
        port.datapath = self
        self.ports[port_no] = port
        # First port wins on duplicate names, like the old linear scan.
        self._ports_by_name.setdefault(name, port)
        if device is not None:
            device.attach_handler(
                lambda dev, frame, p=port_no: self.process(p, frame),
                batch_handler=lambda dev, frames, p=port_no:
                    self.process_batch_from(p, frames))
            if not device.up:
                device.set_up()
        return port

    def remove_port(self, port_no: int) -> SwitchPort:
        try:
            port = self.ports.pop(port_no)
        except KeyError:
            raise KeyError(f"no port {port_no} on {self.name}") from None
        if self._ports_by_name.get(port.name) is port:
            del self._ports_by_name[port.name]
            # Another port may share the name; restore the earliest-added
            # one (dict insertion order — the old linear scan's winner).
            for other in self.ports.values():
                if other.name == port.name:
                    self._ports_by_name[port.name] = other
                    break
        if port.device is not None:
            port.device.detach_handler()
        port.datapath = None
        return port

    def port_by_name(self, name: str) -> SwitchPort:
        try:
            return self._ports_by_name[name]
        except KeyError:
            raise KeyError(
                f"no port named {name!r} on {self.name}") from None

    # -- pipeline -----------------------------------------------------------------
    def process(self, in_port: int, frame: EthernetFrame) -> None:
        """Run one frame through the pipeline."""
        if in_port not in self.ports:
            raise KeyError(f"frame from unknown port {in_port} on {self.name}")
        self.rx_packets += 1
        port = self.ports[in_port]
        parsed = parse_frame(frame)
        port.rx_packets += 1
        port.rx_bytes += parsed.wire_len
        for tap in self.taps:
            tap(in_port, frame)
        entry = self.table.lookup(in_port, parsed)
        if entry is None:
            self.table_misses += 1
            if self.packet_in_handler is not None:
                self.packet_in_handler(self, in_port, frame)
            else:
                self.dropped += 1
            return
        carried = self.carried
        carried[0] = parsed
        carried[1] = parsed.wire_len
        self.execute(entry, in_port, frame)

    def _batch_emit(self, queues: dict[int, list], carried: list):
        """Build the shared egress closures of one batch run.

        ``carried[0]`` is rebound to the current frame's
        :class:`ParsedFrame` (and ``carried[1]`` to its wire length)
        before each program runs.  Each queue is a two-slot
        ``[frames, nbytes]`` accumulator: the emit closures add every
        frame's wire length as it is queued, so the flush hands the
        egress port a ready total instead of re-summing ``wire_len``
        over the whole queue.  Two emit closures share the queues,
        selected per entry by the compiled program's ``mutates`` tag:

        * ``emit`` (mutating programs, and the interpreted loop)
          re-attaches the carried parse to whatever the program hands
          back — an emitted frame identical to the ingress frame keeps
          its parse wholesale, a rewritten frame gets a parse *derived*
          from it, so still-valid layers are never decoded again;
        * ``emit_carry`` (non-mutating programs) skips even that
          identity check: such a program only ever emits the ingress
          frame object itself, so the carried parse (and its
          already-known size) is forwarded as-is.

        Pure-output entries (``compiled.out_port`` set) bypass all of
        this: the batch loops inline the enqueue per entry and never
        rebind ``carried`` for them; ``enqueue`` is returned so those
        inline paths can hand cold ports / FLOOD to ``_route``.
        """
        ports = self.ports

        def enqueue(number: int, port: SwitchPort,
                    parsed: ParsedFrame) -> None:
            acc = queues.get(number)
            if acc is None:
                queues[number] = [[parsed], parsed.wire_len]
            else:
                acc[0].append(parsed)
                acc[1] += parsed.wire_len

        def emit(out_port: int, in_port: int, frame: EthernetFrame) -> None:
            parsed = carried[0]
            if frame is not parsed.eth:
                parsed = parsed.derive(frame)
                size = parsed.wire_len
            else:
                size = carried[1]
            # Unicast to an already-seen port is the hot case: one dict
            # hit and an append.  Everything else (first frame for a
            # port, FLOOD, unknown port) takes the shared _route policy.
            acc = queues.get(out_port)
            if acc is not None:
                acc[0].append(parsed)
                acc[1] += size
                return
            if out_port == FLOOD_PORT or out_port not in ports:
                self._route(out_port, in_port, parsed, enqueue)
                return
            queues[out_port] = [[parsed], size]

        def emit_carry(out_port: int, in_port: int,
                       frame: EthernetFrame) -> None:
            parsed = carried[0]
            acc = queues.get(out_port)
            if acc is not None:
                acc[0].append(parsed)
                acc[1] += carried[1]
                return
            if out_port == FLOOD_PORT or out_port not in ports:
                self._route(out_port, in_port, parsed, enqueue)
                return
            queues[out_port] = [[parsed], carried[1]]

        return emit, emit_carry, enqueue

    def _flush_batch(self, pending: dict, queues: dict[int, list]) -> None:
        """Write the flow counters and drain the egress queues of one
        batch run (rx counters are flushed by the caller, whose
        accumulation shape differs per ingress path).  Each queue
        carries its byte total alongside the frames, so no second
        ``wire_len`` pass happens here."""
        table = self.table
        for entry, packets, nbytes in pending.values():
            table.credit(entry, packets, nbytes)
        for port_no, (frames, nbytes) in queues.items():
            port = self.ports.get(port_no)
            if port is None:  # removed by a tap/handler mid-batch
                self.dropped += len(frames)
                continue
            port.deliver_out_batch(frames, nbytes)

    def _begin_batch(self) -> _BatchState:
        """Build the shared state of one batch invocation."""
        state = _BatchState()
        state.pending = {}
        state.queues = {}
        state.emit, state.emit_carry, state.enqueue = \
            self._batch_emit(state.queues, self.carried)
        engine = self.fusion
        # Fusion engages only when the chain hot path itself would run
        # unobserved: compiled mode and no taps (a tap must see every
        # frame per hop, which a fused chain by design does not do).
        state.fusion = (engine if engine.enabled and self.compiled_actions
                        and not self.taps else None)
        state.fused = {}
        state.dispatch_engaged = False
        tracer = self.tracer
        if tracer is None:
            state.trace = None
        else:
            # Inline 1-in-N batch sampler: the unsampled path is this
            # counter bump and compare, with no call and no clock read.
            n = tracer.batch_counter + 1
            if n >= tracer.sample_every:
                tracer.batch_counter = 0
                state.trace = tracer.begin_batch(self.name)
            else:
                tracer.batch_counter = n
                state.trace = None
        return state

    def _run_ingress(self, in_port: int,
                     frames: "Iterable[EthernetFrame | ParsedFrame]",
                     state: _BatchState) -> None:
        """The one batch inner loop: run a same-ingress-port run of
        frames into the batch state.  Both batch entry points reduce
        to calls of this (their only difference is how runs are
        segmented), so the fusion fallback has exactly one per-hop body
        to stay equivalent to.

        Taps run in a pre-pass (frames are parsed once, here or in the
        loop, never twice); rx counters flush in this method's
        ``finally``, once per run, covering exactly the frames pulled
        from the iterator.
        """
        port = self.ports.get(in_port)
        if port is None:
            raise KeyError(
                f"frame from unknown port {in_port} on {self.name}")
        taps = self.taps
        if taps:
            frames = [frame if type(frame) is ParsedFrame
                      else parse_frame(frame) for frame in frames]
            for parsed in frames:
                eth = parsed.eth
                for tap in taps:
                    tap(in_port, eth)
        table = self.table
        ports = self.ports
        compiled = self.compiled_actions
        pending = state.pending
        queues = state.queues
        emit = state.emit
        emit_carry = state.emit_carry
        enqueue = state.enqueue
        fusion = state.fusion
        fused = state.fused
        carried = self.carried
        dispatch = None
        if fusion is not None and fusion.dispatch_enabled \
                and not table.oracle:
            dispatch = fusion.dispatch.get(in_port)
            if dispatch is None:
                dispatch = fusion.dispatch[in_port] = {}
            state.dispatch_engaged = True
        packets = 0
        nbytes = 0

        try:
            for frame in frames:
                if dispatch is not None:
                    # Dispatch fast path: one dict probe and a version
                    # compare takes the frame straight to its fused
                    # program — no table walk, no pending bookkeeping,
                    # and (for raw ingress frames) no ``ParsedFrame``
                    # allocation at all: the frame is parked as-is and
                    # the program normalizes at delivery, so a plain
                    # fused chain never decodes past L2.  The group's
                    # dispatch counters settle the ingress lookup/flow
                    # totals at flush.  The version is checked per
                    # frame so a mid-batch flow-mod re-resolves the
                    # slice immediately.
                    if type(frame) is ParsedFrame:
                        eth = frame.eth
                        size = frame.wire_len
                    else:
                        if frame.__class__ is bytes:
                            frame = EthernetFrame.from_bytes(frame)
                        eth = frame
                        size = len(frame)
                    packets += 1
                    nbytes += size
                    slot = dispatch.get(eth.vlan)
                    if slot is None or slot[0] != table.version:
                        slot = fusion.build_slot(dispatch, in_port,
                                                 eth.vlan)
                    entry = slot[1]
                    if entry is not None:
                        group = fused.get(entry.entry_id)
                        if group is None:
                            fused[entry.entry_id] = [slot[2], [frame],
                                                     size, in_port,
                                                     1, size]
                        else:
                            group[1].append(frame)
                            group[2] += size
                            group[4] += 1
                            group[5] += size
                        continue
                    parsed = (frame if type(frame) is ParsedFrame
                              else parse_frame(frame))
                else:
                    parsed = (frame if type(frame) is ParsedFrame
                              else parse_frame(frame))
                    size = parsed.wire_len
                    packets += 1
                    nbytes += size
                entry = table.lookup(in_port, parsed, count=False)
                if entry is None:
                    self.table_misses += 1
                    if self.packet_in_handler is not None:
                        self.packet_in_handler(self, in_port, parsed.eth)
                    else:
                        self.dropped += 1
                    continue
                acc = pending.get(entry.entry_id)
                if acc is None:
                    pending[entry.entry_id] = [entry, 1, size]
                else:
                    acc[1] += 1
                    acc[2] += size
                if fusion is not None:
                    program = entry.fused
                    if type(program) is int:
                        program = (None if program != fusion.epoch
                                   else program)
                    if program is None:
                        program = fusion.trace(entry)
                    if type(program) is not int:
                        # Whole-chain hop: park the frame for one
                        # straight-line settlement at flush instead of
                        # walking it hop by hop.
                        group = fused.get(entry.entry_id)
                        if group is None:
                            fused[entry.entry_id] = [program, [parsed],
                                                     size, in_port,
                                                     0, 0]
                        else:
                            group[1].append(parsed)
                            group[2] += size
                        continue
                if compiled:
                    out_fast = entry.fast_out
                    if out_fast is not None:
                        # Pure-output hop: enqueue the carried parse
                        # with one dict hit and an append — no carried
                        # rebind, no program call, no emit closure.
                        acc = queues.get(out_fast)
                        if acc is not None:
                            acc[0].append(parsed)
                            acc[1] += size
                        elif out_fast == FLOOD_PORT \
                                or out_fast not in ports:
                            self._route(out_fast, in_port, parsed, enqueue)
                        else:
                            queues[out_fast] = [[parsed], size]
                        continue
                    carried[0] = parsed
                    carried[1] = size
                    program = entry.compiled
                    program(self, in_port, parsed.eth,
                            emit if program.mutates else emit_carry)
                else:
                    carried[0] = parsed
                    carried[1] = size
                    self.execute_interpreted(entry.actions, in_port,
                                             parsed.eth, emit)
        finally:
            # A bad frame or raising handler must not lose the run's
            # prefix: account what was actually pulled and processed.
            self.rx_packets += packets
            port.rx_packets += packets
            port.rx_bytes += nbytes

    def _fused_fallback(self, entry: FlowEntry, frames: list[ParsedFrame],
                        in_port: int, state: _BatchState) -> None:
        """Per-hop execution of a fused group whose program went stale
        between collection and flush (mid-batch flow-mod, port removal,
        tap attach...).  The frames' ingress rx and flow counters are
        already accounted; this replays only the execution arm of
        :meth:`_run_ingress` into the live queues, after which the
        normal flush carries them to the (possibly changed) next hop.

        Dispatch-hit frames were parked *raw* (no ingress parse); they
        get their one ``ParsedFrame`` here — the same single parse per
        frame the per-hop path would have paid at ingress.
        """
        queues = state.queues
        ports = self.ports
        carried = self.carried
        frames = [parsed if type(parsed) is ParsedFrame
                  else parse_frame(parsed) for parsed in frames]
        if not self.compiled_actions:  # flipped mid-batch
            for parsed in frames:
                carried[0] = parsed
                carried[1] = parsed.wire_len
                self.execute_interpreted(entry.actions, in_port,
                                         parsed.eth, state.emit)
            return
        out_fast = entry.fast_out
        if out_fast is not None:
            for parsed in frames:
                size = parsed.wire_len
                acc = queues.get(out_fast)
                if acc is not None:
                    acc[0].append(parsed)
                    acc[1] += size
                elif out_fast == FLOOD_PORT or out_fast not in ports:
                    self._route(out_fast, in_port, parsed, state.enqueue)
                else:
                    queues[out_fast] = [[parsed], size]
            return
        program = entry.compiled
        deliver = state.emit if program.mutates else state.emit_carry
        for parsed in frames:
            carried[0] = parsed
            carried[1] = parsed.wire_len
            program(self, in_port, parsed.eth, deliver)

    def _finish_batch(self, state: _BatchState) -> None:
        """Settle one batch: run (or fall back) the fused groups, then
        flush flow counters and drain the egress queues.

        Every fused program is re-validated *immediately before*
        running, so a mid-batch change anywhere along its chain —
        flow-mod, replica change, port removal, tap attach, link
        rewire — can never run a stale program: the group takes the
        per-hop path and the program is dropped for re-tracing.
        """
        fusion = state.fusion
        if fusion is not None:
            hits = 0
            dispatched = 0
            table = self.table
            # Per-graph attribution (opt-in: steering-managed LSIs
            # only): cookie -> [matched, hits, dispatched] this batch.
            shares = {} if fusion.track_cookies else None
            for group in state.fused.values():
                program, frames, nbytes, in_port, disp_n, disp_bytes = \
                    group
                if disp_n:
                    # Dispatch-hit frames skipped table.lookup() and
                    # the pending accumulator; settle the ingress
                    # lookup/match/flow counters they owe *before*
                    # running or falling back, so both arms start from
                    # per-hop-identical counter state.
                    dispatched += disp_n
                    table.lookups += disp_n
                    table.credit(program.ingress_entry, disp_n,
                                 disp_bytes)
                if program.valid():
                    program.run(frames, nbytes)
                    group_hits = len(frames)
                    hits += group_hits
                else:
                    fusion.invalidations += 1
                    entry = program.ingress_entry
                    entry.fused = None
                    slots = entry.dispatch
                    if slots:
                        # No slice may keep dispatching to a program
                        # that just failed validation.
                        for slot in slots:
                            slot[0] = -1
                            slot[1] = None
                            slot[2] = None
                        del slots[:]
                    self._fused_fallback(entry, frames, in_port, state)
                    group_hits = 0
                if shares is not None:
                    cookie = program.ingress_entry.cookie
                    if cookie:
                        row = shares.get(cookie)
                        if row is None:
                            row = shares[cookie] = [0, 0, 0]
                        row[0] += disp_n
                        row[1] += group_hits
                        row[2] += disp_n
            matched = dispatched
            for acc in state.pending.values():
                matched += acc[1]
            fusion.hits += hits
            fusion.misses += matched - hits
            if state.dispatch_engaged:
                fusion.dispatch_hits += dispatched
                fusion.dispatch_misses += matched - dispatched
            if shares is not None:
                # Lookup-path frames count toward their entry's cookie;
                # settle each graph's share with the same matched-minus
                # arithmetic as the aggregates above.
                for acc in state.pending.values():
                    cookie = acc[0].cookie
                    if cookie:
                        row = shares.get(cookie)
                        if row is None:
                            row = shares[cookie] = [0, 0, 0]
                        row[0] += acc[1]
                engaged = state.dispatch_engaged
                cookie_stats = fusion.cookie_stats
                for cookie, (c_matched, c_hits, c_disp) in shares.items():
                    totals = cookie_stats.get(cookie)
                    if totals is None:
                        totals = cookie_stats[cookie] = [0, 0, 0, 0]
                    totals[0] += c_hits
                    totals[1] += c_matched - c_hits
                    if engaged:
                        totals[2] += c_disp
                        totals[3] += c_matched - c_disp
        self._flush_batch(state.pending, state.queues)
        if state.trace is not None:
            self.tracer.finish_batch(state.trace, self, state)

    def process_batch(self,
                      batch: "Iterable[tuple[int, EthernetFrame | ParsedFrame]]") -> None:
        """Run a batch of ``(in_port, frame)`` through the pipeline.

        Behaviorally equivalent to calling :meth:`process` per frame,
        except that side effects are amortized: the batch is segmented
        into runs of consecutive same-``in_port`` frames, each handed
        to the shared inner loop (:meth:`_run_ingress` — port resolved
        once per run, taps in a pre-pass, rx counters flushed once per
        run), while flow counters and egress queues span the whole
        batch and flush once at the end (a tap or packet-in handler
        that inspects them mid-batch sees pre-batch values).  Egress is
        coalesced per output port — virtual links forward one batch to
        the far LSI instead of recursing per frame — and whole-chain
        fused entries settle straight to the terminal at flush.
        Per-port egress order is preserved among matched frames of any
        one flow entry.  A packet-in handler that re-injects via
        :meth:`process` delivers immediately, i.e. ahead of frames
        still queued for the batch flush.

        Frames may be raw :class:`EthernetFrame` objects or
        :class:`ParsedFrame` views carried from an upstream hop; the
        latter are *not* re-parsed (see the module docstring).
        """
        state = self._begin_batch()
        run_port: Optional[int] = None
        run: list = []
        try:
            for in_port, frame in batch:
                if in_port != run_port and run:
                    flushing, run = run, []
                    self._run_ingress(run_port, flushing, state)
                run_port = in_port
                run.append(frame)
            if run:
                self._run_ingress(run_port, run, state)
        finally:
            self._finish_batch(state)

    def process_batch_from(
            self, in_port: int,
            frames: "Iterable[EthernetFrame | ParsedFrame]") -> None:
        """Run a batch of frames arriving on one ingress port.

        Semantically ``process_batch((in_port, f) for f in frames)``,
        but the single-port shape — what a virtual link carries to the
        next LSI and what a batch-aware :class:`NetDevice` hands its
        handler — is exactly one run of the shared inner loop: no
        ``(port, frame)`` tuples and no segmentation scan.  This is
        the chain hot path.
        """
        state = self._begin_batch()
        try:
            self._run_ingress(in_port, frames, state)
        finally:
            self._finish_batch(state)

    def execute(self, entry: FlowEntry, in_port: int,
                frame: EthernetFrame, emit: Optional[EmitFn] = None) -> None:
        """Run ``entry``'s actions on one frame (compiled by default)."""
        deliver = self._emit if emit is None else emit
        if self.compiled_actions:
            entry.compiled(self, in_port, frame, deliver)
        else:
            self.execute_interpreted(entry.actions, in_port, frame, deliver)

    def execute_interpreted(self, actions: Iterable, in_port: int,
                            frame: EthernetFrame,
                            deliver: Optional[EmitFn] = None) -> None:
        """Reference action interpreter: per-frame type dispatch.

        Kept as the semantic baseline for the compiled closures — the
        perf sweep times it and ``tests/test_compiled_actions.py``
        asserts both paths produce identical emissions and counters.
        It is also the right path for one-shot action lists (OpenFlow
        packet-out), which would waste a compile per message.
        """
        if deliver is None:
            deliver = self._emit
        current = frame
        emitted = False
        for action in actions:
            if isinstance(action, Output):
                emitted = True
                deliver(action.port, in_port, current)
            elif isinstance(action, SelectOutput):
                # Reference semantics of hash-select: the same
                # rendezvous / state-table resolution as the compiled
                # form (resolve_select), computed from the carried
                # parse when the pipeline provided one (ingress-frame
                # identity), from a one-off parse otherwise.
                emitted = True
                parsed = self.carried[0]
                if parsed is None or parsed.eth is not frame:
                    parsed = parse_frame(frame)
                deliver(resolve_select(self, action, parsed),
                        in_port, current)
            elif isinstance(action, Controller):
                emitted = True
                if self.packet_in_handler is not None:
                    self.packet_in_handler(self, in_port, current)
            elif isinstance(action, (PushVlan, PopVlan, SetField)):
                try:
                    current = action.apply(current)
                except ActionError:
                    self.action_errors += 1
                    return
            else:  # pragma: no cover - action union is closed
                raise TypeError(f"unknown action {action!r}")
        if not emitted:
            self.dropped += 1

    def _route(self, out_port: int, in_port: int, frame: EthernetFrame,
               deliver: Callable[[int, SwitchPort, EthernetFrame],
                                 None]) -> None:
        """Routing policy shared by the single-frame and batched paths:
        FLOOD expands to every port but the ingress, unknown ports count
        as drops."""
        if out_port == FLOOD_PORT:
            for number, port in self.ports.items():
                if number != in_port:
                    deliver(number, port, frame)
            return
        port = self.ports.get(out_port)
        if port is None:
            self.dropped += 1
            return
        deliver(out_port, port, frame)

    def _emit(self, out_port: int, in_port: int,
              frame: EthernetFrame) -> None:
        self._route(out_port, in_port, frame,
                    lambda number, port, fr: port.deliver_out(fr))

    # -- convenience -----------------------------------------------------------
    def install(self, entry: FlowEntry) -> None:
        """Direct table write (tests); production path is OpenFlow."""
        self.table.add(entry)

    def describe(self) -> str:
        lines = [f"datapath {self.name} dpid={self.dpid:#x} "
                 f"ports={len(self.ports)} flows={len(self.table)}"]
        for number in sorted(self.ports):
            port = self.ports[number]
            lines.append(f"  port {number}: {port.name}")
        lines.extend("  " + text for text in self.table.dump())
        return "\n".join(lines)
