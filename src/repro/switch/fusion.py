"""Chain fusion: compile whole LSI chains into straight-line programs.

The batched pipeline already amortizes per-frame overheads *within*
one LSI, but a chain of LSIs (Figure 1: LSI-0 classifies into a graph
LSI, which steers through the NFs) still pays Python per hop: lookup,
compiled closure, egress queue, ``carry_batch``, and another full
``process_batch_from`` on the far side.  Steering rules are stable
between flow-mods, so that whole traversal is a *constant* per flow
entry — the same observation that let :func:`compile_actions` fuse an
action list one level down.

:class:`FusionEngine` (one per :class:`~repro.switch.datapath.Datapath`,
created in ``Datapath.__init__``) traces the chain a flow entry's
frames would take — ingress lookup, pure-output/rewrite hops over
virtual links, terminal egress — and lowers it into one
:class:`FusedChain`: a straight-line program that runs a **single**
table lookup at the chain ingress, crosses every link with zero
intermediate ``carry_batch``/``process_batch_from`` round-trips,
applies the *composed* header rewrite once per frame, and settles
every per-hop counter (flow packets/bytes, table lookups/matches,
port rx/tx, link ``carried``, datapath rx) arithmetically at flush.

Fuseability.  A hop fuses when its winning entry's actions are VLAN /
MAC transforms followed by exactly one concrete ``Output``, and the
*next* hop's winner is frame-independent: the first entry of the far
table compatible with ``(in_port, vlan-state)`` must match on those
two fields alone (``FlowMatch._port_vlan_only``) and must be the same
entry for every alive VLAN branch.  A chain may also *end* in a
``SelectOutput`` replica spread over device-backed ports: the trace
then lowers into a :class:`FusedSelectChain`, which settles the
prefix hops arithmetically and runs the per-frame replica pick — the
same ``rendezvous_select`` / :class:`~repro.switch.state.FlowStateTable`
pin lookup the compiled shapes use, constants hoisted at trace time —
inside the fused program instead of bailing to the interpreter.
Anything else — FLOOD, drops, punts, taps on a datapath,
``carry_parsed=False`` links, interpreted mode, table misses, cycles —
bails the trace, and the entry simply stays on the per-hop batch path
(which remains the differential oracle for every fused program).

Terminal delivery is a *byte splice*: the composed header rewrite of
the whole chain is precomputed at trace time into a field-merge
closure that builds each egress :class:`EthernetFrame` directly
(``__new__`` + dict splice), skipping both the per-hop
``replace``/``__post_init__`` validation chain and the terminal
``ParsedFrame.derive`` entirely — the rewrite constants were
validated once, when the splice was compiled.

Dispatch.  On top of per-entry programs, the engine keeps a per-port
**dispatch table**: ``in_port -> {vlan-state -> slot}`` where a slot
pins the frame-independent lookup winner of that ``(in_port, vlan)``
traffic slice (:meth:`~repro.switch.flowtable.FlowTable.slice_winner`)
together with its fused program.  When a slot is live, the batch
ingress loop jumps straight from frame to program — no ``FlowTable``
walk, no per-frame pending bookkeeping (ingress lookup/match/flow
counters settle arithmetically at flush, like every downstream hop).
Slots are stamped with ``FlowTable.version`` and re-checked per frame,
so a mid-batch flow-mod re-resolves the slice immediately; steering
invalidation and reactive fallbacks tear slots down through the
``FlowEntry.dispatch`` back-references.  Slices whose winner depends
on frame fields (or whose winner is not fused) hold a *negative* slot
and take the normal lookup path at one dict probe of extra cost.

VLAN state is tracked *symbolically* with up to two branches: an
ingress match with a wildcard VLAN admits both initially-tagged and
initially-untagged frames, whose wire lengths diverge by 4 bytes the
moment a push/pop happens.  Each hop records per-branch byte deltas,
so the settled byte counters are exact: frames are classified once at
run time (tagged vs untagged) only when the branches actually differ.

Invalidation.  A fused program records the ``version`` of every
:class:`~repro.switch.flowtable.FlowTable` it traversed plus the
identity of every port/link/closure it relies on, and re-validates all
of it at flush time, immediately before running — so a flow-mod, port
removal, tap attach or replica change *anywhere* along the chain
(even mid-batch, from a packet-in handler) can never run a stale
program: the group falls back to the per-hop path and the program is
dropped for re-tracing.  The steering layer additionally drops every
program *before* its strict deletes reach the tables
(:meth:`~repro.core.steering.TrafficSteeringManager.invalidate_fusion`),
so the window where a stale positive exists at all is confined to
direct table writes, which the version check covers.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.builder import ParsedFrame, parse_frame
from repro.net.ethernet import EthernetFrame
from repro.switch.actions import (
    FLOOD_PORT,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    SetField,
    flow_hash,
    hoisted_select,
    rendezvous_select,
)
from repro.switch.flowtable import ANY_VLAN, NO_VLAN, FlowEntry, FlowTable

__all__ = ["FusedChain", "FusedSelectChain", "FusionEngine",
           "MAX_CHAIN_DEPTH"]

#: Trace depth cap: chains longer than this stay per-hop.  Real
#: steering chains are 2-3 hops; the cap only guards degenerate wiring.
MAX_CHAIN_DEPTH = 32

#: Wire-length delta of gaining/losing an 802.1Q tag.
_TAG_BYTES = 4

#: VLAN id of a tagged branch whose concrete id is not statically known
#: (wildcard/ANY_VLAN ingress match).  Distinct from every real id and
#: from ``None`` (untagged).
_UNKNOWN = object()


class _Hop:
    """One traversed hop of a fused chain: identities to re-validate
    and the counter deltas to settle.

    ``in_dt``/``in_du`` are the wire-length offsets (vs the ingress
    frame) of frames *arriving* at this hop, per branch (initially-
    tagged / initially-untagged); ``out_dt``/``out_du`` after this
    hop's transforms.  ``link``/``far_port``/``far_dp`` are ``None``
    on the terminal hop.
    """

    __slots__ = ("dp", "table", "version", "entry", "compiled",
                 "in_dt", "in_du", "out_no", "out_port",
                 "out_dt", "out_du", "link", "far_port", "far_dp")


def _compile_splice(kwargs: dict):
    """The byte-splice closure for one composed rewrite, or ``None``.

    ``replace(eth, **kwargs)`` runs the dataclass constructor — and
    its ``__post_init__`` range checks — once per frame.  The fused
    terminal already validated the rewrite constants at trace time
    (:func:`_splice_fields_valid`), so the splice builds the egress
    frame structurally: allocate with ``__new__`` and merge the field
    dict.  One dict splice per frame, no validation re-run.
    """
    if not kwargs:
        return None
    fields = dict(kwargs)

    def splice(eth: EthernetFrame, _new=EthernetFrame.__new__,
               _cls=EthernetFrame, _fields=fields) -> EthernetFrame:
        out = _new(_cls)
        out.__dict__ = {**eth.__dict__, **_fields}
        return out
    return splice


def _splice_fields_valid(kwargs: dict) -> bool:
    """Whether the composed rewrite passes the ``EthernetFrame``
    constructor checks for every frame.  A constant the constructor
    would reject must keep the chain on the per-hop path, where the
    per-frame ``replace`` raises exactly as it always did."""
    vlan = kwargs.get("vlan")
    if vlan is not None and not 0 <= vlan <= 0xFFF:
        return False
    pcp = kwargs.get("vlan_pcp")
    if pcp is not None and not 0 <= pcp <= 7:
        return False
    return True


class FusedChain:
    """The straight-line program for one (ingress entry, chain) pair."""

    __slots__ = ("hops", "kwargs", "splice", "two_branch",
                 "ingress_entry", "device")

    def __init__(self, hops: list[_Hop], kwargs: dict,
                 two_branch: bool) -> None:
        self.hops = tuple(hops)
        #: Composition of every transform along the chain; empty for
        #: identity chains, where frames forward untouched.  Applied
        #: once per frame at the terminal through :attr:`splice`.
        self.kwargs = kwargs
        self.splice = _compile_splice(kwargs)
        self.two_branch = two_branch
        self.ingress_entry = hops[0].entry
        self.device = hops[-1].out_port.device

    def valid(self) -> bool:
        """Cheap staleness check, run per group immediately before
        :meth:`run`: every traversed table is at its traced version and
        every identity the trace relied on still holds."""
        for hop in self.hops:
            dp = hop.dp
            if (hop.table.version != hop.version
                    or hop.entry.compiled is not hop.compiled
                    or dp.taps or not dp.compiled_actions
                    or dp.ports.get(hop.out_no) is not hop.out_port
                    or hop.out_port.peer_link is not hop.link):
                return False
            link = hop.link
            if link is not None and (
                    not link.carry_parsed
                    or hop.far_port.datapath is not hop.far_dp):
                return False
        return self.hops[-1].out_port.device is self.device

    def run(self, frames: list, nbytes: int) -> None:
        """Run the whole chain for one batch group: settle every
        per-hop counter arithmetically, then deliver at the terminal.

        ``frames`` all matched the ingress entry (whose own flow/rx
        counters the ingress loop accounted, exactly as on the per-hop
        path); everything downstream of the ingress lookup is settled
        here.  Per-flow egress order is preserved — frames of one
        ingress entry leave the terminal port in arrival order.

        A group may mix :class:`ParsedFrame` views (lookup-path or
        carried arrivals) with *raw* ``EthernetFrame`` objects (the
        dispatch fast path parks frames unparsed — a plain fused chain
        never needs anything past L2, so the parse is skipped, not
        deferred).
        """
        n = len(frames)
        nu = 0
        if self.two_branch:
            for parsed in frames:
                eth = parsed.eth if parsed.__class__ is ParsedFrame \
                    else parsed
                if eth.vlan is None:
                    nu += 1
        nt = n - nu
        first = True
        for hop in self.hops:
            if first:
                first = False
            else:
                # Downstream hop bookkeeping the per-hop path would do
                # in process_batch_from: datapath + port rx (the port rx
                # was settled by the previous hop's link segment below),
                # one lookup+match per frame, and the flow counters with
                # the frames' wire length *as they arrived here*.
                hop.dp.rx_packets += n
                table = hop.table
                table.lookups += n
                table.matches += n
                entry = hop.entry
                entry.packets += n
                entry.bytes += nbytes + nt * hop.in_dt + nu * hop.in_du
            out_bytes = nbytes + nt * hop.out_dt + nu * hop.out_du
            port = hop.out_port
            port.tx_packets += n
            port.tx_bytes += out_bytes
            link = hop.link
            if link is not None:
                link.carried += n
                far = hop.far_port
                far.rx_packets += n
                far.rx_bytes += out_bytes
        device = self.device
        if device is None:
            # Counting sink: counters are settled, nothing materializes.
            return
        splice = self.splice
        if splice is None:
            device.transmit_batch([
                parsed.eth if parsed.__class__ is ParsedFrame else parsed
                for parsed in frames])
        else:
            device.transmit_batch([
                splice(parsed.eth if parsed.__class__ is ParsedFrame
                       else parsed)
                for parsed in frames])


class FusedSelectChain:
    """A fused chain ending in a ``SelectOutput`` replica spread.

    The prefix hops settle exactly like a :class:`FusedChain`; the
    tail hop then runs the per-frame replica pick *inside* the fused
    program: ``rendezvous_select`` over trace-hoisted seeds for
    stateless spreads, the datapath's
    :class:`~repro.switch.state.FlowStateTable` ``steer`` (pin /
    remap / adopt, identical counter evolution) for stateful ones —
    in frame arrival order, so state-table side effects match the
    per-hop path bit for bit.  Frames bucket per chosen replica and
    leave through the terminal byte splice.

    Validity additionally pins the replica ports: any port removal,
    device rebind, or a replica port growing a virtual link (the
    trace only accepts device/sink replicas) fails :meth:`valid` and
    the group falls back per-hop.  A replica-set or state-group
    change arrives as a rule reinstall, which the steering layer
    precedes with a full invalidation; direct table writes are caught
    by the tail's table-version stamp.
    """

    __slots__ = ("hops", "kwargs", "splice", "two_branch",
                 "ingress_entry", "dp", "table", "version", "entry",
                 "compiled", "in_dt", "in_du", "out_dt", "out_du",
                 "ports", "seeds", "port_set", "group", "state",
                 "replicas")

    def __init__(self, hops: list[_Hop], kwargs: dict, two_branch: bool,
                 tail_dp, tail_entry: FlowEntry, in_dt: int, in_du: int,
                 out_dt: int, out_du: int, select: SelectOutput,
                 state, replicas: dict) -> None:
        self.hops = tuple(hops)
        self.kwargs = kwargs
        self.splice = _compile_splice(kwargs)
        self.two_branch = two_branch
        self.ingress_entry = hops[0].entry
        self.dp = tail_dp
        self.table = tail_dp.table
        self.version = tail_dp.table.version
        self.entry = tail_entry
        self.compiled = tail_entry.compiled
        self.in_dt, self.in_du = in_dt, in_du
        self.out_dt, self.out_du = out_dt, out_du
        self.ports, self.seeds, self.port_set, self.group = \
            hoisted_select(select)
        #: The state table resolved at trace time (``group`` spreads);
        #: identity is re-checked in :meth:`valid` so a dropped-and-
        #: recreated group (graph teardown) can never run against the
        #: stale table object.
        self.state = state
        #: ``out_no -> (SwitchPort, device)`` for every replica.
        self.replicas = replicas

    def valid(self) -> bool:
        for hop in self.hops:
            dp = hop.dp
            if (hop.table.version != hop.version
                    or hop.entry.compiled is not hop.compiled
                    or dp.taps or not dp.compiled_actions
                    or dp.ports.get(hop.out_no) is not hop.out_port
                    or hop.out_port.peer_link is not hop.link):
                return False
            link = hop.link
            if link is not None and (
                    not link.carry_parsed
                    or hop.far_port.datapath is not hop.far_dp):
                return False
        dp = self.dp
        if (self.table.version != self.version
                or self.entry.compiled is not self.compiled
                or dp.taps or not dp.compiled_actions):
            return False
        if self.group is not None and \
                dp.flow_state.peek(self.group) is not self.state:
            return False
        ports = dp.ports
        for out_no, (port, device) in self.replicas.items():
            if (ports.get(out_no) is not port
                    or port.peer_link is not None
                    or port.device is not device):
                return False
        return True

    def run(self, frames: list, nbytes: int) -> None:
        # The replica pick hashes L3/L4, so this program *does* need
        # full parses; frames the dispatch fast path parked raw get
        # their one ParsedFrame here (same single parse per frame the
        # per-hop path pays at ingress).
        frames = [parsed if parsed.__class__ is ParsedFrame
                  else parse_frame(parsed) for parsed in frames]
        n = len(frames)
        nu = 0
        two_branch = self.two_branch
        if two_branch:
            for parsed in frames:
                if parsed.eth.vlan is None:
                    nu += 1
        nt = n - nu
        first = True
        for hop in self.hops:
            if first:
                first = False
            else:
                hop.dp.rx_packets += n
                table = hop.table
                table.lookups += n
                table.matches += n
                entry = hop.entry
                entry.packets += n
                entry.bytes += nbytes + nt * hop.in_dt + nu * hop.in_du
            out_bytes = nbytes + nt * hop.out_dt + nu * hop.out_du
            port = hop.out_port
            port.tx_packets += n
            port.tx_bytes += out_bytes
            link = hop.link
            if link is not None:
                link.carried += n
                far = hop.far_port
                far.rx_packets += n
                far.rx_bytes += out_bytes
        # Tail-hop arrival bookkeeping (the prefix's last link segment
        # settled the far port's rx above).
        self.dp.rx_packets += n
        table = self.table
        table.lookups += n
        table.matches += n
        entry = self.entry
        entry.packets += n
        entry.bytes += nbytes + nt * self.in_dt + nu * self.in_du
        # Per-frame replica pick, in arrival order; buckets keep
        # insertion order, so per-replica egress order matches the
        # per-hop queues exactly.
        ports = self.ports
        seeds = self.seeds
        state = self.state
        out_dt = self.out_dt
        out_du = self.out_du
        buckets: dict = {}
        if state is None:
            for parsed in frames:
                out = rendezvous_select(ports, flow_hash(parsed), seeds)
                size = parsed.wire_len + (
                    out_dt if not two_branch or parsed.eth.vlan is not None
                    else out_du)
                acc = buckets.get(out)
                if acc is None:
                    buckets[out] = [[parsed], size]
                else:
                    acc[0].append(parsed)
                    acc[1] += size
        else:
            port_set = self.port_set
            for parsed in frames:
                out = state.steer(parsed, ports, port_set, seeds)
                size = parsed.wire_len + (
                    out_dt if not two_branch or parsed.eth.vlan is not None
                    else out_du)
                acc = buckets.get(out)
                if acc is None:
                    buckets[out] = [[parsed], size]
                else:
                    acc[0].append(parsed)
                    acc[1] += size
        splice = self.splice
        replicas = self.replicas
        for out, (bucket, bucket_bytes) in buckets.items():
            port, device = replicas[out]
            port.tx_packets += len(bucket)
            port.tx_bytes += bucket_bytes
            if device is None:  # counting sink
                continue
            if splice is None:
                device.transmit_batch([parsed.eth for parsed in bucket])
            else:
                device.transmit_batch([splice(parsed.eth)
                                       for parsed in bucket])


def _ingress_branches(vlan_vid: Optional[int]) -> list[list]:
    """Symbolic VLAN state(s) admitted by the ingress match.

    Branch = ``[tagged, vid, delta]``; when two branches exist the
    first is always the initially-tagged one (run-time classification
    keys on ``eth.vlan is None``).
    """
    if vlan_vid is None:
        return [[True, _UNKNOWN, 0], [False, None, 0]]
    if vlan_vid == ANY_VLAN:
        return [[True, _UNKNOWN, 0]]
    if vlan_vid == NO_VLAN:
        return [[False, None, 0]]
    return [[True, vlan_vid, 0]]


def _resolve_next(table: FlowTable, in_port: int,
                  branches: list[list]) -> Optional[FlowEntry]:
    """The unique frame-independent winner of the far table's lookup.

    Walks the priority-sorted entries once; an entry is the winner for
    a branch when it is the first one compatible with ``(in_port,
    vlan-state)``.  Any compatible candidate that also matches frame
    fields (not ``_port_vlan_only``), an undecidable comparison
    (unknown tagged vid vs a concrete match), a branch with no winner
    (table miss), or branches disagreeing on the winner → ``None``.
    """
    winners: list = [None] * len(branches)
    unassigned = len(branches)
    for entry in table:
        match = entry.match
        want_port = match.in_port
        if want_port is not None and want_port != in_port:
            continue
        want_vid = match.vlan_vid
        pending = []
        for index, branch in enumerate(branches):
            if winners[index] is not None:
                continue
            tagged, vid = branch[0], branch[1]
            if want_vid is None:
                ok = True
            elif want_vid == NO_VLAN:
                ok = not tagged
            elif want_vid == ANY_VLAN:
                ok = tagged
            elif not tagged:
                ok = False
            elif vid is _UNKNOWN:
                return None
            else:
                ok = vid == want_vid
            if ok:
                pending.append(index)
        if not pending:
            continue
        if not match._port_vlan_only:
            return None
        for index in pending:
            winners[index] = entry
        unassigned -= len(pending)
        if not unassigned:
            break
    if unassigned:
        return None
    first = winners[0]
    for winner in winners:
        if winner is not first:
            return None
    return first


class FusionEngine:
    """Per-datapath fusion state: tracing, caching, counters.

    An engine traces chains whose *ingress* is its datapath; programs
    are cached on the ingress :class:`FlowEntry` (``entry.fused``).
    Failed traces are negative-cached with the engine's ``epoch`` —
    :meth:`invalidate` bumps it, so a steering-level change retries
    every trace while per-frame cost for unfuseable entries stays at
    one attribute read and an int compare.
    """

    __slots__ = ("dp", "enabled", "dispatch_enabled", "epoch",
                 "dispatch", "hits", "misses", "dispatch_hits",
                 "dispatch_misses", "invalidations", "programs_built",
                 "track_cookies", "cookie_stats")

    def __init__(self, dp) -> None:
        self.dp = dp
        #: Production default is on; the perf sweep's per-hop leg and
        #: the differential suites flip it per instance.
        self.enabled = True
        #: Per-port dispatch over fused programs (see module
        #: docstring).  Separately togglable so the perf sweep can
        #: time plain fusion against dispatch fusion; production runs
        #: with both on.
        self.dispatch_enabled = True
        self.epoch = 1
        #: ``in_port -> {vlan-state -> [version, entry, program]}``
        #: dispatch slots.  ``vlan-state`` is the frame's tag state
        #: (concrete vid or ``None``).  A slot whose version is stale
        #: is rebuilt by :meth:`build_slot`; ``entry is None`` marks a
        #: negative slot (the slice cannot be dispatched at this table
        #: version) and sends frames down the normal lookup path.
        self.dispatch: dict = {}
        #: Frames delivered through fused programs.
        self.hits = 0
        #: Matched frames that took the per-hop path while fusion was
        #: engaged for the batch (unfuseable entries and fallbacks).
        self.misses = 0
        #: Matched frames that skipped the ingress ``FlowTable`` walk
        #: entirely via a live dispatch slot / matched frames that ran
        #: the lookup while dispatch was engaged.  Cumulative, like
        #: every other telemetry counter; :meth:`invalidate` tears the
        #: dispatch *table* down but never rewinds these.
        self.dispatch_hits = 0
        self.dispatch_misses = 0
        #: Fused programs dropped — proactive (steering invalidate) or
        #: reactive (flush-time validity failure → per-hop fallback).
        self.invalidations = 0
        self.programs_built = 0
        #: Opt-in per-cookie attribution (steering-managed LSIs turn it
        #: on): ``cookie -> [hits, misses, dispatch_hits,
        #: dispatch_misses]``.  Chains that fuse at node-ingress LSI-0
        #: never touch their graph LSI's engine, so this is how a
        #: graph's share of LSI-0 traffic is recovered — every flow
        #: entry of graph ``g`` carries ``g``'s cookie.
        self.track_cookies = False
        self.cookie_stats: dict = {}

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "dispatch-hits": self.dispatch_hits,
                "dispatch-misses": self.dispatch_misses,
                "invalidations": self.invalidations,
                "programs-built": self.programs_built,
                "enabled": self.enabled}

    def stats_for_cookie(self, cookie: int) -> dict:
        """One graph's share of this engine's fused/dispatch traffic
        (zeroes when :attr:`track_cookies` is off or nothing arrived)."""
        totals = self.cookie_stats.get(cookie)
        if totals is None:
            return {"hits": 0, "misses": 0,
                    "dispatch-hits": 0, "dispatch-misses": 0}
        return {"hits": totals[0], "misses": totals[1],
                "dispatch-hits": totals[2], "dispatch-misses": totals[3]}

    def invalidate(self) -> int:
        """Drop every cached program/verdict traced from this LSI's
        entries, and the whole dispatch table with them; returns how
        many live programs went.  Bumping the epoch also retires
        negative caches, so entries re-trace against the post-change
        rule set."""
        self.epoch += 1
        self.dispatch.clear()
        dropped = 0
        for entry in self.dp.table:
            slots = entry.dispatch
            if slots:
                # A batch loop that hoisted a per-port slot dict before
                # this invalidation ran (packet-in handler mid-batch)
                # still holds these slots; stamp them stale so not one
                # more frame dispatches through them.
                for slot in slots:
                    slot[0] = -1
                    slot[1] = None
                    slot[2] = None
                del slots[:]
            cached = entry.fused
            if cached is not None:
                if type(cached) is not int:
                    dropped += 1
                entry.fused = None
        self.invalidations += dropped
        if dropped:
            tracer = self.dp.tracer
            if tracer is not None:
                # Live programs were torn down: feed the invalidation-
                # storm detector (deploy-time invalidates with nothing
                # cached don't count — no live work was lost).
                tracer.note_invalidation(self.dp.name, dropped)
        return dropped

    def build_slot(self, port_dispatch: dict, in_port: int,
                   vlan: Optional[int]) -> list:
        """(Re)build the dispatch slot of one ``(in_port, vlan)`` slice.

        Called from the batch ingress loop when a slice has no slot or
        its version stamp went stale.  Resolves the slice's frame-
        independent winner, traces it if needed, and installs a
        ``[version, entry, program]`` slot — positive only when the
        winner exists *and* fused, negative otherwise.  Positive slots
        register on ``entry.dispatch`` so reactive teardown reaches
        them without scanning the table.
        """
        table = self.dp.table
        slot = [table.version, None, None]
        entry = table.slice_winner(in_port, vlan)
        if entry is not None:
            program = entry.fused
            if type(program) is int:
                program = None if program != self.epoch else program
            if program is None:
                program = self.trace(entry)
            if type(program) is not int:
                slot[1] = entry
                slot[2] = program
                entry.dispatch.append(slot)
        port_dispatch[vlan] = slot
        return slot

    def trace(self, entry: FlowEntry):
        """Trace from ``entry`` and cache the outcome on it: a
        :class:`FusedChain`, or the current epoch (not fuseable)."""
        program = self._trace(entry)
        if program is None:
            result = self.epoch
        else:
            self.programs_built += 1
            result = program
        entry.fused = result
        return result

    def _trace(self, entry: FlowEntry) -> Optional[FusedChain]:
        dp = self.dp
        branches = _ingress_branches(entry.match.vlan_vid)
        kwargs: dict = {}
        hops: list[_Hop] = []
        seen: set = set()
        in_dt = in_du = 0
        while True:
            if len(hops) >= MAX_CHAIN_DEPTH:
                return None
            key = (id(dp), entry.entry_id)
            if key in seen:  # cycle
                return None
            seen.add(key)
            if dp.taps or not dp.compiled_actions:
                return None
            actions = entry.actions
            if not actions:  # drop rule
                return None
            last = actions[-1]
            tail_select: Optional[SelectOutput] = None
            kind = type(last)
            if kind is Output:
                out_no = last.port
            elif kind is SelectOutput:
                if len(last.ports) == 1:
                    # Degenerate spread: the compiled form is a plain
                    # output (run_select_one), treat it the same here.
                    out_no = last.ports[0]
                elif hops:
                    tail_select = last
                    out_no = None
                else:
                    # A spread at the chain ingress is a single-hop
                    # "chain" — already optimal per-hop.
                    return None
            else:
                return None
            if tail_select is None:
                if out_no == FLOOD_PORT:
                    return None
                port = dp.ports.get(out_no)
                if port is None:
                    return None
            for action in actions[:-1]:
                kind = type(action)
                if kind is PushVlan:
                    if not 0 <= action.pcp <= 7:
                        # The frame constructor would reject it; the
                        # per-hop path must keep raising per frame.
                        return None
                    for branch in branches:
                        if not branch[0]:
                            branch[2] += _TAG_BYTES
                        branch[0] = True
                        branch[1] = action.vid
                    kwargs["vlan"] = action.vid
                    kwargs["vlan_pcp"] = action.pcp
                elif kind is PopVlan:
                    for branch in branches:
                        if not branch[0]:  # would be an action error
                            return None
                        branch[2] -= _TAG_BYTES
                        branch[0] = False
                        branch[1] = None
                    kwargs["vlan"] = None
                    kwargs["vlan_pcp"] = 0
                elif kind is SetField:
                    field = action.field
                    if field == "vlan_vid":
                        vid = int(action.value)
                        if not 0 <= vid <= 0xFFF:
                            # Out-of-range retag: the per-frame replace
                            # raises in the constructor; stay per-hop.
                            return None
                        for branch in branches:
                            if not branch[0]:
                                return None
                            branch[1] = vid
                        kwargs["vlan"] = vid
                    elif field == "eth_src":
                        kwargs["src"] = MacAddress(action.value)
                    else:
                        kwargs["dst"] = MacAddress(action.value)
                else:  # Controller / SelectOutput / extra Output
                    return None
            if tail_select is not None:
                return self._finish_select(dp, entry, tail_select,
                                           branches, in_dt, in_du,
                                           hops, kwargs)
            hop = _Hop()
            hop.dp = dp
            hop.table = dp.table
            hop.version = dp.table.version
            hop.entry = entry
            hop.compiled = entry.compiled
            hop.in_dt, hop.in_du = in_dt, in_du
            hop.out_no = out_no
            hop.out_port = port
            hop.out_dt = branches[0][2]
            hop.out_du = branches[-1][2]
            hop.link = None
            hop.far_port = None
            hop.far_dp = None
            hops.append(hop)
            link = port.peer_link
            if link is None:
                break  # terminal: device egress or counting sink
            if not link.carry_parsed:
                return None
            far = link._far(port)
            if far is None or far.datapath is None:
                return None
            hop.link = link
            hop.far_port = far
            hop.far_dp = far.datapath
            next_entry = _resolve_next(far.datapath.table, far.port_no,
                                       branches)
            if next_entry is None:
                return None
            in_dt, in_du = hop.out_dt, hop.out_du
            dp = far.datapath
            entry = next_entry
        if len(hops) < 2:
            # Single-hop "chains" are already optimal on the per-hop
            # path (the fast_out specialization); fusing them would
            # only add bookkeeping.
            return None
        if not _splice_fields_valid(kwargs):
            return None
        two_branch = any(hop.in_dt != hop.in_du or hop.out_dt != hop.out_du
                         for hop in hops)
        return FusedChain(hops, kwargs, two_branch)

    def _finish_select(self, dp, entry: FlowEntry, select: SelectOutput,
                       branches: list[list], in_dt: int, in_du: int,
                       hops: list[_Hop],
                       kwargs: dict) -> Optional[FusedSelectChain]:
        """Lower a select-terminated trace into a
        :class:`FusedSelectChain`, or bail (``None``) when the tail
        cannot be replicated exactly.

        Bails when: any replica port is missing, is FLOOD, or leads to
        a virtual link (the tail delivers straight to devices/sinks —
        a linked replica would need its own downstream trace *per
        frame*); or the composed rewrite touches MAC fields (non-IPv4
        frames hash their L2 conversation, so a MAC rewrite upstream
        changes the flow hash the per-hop path would compute at the
        select hop — not reproducible from the ingress parse).
        """
        if "src" in kwargs or "dst" in kwargs:
            return None
        if not _splice_fields_valid(kwargs):
            return None
        replicas: dict = {}
        for out_no in select.ports:
            if out_no == FLOOD_PORT:
                return None
            port = dp.ports.get(out_no)
            if port is None or port.peer_link is not None:
                return None
            replicas[out_no] = (port, port.device)
        group = select.group
        state = dp.flow_state.table(group) if group is not None else None
        out_dt, out_du = branches[0][2], branches[-1][2]
        two_branch = (any(hop.in_dt != hop.in_du
                          or hop.out_dt != hop.out_du for hop in hops)
                      or in_dt != in_du or out_dt != out_du)
        return FusedSelectChain(hops, kwargs, two_branch, dp, entry,
                                in_dt, in_du, out_dt, out_du, select,
                                state, replicas)
