"""Chain fusion: compile whole LSI chains into straight-line programs.

The batched pipeline already amortizes per-frame overheads *within*
one LSI, but a chain of LSIs (Figure 1: LSI-0 classifies into a graph
LSI, which steers through the NFs) still pays Python per hop: lookup,
compiled closure, egress queue, ``carry_batch``, and another full
``process_batch_from`` on the far side.  Steering rules are stable
between flow-mods, so that whole traversal is a *constant* per flow
entry — the same observation that let :func:`compile_actions` fuse an
action list one level down.

:class:`FusionEngine` (one per :class:`~repro.switch.datapath.Datapath`,
created in ``Datapath.__init__``) traces the chain a flow entry's
frames would take — ingress lookup, pure-output/rewrite hops over
virtual links, terminal egress — and lowers it into one
:class:`FusedChain`: a straight-line program that runs a **single**
table lookup at the chain ingress, crosses every link with zero
intermediate ``carry_batch``/``process_batch_from`` round-trips,
applies the *composed* header rewrite once per frame, and settles
every per-hop counter (flow packets/bytes, table lookups/matches,
port rx/tx, link ``carried``, datapath rx) arithmetically at flush.

Fuseability.  A hop fuses when its winning entry's actions are VLAN /
MAC transforms followed by exactly one concrete ``Output``, and the
*next* hop's winner is frame-independent: the first entry of the far
table compatible with ``(in_port, vlan-state)`` must match on those
two fields alone (``FlowMatch._port_vlan_only``) and must be the same
entry for every alive VLAN branch.  Anything else — SelectOutput
replica spreads, FLOOD, drops, punts, taps on a datapath,
``carry_parsed=False`` links, interpreted mode, table misses, cycles —
bails the trace, and the entry simply stays on the per-hop batch path
(which remains the differential oracle for every fused program).

VLAN state is tracked *symbolically* with up to two branches: an
ingress match with a wildcard VLAN admits both initially-tagged and
initially-untagged frames, whose wire lengths diverge by 4 bytes the
moment a push/pop happens.  Each hop records per-branch byte deltas,
so the settled byte counters are exact: frames are classified once at
run time (tagged vs untagged) only when the branches actually differ.

Invalidation.  A fused program records the ``version`` of every
:class:`~repro.switch.flowtable.FlowTable` it traversed plus the
identity of every port/link/closure it relies on, and re-validates all
of it at flush time, immediately before running — so a flow-mod, port
removal, tap attach or replica change *anywhere* along the chain
(even mid-batch, from a packet-in handler) can never run a stale
program: the group falls back to the per-hop path and the program is
dropped for re-tracing.  The steering layer additionally drops every
program *before* its strict deletes reach the tables
(:meth:`~repro.core.steering.TrafficSteeringManager.invalidate_fusion`),
so the window where a stale positive exists at all is confined to
direct table writes, which the version check covers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.builder import ParsedFrame
from repro.switch.actions import (
    FLOOD_PORT,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)
from repro.switch.flowtable import ANY_VLAN, NO_VLAN, FlowEntry, FlowTable

__all__ = ["FusedChain", "FusionEngine", "MAX_CHAIN_DEPTH"]

#: Trace depth cap: chains longer than this stay per-hop.  Real
#: steering chains are 2-3 hops; the cap only guards degenerate wiring.
MAX_CHAIN_DEPTH = 32

#: Wire-length delta of gaining/losing an 802.1Q tag.
_TAG_BYTES = 4

#: VLAN id of a tagged branch whose concrete id is not statically known
#: (wildcard/ANY_VLAN ingress match).  Distinct from every real id and
#: from ``None`` (untagged).
_UNKNOWN = object()


class _Hop:
    """One traversed hop of a fused chain: identities to re-validate
    and the counter deltas to settle.

    ``in_dt``/``in_du`` are the wire-length offsets (vs the ingress
    frame) of frames *arriving* at this hop, per branch (initially-
    tagged / initially-untagged); ``out_dt``/``out_du`` after this
    hop's transforms.  ``link``/``far_port``/``far_dp`` are ``None``
    on the terminal hop.
    """

    __slots__ = ("dp", "table", "version", "entry", "compiled",
                 "in_dt", "in_du", "out_no", "out_port",
                 "out_dt", "out_du", "link", "far_port", "far_dp")


class FusedChain:
    """The straight-line program for one (ingress entry, chain) pair."""

    __slots__ = ("hops", "kwargs", "two_branch", "ingress_entry",
                 "device")

    def __init__(self, hops: list[_Hop], kwargs: dict,
                 two_branch: bool) -> None:
        self.hops = tuple(hops)
        #: Composition of every transform along the chain, applied once
        #: per frame at the terminal (``replace(eth, **kwargs)``); empty
        #: for identity chains, where frames forward untouched.
        self.kwargs = kwargs
        self.two_branch = two_branch
        self.ingress_entry = hops[0].entry
        self.device = hops[-1].out_port.device

    def valid(self) -> bool:
        """Cheap staleness check, run per group immediately before
        :meth:`run`: every traversed table is at its traced version and
        every identity the trace relied on still holds."""
        for hop in self.hops:
            dp = hop.dp
            if (hop.table.version != hop.version
                    or hop.entry.compiled is not hop.compiled
                    or dp.taps or not dp.compiled_actions
                    or dp.ports.get(hop.out_no) is not hop.out_port
                    or hop.out_port.peer_link is not hop.link):
                return False
            link = hop.link
            if link is not None and (
                    not link.carry_parsed
                    or hop.far_port.datapath is not hop.far_dp):
                return False
        return self.hops[-1].out_port.device is self.device

    def run(self, frames: list[ParsedFrame], nbytes: int) -> None:
        """Run the whole chain for one batch group: settle every
        per-hop counter arithmetically, then deliver at the terminal.

        ``frames`` all matched the ingress entry (whose own flow/rx
        counters the ingress loop accounted, exactly as on the per-hop
        path); everything downstream of the ingress lookup is settled
        here.  Per-flow egress order is preserved — frames of one
        ingress entry leave the terminal port in arrival order.
        """
        n = len(frames)
        nu = 0
        if self.two_branch:
            for parsed in frames:
                if parsed.eth.vlan is None:
                    nu += 1
        nt = n - nu
        first = True
        for hop in self.hops:
            if first:
                first = False
            else:
                # Downstream hop bookkeeping the per-hop path would do
                # in process_batch_from: datapath + port rx (the port rx
                # was settled by the previous hop's link segment below),
                # one lookup+match per frame, and the flow counters with
                # the frames' wire length *as they arrived here*.
                hop.dp.rx_packets += n
                table = hop.table
                table.lookups += n
                table.matches += n
                entry = hop.entry
                entry.packets += n
                entry.bytes += nbytes + nt * hop.in_dt + nu * hop.in_du
            out_bytes = nbytes + nt * hop.out_dt + nu * hop.out_du
            port = hop.out_port
            port.tx_packets += n
            port.tx_bytes += out_bytes
            link = hop.link
            if link is not None:
                link.carried += n
                far = hop.far_port
                far.rx_packets += n
                far.rx_bytes += out_bytes
        kwargs = self.kwargs
        if kwargs:
            frames = [parsed.derive(replace(parsed.eth, **kwargs))
                      for parsed in frames]
        device = self.device
        if device is not None:
            device.transmit_batch([parsed.eth for parsed in frames])


def _ingress_branches(vlan_vid: Optional[int]) -> list[list]:
    """Symbolic VLAN state(s) admitted by the ingress match.

    Branch = ``[tagged, vid, delta]``; when two branches exist the
    first is always the initially-tagged one (run-time classification
    keys on ``eth.vlan is None``).
    """
    if vlan_vid is None:
        return [[True, _UNKNOWN, 0], [False, None, 0]]
    if vlan_vid == ANY_VLAN:
        return [[True, _UNKNOWN, 0]]
    if vlan_vid == NO_VLAN:
        return [[False, None, 0]]
    return [[True, vlan_vid, 0]]


def _resolve_next(table: FlowTable, in_port: int,
                  branches: list[list]) -> Optional[FlowEntry]:
    """The unique frame-independent winner of the far table's lookup.

    Walks the priority-sorted entries once; an entry is the winner for
    a branch when it is the first one compatible with ``(in_port,
    vlan-state)``.  Any compatible candidate that also matches frame
    fields (not ``_port_vlan_only``), an undecidable comparison
    (unknown tagged vid vs a concrete match), a branch with no winner
    (table miss), or branches disagreeing on the winner → ``None``.
    """
    winners: list = [None] * len(branches)
    unassigned = len(branches)
    for entry in table:
        match = entry.match
        want_port = match.in_port
        if want_port is not None and want_port != in_port:
            continue
        want_vid = match.vlan_vid
        pending = []
        for index, branch in enumerate(branches):
            if winners[index] is not None:
                continue
            tagged, vid = branch[0], branch[1]
            if want_vid is None:
                ok = True
            elif want_vid == NO_VLAN:
                ok = not tagged
            elif want_vid == ANY_VLAN:
                ok = tagged
            elif not tagged:
                ok = False
            elif vid is _UNKNOWN:
                return None
            else:
                ok = vid == want_vid
            if ok:
                pending.append(index)
        if not pending:
            continue
        if not match._port_vlan_only:
            return None
        for index in pending:
            winners[index] = entry
        unassigned -= len(pending)
        if not unassigned:
            break
    if unassigned:
        return None
    first = winners[0]
    for winner in winners:
        if winner is not first:
            return None
    return first


class FusionEngine:
    """Per-datapath fusion state: tracing, caching, counters.

    An engine traces chains whose *ingress* is its datapath; programs
    are cached on the ingress :class:`FlowEntry` (``entry.fused``).
    Failed traces are negative-cached with the engine's ``epoch`` —
    :meth:`invalidate` bumps it, so a steering-level change retries
    every trace while per-frame cost for unfuseable entries stays at
    one attribute read and an int compare.
    """

    __slots__ = ("dp", "enabled", "epoch", "hits", "misses",
                 "invalidations", "programs_built")

    def __init__(self, dp) -> None:
        self.dp = dp
        #: Production default is on; the perf sweep's per-hop leg and
        #: the differential suites flip it per instance.
        self.enabled = True
        self.epoch = 1
        #: Frames delivered through fused programs.
        self.hits = 0
        #: Matched frames that took the per-hop path while fusion was
        #: engaged for the batch (unfuseable entries and fallbacks).
        self.misses = 0
        #: Fused programs dropped — proactive (steering invalidate) or
        #: reactive (flush-time validity failure → per-hop fallback).
        self.invalidations = 0
        self.programs_built = 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "programs-built": self.programs_built,
                "enabled": self.enabled}

    def invalidate(self) -> int:
        """Drop every cached program/verdict traced from this LSI's
        entries; returns how many live programs went.  Bumping the
        epoch also retires negative caches, so entries re-trace against
        the post-change rule set."""
        self.epoch += 1
        dropped = 0
        for entry in self.dp.table:
            cached = entry.fused
            if cached is not None:
                if cached.__class__ is FusedChain:
                    dropped += 1
                entry.fused = None
        self.invalidations += dropped
        return dropped

    def trace(self, entry: FlowEntry):
        """Trace from ``entry`` and cache the outcome on it: a
        :class:`FusedChain`, or the current epoch (not fuseable)."""
        program = self._trace(entry)
        if program is None:
            result = self.epoch
        else:
            self.programs_built += 1
            result = program
        entry.fused = result
        return result

    def _trace(self, entry: FlowEntry) -> Optional[FusedChain]:
        dp = self.dp
        branches = _ingress_branches(entry.match.vlan_vid)
        kwargs: dict = {}
        hops: list[_Hop] = []
        seen: set = set()
        in_dt = in_du = 0
        while True:
            if len(hops) >= MAX_CHAIN_DEPTH:
                return None
            key = (id(dp), entry.entry_id)
            if key in seen:  # cycle
                return None
            seen.add(key)
            if dp.taps or not dp.compiled_actions:
                return None
            actions = entry.actions
            if not actions:  # drop rule
                return None
            last = actions[-1]
            if type(last) is not Output or last.port == FLOOD_PORT:
                return None
            out_no = last.port
            port = dp.ports.get(out_no)
            if port is None:
                return None
            for action in actions[:-1]:
                kind = type(action)
                if kind is PushVlan:
                    for branch in branches:
                        if not branch[0]:
                            branch[2] += _TAG_BYTES
                        branch[0] = True
                        branch[1] = action.vid
                    kwargs["vlan"] = action.vid
                    kwargs["vlan_pcp"] = action.pcp
                elif kind is PopVlan:
                    for branch in branches:
                        if not branch[0]:  # would be an action error
                            return None
                        branch[2] -= _TAG_BYTES
                        branch[0] = False
                        branch[1] = None
                    kwargs["vlan"] = None
                    kwargs["vlan_pcp"] = 0
                elif kind is SetField:
                    field = action.field
                    if field == "vlan_vid":
                        vid = int(action.value)
                        for branch in branches:
                            if not branch[0]:
                                return None
                            branch[1] = vid
                        kwargs["vlan"] = vid
                    elif field == "eth_src":
                        kwargs["src"] = MacAddress(action.value)
                    else:
                        kwargs["dst"] = MacAddress(action.value)
                else:  # Controller / SelectOutput / extra Output
                    return None
            hop = _Hop()
            hop.dp = dp
            hop.table = dp.table
            hop.version = dp.table.version
            hop.entry = entry
            hop.compiled = entry.compiled
            hop.in_dt, hop.in_du = in_dt, in_du
            hop.out_no = out_no
            hop.out_port = port
            hop.out_dt = branches[0][2]
            hop.out_du = branches[-1][2]
            hop.link = None
            hop.far_port = None
            hop.far_dp = None
            hops.append(hop)
            link = port.peer_link
            if link is None:
                break  # terminal: device egress or counting sink
            if not link.carry_parsed:
                return None
            far = link._far(port)
            if far is None or far.datapath is None:
                return None
            hop.link = link
            hop.far_port = far
            hop.far_dp = far.datapath
            next_entry = _resolve_next(far.datapath.table, far.port_no,
                                       branches)
            if next_entry is None:
                return None
            in_dt, in_du = hop.out_dt, hop.out_du
            dp = far.datapath
            entry = next_entry
        if len(hops) < 2:
            # Single-hop "chains" are already optimal on the per-hop
            # path (the fast_out specialization); fusing them would
            # only add bookkeeping.
            return None
        two_branch = any(hop.in_dt != hop.in_du or hop.out_dt != hop.out_du
                         for hop in hops)
        return FusedChain(hops, kwargs, two_branch)
