"""Adaptation layer for single-interface NNFs.

Paper §2: "an additional adaptation layer is required to cope with the
fact that NNFs may be designed to receive traffic from a single network
interface.  Such layer attaches the NNF to one port of the switch and
configures it to receive the traffic from multiple service graphs,
appropriately marked to make it distinguishable."

Realisation (matching how this is done on real Linux):

* the shared NNF namespace has one trunk device (``mux0``) attached to
  one LSI port;
* each (graph, logical-port) pair gets a VLAN id; the steering layer
  pushes the VLAN before the NNF port and pops it after;
* inside the namespace, 802.1Q subinterfaces (``mux0.<vid>``) demux the
  trunk, so the component sees one plain interface per graph-port and
  plugin rules key on interface names — the "marking mechanism".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["AdaptationLayer", "GraphAttachment"]

#: First VLAN id handed out; low ids are left for operator use.
_VID_BASE = 101


@dataclass
class GraphAttachment:
    """Result of attaching one graph to the shared NNF."""

    graph_id: str
    mark: int
    port_vids: dict[str, int]       # logical port -> VLAN id
    port_devices: dict[str, str]    # logical port -> subinterface name


class AdaptationLayer:
    """VLAN id and subinterface bookkeeping for one shared NNF instance."""

    def __init__(self, trunk_device: str = "mux0",
                 vid_base: int = _VID_BASE,
                 per_port_vids: bool = True) -> None:
        """``per_port_vids=False`` gives every logical port of a graph
        the *same* VLAN id (the graph mark as a tag) — what an L2
        component like a vlan-filtering bridge needs, where the tag
        must survive across the component."""
        self.trunk_device = trunk_device
        self.per_port_vids = per_port_vids
        self._next_vid = vid_base
        self._next_mark = 1
        self._attachments: dict[str, GraphAttachment] = {}

    # -- attachment --------------------------------------------------------------
    def attach_graph(self, graph_id: str,
                     logical_ports: list[str]) -> GraphAttachment:
        if graph_id in self._attachments:
            raise ValueError(f"graph {graph_id!r} already attached")
        if not logical_ports:
            raise ValueError("attachment needs at least one logical port")
        mark = self._next_mark
        self._next_mark += 1
        vids: dict[str, int] = {}
        devices: dict[str, str] = {}
        shared_vid: Optional[int] = None
        if not self.per_port_vids:
            shared_vid = self._next_vid
            self._next_vid += 1
        for port in logical_ports:
            if shared_vid is not None:
                vid = shared_vid
            else:
                vid = self._next_vid
                self._next_vid += 1
            if vid > 4094:
                raise OverflowError("VLAN id space exhausted on this NNF")
            vids[port] = vid
            devices[port] = f"{self.trunk_device}.{vid}"
        attachment = GraphAttachment(graph_id=graph_id, mark=mark,
                                     port_vids=vids, port_devices=devices)
        self._attachments[graph_id] = attachment
        return attachment

    def detach_graph(self, graph_id: str) -> GraphAttachment:
        try:
            return self._attachments.pop(graph_id)
        except KeyError:
            raise KeyError(f"graph {graph_id!r} not attached") from None

    def attachment(self, graph_id: str) -> GraphAttachment:
        try:
            return self._attachments[graph_id]
        except KeyError:
            raise KeyError(f"graph {graph_id!r} not attached") from None

    @property
    def graphs(self) -> list[str]:
        return sorted(self._attachments)

    # -- namespace-side commands ------------------------------------------------
    def subinterface_commands(self, netns: str,
                              attachment: GraphAttachment) -> list[str]:
        """Create and raise the per-graph subinterfaces in the NNF netns."""
        commands = []
        for port, vid in sorted(attachment.port_vids.items()):
            device = attachment.port_devices[port]
            commands.append(
                f"ip netns exec {netns} ip link add link "
                f"{self.trunk_device} name {device} type vlan id {vid}")
            commands.append(
                f"ip netns exec {netns} ip link set {device} up")
        return commands

    def teardown_commands(self, netns: str,
                          attachment: GraphAttachment) -> list[str]:
        return [
            f"ip netns exec {netns} ip link del "
            f"{attachment.port_devices[port]}"
            for port in sorted(attachment.port_vids)
        ]
