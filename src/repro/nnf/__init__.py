"""Native Network Function framework — the paper's contribution.

A *Native Network Function* is a software component the CPE operating
system already ships (iptables, linuxbridge, strongSwan, dnsmasq, ...),
exposed to the NFV orchestrator as if it were a VNF:

* :mod:`repro.nnf.plugin` — the plugin API: each NNF is driven by a
  "collection of scripts" controlling its lifecycle (create /
  configure / start / stop / update / destroy), exactly as in the
  paper's implementation;
* :mod:`repro.nnf.registry` — which plugins are usable on a node
  (component installed?  sharable?  busy?);
* :mod:`repro.nnf.sharing` — the sharability machinery: one kernel
  component serving several service graphs, distinguished by marks,
  with isolated per-graph internal paths;
* :mod:`repro.nnf.adaptation` — the adaptation layer that feeds
  single-interface NNFs the traffic of many graphs over one switch
  port using VLAN marking;
* :mod:`repro.nnf.configtrans` — generic-config translation (listed as
  future work in the paper; implemented here);
* :mod:`repro.nnf.plugins` — bundled plugins: iptables NAT, iptables
  firewall, linuxbridge, strongSwan, dnsmasq, static router.
"""

from repro.nnf.adaptation import AdaptationLayer
from repro.nnf.plugin import NnfPlugin, PluginContext, PluginError
from repro.nnf.registry import NnfRegistry
from repro.nnf.sharing import SharedNnfManager, SharingError

__all__ = [
    "AdaptationLayer",
    "NnfPlugin",
    "NnfRegistry",
    "PluginContext",
    "PluginError",
    "SharedNnfManager",
    "SharingError",
]
