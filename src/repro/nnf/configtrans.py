"""Generic NF configuration translation.

The paper defers this: "Support for a dynamic configuration mechanism
able to translate a generic NF configuration, provided by the
orchestrator, in commands appropriate to the specific NNF is not in the
scope of this initial implementation and will be targeted by future
work."  Implemented here: a small, typed vocabulary of
technology-neutral configuration keys that each plugin maps to its own
commands.

Generic vocabulary (all values strings, as they arrive via JSON):

=====================  =======================================================
key                    meaning
=====================  =======================================================
``lan.address``        CIDR address of the LAN-side port
``wan.address``        CIDR address of the WAN-side port
``gateway``            default gateway IP
``nat.masquerade``     "true" — source-NAT LAN traffic out of the WAN port
``firewall.allow``     comma list of ``proto:port`` to accept (else drop)
``firewall.deny``      comma list of ``proto:port`` to drop (else accept)
``ipsec.peer``         outer address of the remote IPsec endpoint
``ipsec.local``        outer address of this endpoint
``ipsec.local_subnet`` protected subnet behind this endpoint
``ipsec.remote_subnet`` protected subnet behind the peer
``ipsec.psk``          pre-shared key (hex or text)
``dhcp.range``         "first,last" pool addresses
``dns.static``         comma list of ``name=ip`` answers
=====================  =======================================================
"""

from __future__ import annotations

from typing import Callable

from repro.nnf.plugin import PluginContext, PluginError

__all__ = ["GENERIC_KEYS", "TranslationError", "translate",
           "parse_port_list"]

GENERIC_KEYS = frozenset({
    "lan.address", "wan.address", "gateway", "nat.masquerade",
    "firewall.allow", "firewall.deny", "ipsec.peer", "ipsec.local",
    "ipsec.local_subnet", "ipsec.remote_subnet", "ipsec.psk",
    "dhcp.range", "dns.static",
})


class TranslationError(PluginError):
    """Generic configuration cannot be translated for this plugin."""


def validate_generic(config: dict[str, str]) -> list[str]:
    """Return unknown keys (the orchestrator warns about them)."""
    return sorted(key for key in config if key not in GENERIC_KEYS)


def parse_port_list(text: str) -> list[tuple[str, int]]:
    """Parse ``"tcp:22,udp:53"`` into [("tcp", 22), ("udp", 53)]."""
    entries: list[tuple[str, int]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        proto, _, port_text = chunk.partition(":")
        if proto not in ("tcp", "udp") or not port_text.isdigit():
            raise TranslationError(f"bad port spec {chunk!r}")
        entries.append((proto, int(port_text)))
    return entries


def address_commands(ctx: PluginContext) -> list[str]:
    """Common translation: lan/wan addresses + default gateway."""
    commands: list[str] = []
    for key, port in (("lan.address", "lan"), ("wan.address", "wan")):
        if key in ctx.config:
            if port not in ctx.ports:
                raise TranslationError(
                    f"{ctx.instance_id}: config {key} but NF has no "
                    f"{port!r} port")
            commands.append(
                f"ip netns exec {ctx.netns} ip addr add "
                f"{ctx.config[key]} dev {ctx.port(port)}")
    if "gateway" in ctx.config:
        out_port = ctx.port("wan") if "wan" in ctx.ports else (
            next(iter(ctx.ports.values())))
        commands.append(
            f"ip netns exec {ctx.netns} ip route add default "
            f"via {ctx.config['gateway']} dev {out_port}")
    return commands


#: Per-functional-type translators, used by the orchestrator when the
#: graph carries generic keys for an NF deployed natively.
_TRANSLATORS: dict[str, Callable[[PluginContext], list[str]]] = {}


def register_translator(functional_type: str,
                        fn: Callable[[PluginContext], list[str]]) -> None:
    _TRANSLATORS[functional_type] = fn


def translate(functional_type: str, ctx: PluginContext) -> list[str]:
    """Translate generic config into plugin commands.

    Falls back to the address/gateway common subset when no dedicated
    translator is registered.
    """
    translator = _TRANSLATORS.get(functional_type)
    if translator is not None:
        return translator(ctx)
    return address_commands(ctx)
