"""NNF plugin registry: what this node can run natively.

The registry answers the resolver's three questions about a native
implementation (paper §2): is the component installed, is it sharable,
and is it already claimed by another chain.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.catalog.resolver import NnfAvailability
from repro.nnf.plugin import NnfPlugin

__all__ = ["NnfRegistry"]


class NnfRegistry:
    """Plugins known on a node plus the host package inventory."""

    def __init__(self, installed_packages: Optional[Iterable[str]] = None):
        self._plugins: dict[str, NnfPlugin] = {}
        self.installed_packages: set[str] = set(installed_packages or ())
        self._busy: dict[str, set[str]] = {}  # plugin -> claiming graph ids

    # -- plugin management ------------------------------------------------------
    def register(self, plugin: NnfPlugin) -> None:
        if plugin.name in self._plugins:
            raise ValueError(f"plugin {plugin.name!r} already registered")
        self._plugins[plugin.name] = plugin

    def get(self, name: str) -> NnfPlugin:
        try:
            return self._plugins[name]
        except KeyError:
            raise KeyError(f"no NNF plugin {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._plugins

    def names(self) -> list[str]:
        return sorted(self._plugins)

    def install_package(self, package: str) -> None:
        self.installed_packages.add(package)

    # -- status for the resolver ---------------------------------------------------
    def is_installed(self, name: str) -> bool:
        plugin = self._plugins.get(name)
        if plugin is None:
            return False
        return (not plugin.package
                or plugin.package in self.installed_packages)

    def claim(self, name: str, graph_id: str) -> None:
        """Record that ``graph_id`` uses plugin ``name``."""
        self._busy.setdefault(name, set()).add(graph_id)

    def unclaim(self, name: str, graph_id: str) -> None:
        users = self._busy.get(name, set())
        users.discard(graph_id)

    def users(self, name: str) -> set[str]:
        return set(self._busy.get(name, set()))

    def availability(self, name: str) -> NnfAvailability:
        """The status triple the VNF resolver consumes."""
        plugin = self._plugins.get(name)
        if plugin is None:
            return NnfAvailability(installed=False)
        busy = bool(self._busy.get(name)) and not plugin.multi_instance
        return NnfAvailability(installed=self.is_installed(name),
                               sharable=plugin.sharable,
                               busy=busy)

    def describe(self) -> list[dict]:
        """REST-facing inventory of native capabilities."""
        rows = []
        for name in self.names():
            plugin = self._plugins[name]
            rows.append({
                "name": name,
                "functional-type": plugin.functional_type,
                "installed": self.is_installed(name),
                "sharable": plugin.sharable,
                "multi-instance": plugin.multi_instance,
                "single-interface": plugin.single_interface,
                "in-use-by": sorted(self._busy.get(name, set())),
            })
        return rows
