"""iptables firewall plugin.

Sharable like the NAT plugin; per-graph policy lives in a dedicated
user chain (``FW-<mark>``) reached through a mark-scoped dispatch rule,
so each service graph carries its own rule set inside the single
kernel component.
"""

from __future__ import annotations

from repro.nnf.configtrans import parse_port_list
from repro.nnf.plugin import NnfPlugin, PluginContext
from repro.nnf.plugins._routes import (
    path_address_commands,
    path_routing_commands,
)

__all__ = ["IptablesFirewallPlugin"]

_PROTO_NUM = {"tcp": "tcp", "udp": "udp"}


class IptablesFirewallPlugin(NnfPlugin):
    name = "iptables-firewall"
    functional_type = "firewall"
    sharable = True
    multi_instance = True
    single_interface = True
    package = "iptables"

    def create_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} sysctl -w net.ipv4.ip_forward=1",
            f"ip netns exec {ctx.netns} iptables -P FORWARD DROP",
        ]

    def _policy_rules(self, ctx: PluginContext, chain: str) -> list[str]:
        """ACCEPT/DROP rules for the allow/deny lists in the config."""
        commands = []
        prefix = f"ip netns exec {ctx.netns} iptables"
        allow = ctx.config.get("firewall.allow")
        deny = ctx.config.get("firewall.deny")
        if allow:
            for proto, port in parse_port_list(allow):
                commands.append(
                    f"{prefix} -A {chain} -p {_PROTO_NUM[proto]} "
                    f"--dport {port} -j ACCEPT")
            commands.append(
                f"{prefix} -A {chain} -m conntrack "
                f"--ctstate ESTABLISHED,RELATED -j ACCEPT")
            commands.append(f"{prefix} -A {chain} -j DROP")
        elif deny:
            for proto, port in parse_port_list(deny):
                commands.append(
                    f"{prefix} -A {chain} -p {_PROTO_NUM[proto]} "
                    f"--dport {port} -j DROP")
            commands.append(f"{prefix} -A {chain} -j ACCEPT")
        else:
            commands.append(f"{prefix} -A {chain} -j ACCEPT")
        return commands

    # -- dedicated mode -----------------------------------------------------------
    def configure_script(self, ctx: PluginContext) -> list[str]:
        lan, wan = ctx.port("lan"), ctx.port("wan")
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        if "wan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['wan.address']} dev {wan}")
        if "gateway" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip route add "
                            f"default via {ctx.config['gateway']} dev {wan}")
        commands.append(
            f"ip netns exec {ctx.netns} iptables -N FW")
        commands.append(
            f"ip netns exec {ctx.netns} iptables -A FORWARD -j FW")
        commands.extend(self._policy_rules(ctx, "FW"))
        return commands

    def start_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip link set {dev} up"
                for dev in (ctx.port("lan"), ctx.port("wan"))]

    def update_script(self, ctx: PluginContext) -> list[str]:
        """Flush and rebuild the policy chain in place.

        Works for both modes: the dedicated chain is ``FW``, a shared
        path's chain is ``FW-<mark>``.
        """
        chain = f"FW-{ctx.mark}" if ctx.mark is not None else "FW"
        return ([f"ip netns exec {ctx.netns} iptables -F {chain}"]
                + self._policy_rules(ctx, chain))

    def destroy_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} iptables -F",
            f"ip netns exec {ctx.netns} iptables -t mangle -F",
        ]

    # -- shared mode ------------------------------------------------------------------
    def add_path_script(self, ctx: PluginContext) -> list[str]:
        if ctx.mark is None:
            raise ValueError("shared path needs a mark")
        lan, wan = ctx.port("lan"), ctx.port("wan")
        mark = ctx.mark
        chain = f"FW-{mark}"
        prefix = f"ip netns exec {ctx.netns} iptables"
        commands = path_address_commands(ctx)
        commands.extend(path_routing_commands(ctx))
        commands.extend([
            f"ip netns exec {ctx.netns} iptables -t mangle -A PREROUTING "
            f"-i {lan} -j MARK --set-mark {mark}",
            f"ip netns exec {ctx.netns} iptables -t mangle -A PREROUTING "
            f"-i {wan} -j MARK --set-mark {mark}",
            f"{prefix} -N {chain}",
            f"{prefix} -A FORWARD -m mark --mark {mark} -j {chain}",
        ])
        commands.extend(self._policy_rules(ctx, chain))
        return commands

    def remove_path_script(self, ctx: PluginContext) -> list[str]:
        if ctx.mark is None:
            raise ValueError("shared path needs a mark")
        lan, wan = ctx.port("lan"), ctx.port("wan")
        mark = ctx.mark
        chain = f"FW-{mark}"
        prefix = f"ip netns exec {ctx.netns} iptables"
        return [
            f"ip netns exec {ctx.netns} iptables -t mangle -D PREROUTING "
            f"-i {lan} -j MARK --set-mark {mark}",
            f"ip netns exec {ctx.netns} iptables -t mangle -D PREROUTING "
            f"-i {wan} -j MARK --set-mark {mark}",
            f"{prefix} -D FORWARD -m mark --mark {mark} -j {chain}",
            f"{prefix} -F {chain}",
            f"{prefix} -X {chain}",
        ]
