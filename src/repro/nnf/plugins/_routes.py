"""Shared helpers for plugin scripts: per-graph path routing.

Both mark-sharing L3 plugins (NAT, firewall) isolate per-graph routing
the same way real deployments do: a dedicated routing table per graph
selected by the graph's fwmark, holding the graph's connected subnets
and its default route.
"""

from __future__ import annotations

from repro.net.addresses import int_to_ip, parse_cidr
from repro.nnf.plugin import PluginContext

__all__ = ["network_of", "path_address_commands", "path_routing_commands"]


def network_of(cidr: str) -> str:
    """``192.168.1.1/24`` -> ``192.168.1.0/24`` (the connected subnet)."""
    network, plen = parse_cidr(cidr)
    return f"{int_to_ip(network)}/{plen}"


def path_address_commands(ctx: PluginContext) -> list[str]:
    """Per-graph subinterface addresses from lan/wan config keys."""
    commands = []
    for key, port in (("lan.address", "lan"), ("wan.address", "wan")):
        if key in ctx.config and port in ctx.ports:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config[key]} dev {ctx.port(port)}")
    return commands


def path_routing_commands(ctx: PluginContext) -> list[str]:
    """Per-graph routing table + fwmark rule (paths stay isolated)."""
    mark = ctx.mark
    commands = []
    for key, port in (("lan.address", "lan"), ("wan.address", "wan")):
        if key in ctx.config and port in ctx.ports:
            commands.append(
                f"ip netns exec {ctx.netns} ip route add "
                f"{network_of(ctx.config[key])} dev {ctx.port(port)} "
                f"table {mark}")
    if "gateway" in ctx.config and "wan" in ctx.ports:
        commands.append(
            f"ip netns exec {ctx.netns} ip route add default "
            f"via {ctx.config['gateway']} dev {ctx.port('wan')} "
            f"table {mark}")
    commands.append(
        f"ip netns exec {ctx.netns} ip rule add fwmark {mark} "
        f"table {mark}")
    return commands
