"""Static router plugin: plain kernel forwarding between two ports.

Multi-instance: every graph gets its own namespace, so no sharing
machinery is needed — the "easy" kind of NNF, useful as a baseline in
the sharability ablation.
"""

from __future__ import annotations

from repro.nnf.plugin import NnfPlugin, PluginContext

__all__ = ["StaticRouterPlugin"]


class StaticRouterPlugin(NnfPlugin):
    name = "static-router"
    functional_type = "router"
    sharable = False
    multi_instance = True
    single_interface = False
    package = "iproute2"

    def create_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} sysctl -w net.ipv4.ip_forward=1",
        ]

    def configure_script(self, ctx: PluginContext) -> list[str]:
        lan, wan = ctx.port("lan"), ctx.port("wan")
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        if "wan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['wan.address']} dev {wan}")
        if "gateway" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip route add "
                            f"default via {ctx.config['gateway']} dev {wan}")
        for key, value in sorted(ctx.config.items()):
            if key.startswith("route."):
                # route.<n> = "<cidr> via <gw>" or "<cidr> dev <port>"
                spec = value.split()
                if len(spec) == 3 and spec[1] == "via":
                    commands.append(f"ip netns exec {ctx.netns} "
                                    f"ip route add {spec[0]} via {spec[2]}")
                elif len(spec) == 3 and spec[1] == "dev":
                    commands.append(
                        f"ip netns exec {ctx.netns} ip route add "
                        f"{spec[0]} dev {ctx.port(spec[2])}")
        return commands

    def start_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip link set {device} up"
                for _port, device in sorted(ctx.ports.items())]
