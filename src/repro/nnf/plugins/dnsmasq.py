"""dnsmasq plugin: DHCP + static DNS on the LAN side.

Exclusive (neither sharable nor multi-instance here): dnsmasq binds
globally-known ports and keeps one lease database, the kind of NNF that
forces the orchestrator's "already used in another chain" check.

The long-running daemon is modelled by :meth:`post_start`, which binds
UDP 53/67 in the namespace and answers a simplified wire protocol
(documented stand-in; the lifecycle and socket behaviour are what the
reproduction exercises, not the DNS/DHCP wire formats):

* DNS: payload ``b"Q:<name>"`` -> ``b"A:<ip>"`` or ``b"NX"``
* DHCP: payload ``b"DISCOVER:<client-id>"`` -> ``b"OFFER:<ip>"``
"""

from __future__ import annotations

from repro.net.addresses import int_to_ip, ip_to_int
from repro.nnf.plugin import NnfPlugin, PluginContext, PluginError

__all__ = ["DnsmasqPlugin"]


class DnsmasqPlugin(NnfPlugin):
    name = "dnsmasq"
    functional_type = "dhcp-server"
    sharable = False
    multi_instance = False
    single_interface = True
    package = "dnsmasq"

    def configure_script(self, ctx: PluginContext) -> list[str]:
        lan = ctx.port("lan")
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        return commands

    def start_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip link set "
                f"{ctx.port('lan')} up"]

    # -- daemon behaviour ---------------------------------------------------------
    def post_start(self, ctx: PluginContext, host) -> None:
        namespace = host.namespace(ctx.netns)
        static = {}
        for entry in ctx.config.get("dns.static", "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, _, address = entry.partition("=")
            if not name or not address:
                raise PluginError(f"bad dns.static entry {entry!r}")
            static[name] = address
        leases: dict[str, str] = {}
        pool = iter(())
        if "dhcp.range" in ctx.config:
            first, _, last = ctx.config["dhcp.range"].partition(",")
            start, end = ip_to_int(first.strip()), ip_to_int(last.strip())
            if end < start:
                raise PluginError("dhcp.range end below start")
            pool = iter(int_to_ip(value) for value in range(start, end + 1))

        def dns_handler(ns, packet, dgram):
            text = dgram.payload.decode(errors="replace")
            if not text.startswith("Q:"):
                return
            answer = static.get(text[2:])
            reply = f"A:{answer}".encode() if answer else b"NX"
            ns.send_udp(packet.dst, packet.src, 53, dgram.src_port, reply)

        def dhcp_handler(ns, packet, dgram):
            text = dgram.payload.decode(errors="replace")
            if not text.startswith("DISCOVER:"):
                return
            client = text[len("DISCOVER:"):]
            if client not in leases:
                try:
                    leases[client] = next(pool)
                except StopIteration:
                    return  # pool exhausted: silence, like real DHCP
            ns.send_udp(packet.dst, packet.src, 67, dgram.src_port,
                        f"OFFER:{leases[client]}".encode())

        namespace.bind_udp(53, dns_handler)
        namespace.bind_udp(67, dhcp_handler)

    def post_stop(self, ctx: PluginContext, host) -> None:
        namespace = host.namespace(ctx.netns)
        namespace.unbind_udp(53)
        namespace.unbind_udp(67)
