"""linuxbridge plugin — the paper's "virtual switch" NNF example.

Sharable as an L2 component: the shared instance is one vlan-filtering
bridge; each service graph's traffic stays tagged with the graph's VLAN
across the bridge, so FDB learning and forwarding are isolated per
graph (per-VLAN FDB = the "multiple internal paths").
"""

from __future__ import annotations

from repro.nnf.plugin import NnfPlugin, PluginContext

__all__ = ["LinuxBridgePlugin"]


class LinuxBridgePlugin(NnfPlugin):
    name = "linuxbridge"
    functional_type = "bridge"
    sharable = True
    multi_instance = True
    single_interface = False
    package = "bridge-utils"

    def _bridge_name(self, ctx: PluginContext) -> str:
        return f"br-{ctx.instance_id}"

    def create_script(self, ctx: PluginContext) -> list[str]:
        return [f"brctl addbr {self._bridge_name(ctx)}"]

    def configure_script(self, ctx: PluginContext) -> list[str]:
        bridge = self._bridge_name(ctx)
        return [f"brctl addif {bridge} {device}"
                for _port, device in sorted(ctx.ports.items())]

    def start_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip link set {device} up"
                for _port, device in sorted(ctx.ports.items())]

    def destroy_script(self, ctx: PluginContext) -> list[str]:
        bridge = self._bridge_name(ctx)
        commands = [f"brctl delif {bridge} {device}"
                    for _port, device in sorted(ctx.ports.items())]
        commands.append(f"brctl delbr {bridge}")
        return commands

    # -- shared mode -------------------------------------------------------------
    # In shared mode the trunk ports stay enslaved permanently and carry
    # tagged traffic; attaching a graph requires no extra bridge
    # commands because the per-graph VLAN is preserved end-to-end (the
    # adaptation layer uses per-graph, not per-port, VLAN ids).
    def add_path_script(self, ctx: PluginContext) -> list[str]:
        return []

    def remove_path_script(self, ctx: PluginContext) -> list[str]:
        return []
