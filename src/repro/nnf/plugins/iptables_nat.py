"""iptables NAT plugin — the paper's first NNF example.

Sharable: one kernel iptables serves many service graphs.  The marking
mechanism (paper requirement (i)) is a fwmark set from the per-graph
ingress subinterface; the isolated internal paths (requirement (ii))
are mark-scoped MASQUERADE and FORWARD rules, with the FORWARD policy
defaulting to DROP so traffic cannot cross between graphs.
"""

from __future__ import annotations

from repro.net.addresses import int_to_ip, parse_cidr
from repro.nnf.plugin import NnfPlugin, PluginContext

__all__ = ["IptablesNatPlugin"]


def _network_of(cidr: str) -> str:
    """``192.168.1.1/24`` -> ``192.168.1.0/24`` (the connected subnet)."""
    network, plen = parse_cidr(cidr)
    return f"{int_to_ip(network)}/{plen}"


class IptablesNatPlugin(NnfPlugin):
    name = "iptables-nat"
    functional_type = "nat"
    sharable = True
    multi_instance = True   # netns-scoped iptables: one per namespace too
    single_interface = True  # shared flavor attaches via one trunk port
    package = "iptables"

    # -- dedicated (per-graph namespace) mode -----------------------------------
    def create_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} sysctl -w net.ipv4.ip_forward=1",
            f"ip netns exec {ctx.netns} iptables -P FORWARD DROP",
        ]

    def configure_script(self, ctx: PluginContext) -> list[str]:
        lan, wan = ctx.port("lan"), ctx.port("wan")
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        if "wan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['wan.address']} dev {wan}")
        if "gateway" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip route add "
                            f"default via {ctx.config['gateway']} dev {wan}")
        commands.extend([
            f"ip netns exec {ctx.netns} iptables -t nat -A POSTROUTING "
            f"-o {wan} -j MASQUERADE",
            f"ip netns exec {ctx.netns} iptables -A FORWARD -i {lan} "
            f"-o {wan} -j ACCEPT",
            f"ip netns exec {ctx.netns} iptables -A FORWARD -i {wan} "
            f"-o {lan} -m conntrack --ctstate ESTABLISHED,RELATED "
            f"-j ACCEPT",
        ])
        return commands

    def start_script(self, ctx: PluginContext) -> list[str]:
        lan, wan = ctx.port("lan"), ctx.port("wan")
        return [
            f"ip netns exec {ctx.netns} ip link set {lan} up",
            f"ip netns exec {ctx.netns} ip link set {wan} up",
        ]

    def destroy_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} iptables -F",
            f"ip netns exec {ctx.netns} iptables -t nat -F",
            f"ip netns exec {ctx.netns} iptables -t mangle -F",
        ]

    # -- shared-instance mode ------------------------------------------------------
    def add_path_script(self, ctx: PluginContext) -> list[str]:
        """One graph's isolated path through the shared instance."""
        if ctx.mark is None:
            raise ValueError("shared path needs a mark")
        lan, wan = ctx.port("lan"), ctx.port("wan")
        mark = ctx.mark
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        if "wan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['wan.address']} dev {wan}")
        # (ii) per-graph routing: a dedicated table selected by fwmark,
        # holding this graph's connected subnets and default route, so
        # paths through the shared component never mix.
        if "lan.address" in ctx.config:
            commands.append(
                f"ip netns exec {ctx.netns} ip route add "
                f"{_network_of(ctx.config['lan.address'])} dev {lan} "
                f"table {mark}")
        if "wan.address" in ctx.config:
            commands.append(
                f"ip netns exec {ctx.netns} ip route add "
                f"{_network_of(ctx.config['wan.address'])} dev {wan} "
                f"table {mark}")
        if "gateway" in ctx.config:
            commands.append(
                f"ip netns exec {ctx.netns} ip route add default "
                f"via {ctx.config['gateway']} dev {wan} table {mark}")
        commands.append(
            f"ip netns exec {ctx.netns} ip rule add fwmark {mark} "
            f"table {mark}")
        commands.extend([
            # (i) the ad-hoc marking mechanism: per-graph ingress mark
            f"ip netns exec {ctx.netns} iptables -t mangle -A PREROUTING "
            f"-i {lan} -j MARK --set-mark {mark}",
            f"ip netns exec {ctx.netns} iptables -t mangle -A PREROUTING "
            f"-i {wan} -j MARK --set-mark {mark}",
            # propagate the mark across connections (replies included)
            f"ip netns exec {ctx.netns} iptables -t mangle -A PREROUTING "
            f"-m mark --mark {mark} -j CONNMARK --save-mark",
            # (ii) the isolated internal path, keyed on the mark
            f"ip netns exec {ctx.netns} iptables -A FORWARD "
            f"-m mark --mark {mark} -i {lan} -o {wan} -j ACCEPT",
            f"ip netns exec {ctx.netns} iptables -A FORWARD "
            f"-m mark --mark {mark} -i {wan} -o {lan} "
            f"-m conntrack --ctstate ESTABLISHED,RELATED -j ACCEPT",
            f"ip netns exec {ctx.netns} iptables -t nat -A POSTROUTING "
            f"-m mark --mark {mark} -o {wan} -j MASQUERADE",
        ])
        return commands

    def remove_path_script(self, ctx: PluginContext) -> list[str]:
        if ctx.mark is None:
            raise ValueError("shared path needs a mark")
        lan, wan = ctx.port("lan"), ctx.port("wan")
        mark = ctx.mark
        return [
            f"ip netns exec {ctx.netns} iptables -t mangle -D PREROUTING "
            f"-i {lan} -j MARK --set-mark {mark}",
            f"ip netns exec {ctx.netns} iptables -t mangle -D PREROUTING "
            f"-i {wan} -j MARK --set-mark {mark}",
            f"ip netns exec {ctx.netns} iptables -t mangle -D PREROUTING "
            f"-m mark --mark {mark} -j CONNMARK --save-mark",
            f"ip netns exec {ctx.netns} iptables -D FORWARD "
            f"-m mark --mark {mark} -i {lan} -o {wan} -j ACCEPT",
            f"ip netns exec {ctx.netns} iptables -D FORWARD "
            f"-m mark --mark {mark} -i {wan} -o {lan} "
            f"-m conntrack --ctstate ESTABLISHED,RELATED -j ACCEPT",
            f"ip netns exec {ctx.netns} iptables -t nat -D POSTROUTING "
            f"-m mark --mark {mark} -o {wan} -j MASQUERADE",
        ]
