"""Transparent bump-in-the-wire behaviour (DPI, monitors, forwarders).

Not an NNF per se — these functions exist only as VNFs in the stock
catalogue — but the driver layer uses plugins as *behaviour generators*
for every technology, so the transparent L2 data path lives here: the
daemon forwards frames between its two interfaces unmodified while
(conceptually) inspecting them, which is what an in-line DPI engine or
an l2fwd app does.
"""

from __future__ import annotations

from repro.nnf.plugin import NnfPlugin, PluginContext, PluginError

__all__ = ["TransparentL2Plugin"]


class TransparentL2Plugin(NnfPlugin):
    sharable = False
    multi_instance = True
    single_interface = False
    package = ""  # no host package: not offered as a native NF

    def __init__(self, name: str, functional_type: str) -> None:
        self.name = name
        self.functional_type = functional_type
        #: per-instance inspected-frame counters (instance_id -> count)
        self.inspected: dict[str, int] = {}

    def start_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip link set {device} up"
                for device in sorted(ctx.ports.values())]

    def post_start(self, ctx: PluginContext, host) -> None:
        namespace = host.namespace(ctx.netns)
        devices = [namespace.device(name)
                   for name in ctx.ports.values()]
        if len(devices) != 2:
            raise PluginError(
                f"{ctx.instance_id}: transparent L2 needs exactly two "
                f"ports, got {len(devices)}")
        a, b = devices
        counter_key = ctx.instance_id
        self.inspected.setdefault(counter_key, 0)

        def make_forwarder(out_device):
            def forward(dev, frame):
                self.inspected[counter_key] += 1
                out_device.transmit(frame)
            return forward

        a.attach_handler(make_forwarder(b))
        b.attach_handler(make_forwarder(a))

    def post_stop(self, ctx: PluginContext, host) -> None:
        namespace = host.namespace(ctx.netns)
        for name in ctx.ports.values():
            namespace.device(name).detach_handler()
