"""Bundled NNF plugins: the native components a stock CPE Linux ships."""

from repro.nnf.plugins.dnsmasq import DnsmasqPlugin
from repro.nnf.plugins.iptables_firewall import IptablesFirewallPlugin
from repro.nnf.plugins.iptables_nat import IptablesNatPlugin
from repro.nnf.plugins.linuxbridge import LinuxBridgePlugin
from repro.nnf.plugins.static_router import StaticRouterPlugin
from repro.nnf.plugins.strongswan import StrongswanPlugin
from repro.nnf.plugins.transparent import TransparentL2Plugin
from repro.nnf.registry import NnfRegistry

__all__ = [
    "DnsmasqPlugin",
    "IptablesFirewallPlugin",
    "IptablesNatPlugin",
    "LinuxBridgePlugin",
    "StaticRouterPlugin",
    "StrongswanPlugin",
    "TransparentL2Plugin",
    "stock_registry",
]

#: Packages a stock OpenWrt-style CPE image carries.
STOCK_PACKAGES = ("iptables", "bridge-utils", "strongswan", "dnsmasq",
                  "iproute2")


def stock_registry(installed=STOCK_PACKAGES) -> NnfRegistry:
    """Registry with every bundled plugin, as a CPE node would have."""
    registry = NnfRegistry(installed_packages=installed)
    registry.register(IptablesNatPlugin())
    registry.register(IptablesFirewallPlugin())
    registry.register(LinuxBridgePlugin())
    registry.register(StrongswanPlugin())
    registry.register(DnsmasqPlugin())
    registry.register(StaticRouterPlugin())
    # Behaviour-only entries: configure VNF-packaged transparent NFs;
    # never selected as NNFs (no native catalogue implementation).
    registry.register(TransparentL2Plugin("dpi-engine", "dpi"))
    registry.register(TransparentL2Plugin("l2fwd", "l2-forwarder"))
    return registry
