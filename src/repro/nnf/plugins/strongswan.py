"""strongSwan IPsec endpoint plugin — the NNF of the paper's Table 1.

The daemon's role is key negotiation; per-packet ESP happens on the
kernel XFRM path ("The Strongswan implementation leverages kernel
processing to handle packets faster", paper §3).  The plugin therefore
emits ``ip xfrm state/policy`` commands with key material derived from
the configured PSK — both tunnel endpoints configured with the same PSK
derive matching SAs, standing in for the IKE exchange (DESIGN.md §2).

Not sharable and not multi-instance: strongSwan keeps global kernel SA
state and a single charon control socket, so a second graph cannot get
an isolated instance of it — the canonical "exclusive NNF" the paper's
status-based placement rule exists for.
"""

from __future__ import annotations

import hashlib

from repro.ipsec.crypto import derive_keys
from repro.nnf.plugin import NnfPlugin, PluginContext

__all__ = ["StrongswanPlugin", "tunnel_sa_parameters"]


def _spi_for(src: str, dst: str) -> int:
    """Deterministic SPI for the src->dst direction (both sides agree)."""
    digest = hashlib.sha256(f"{src}->{dst}".encode()).digest()
    return 0x1000 + (int.from_bytes(digest[:4], "big") % 0x0FFF0000)


def tunnel_sa_parameters(local: str, peer: str,
                         psk: str) -> dict[str, dict[str, str]]:
    """SA parameters for both directions of a tunnel.

    Returns ``{"out": {...}, "in": {...}}`` with spi/enc/auth hex
    strings, as both endpoints derive them from the shared PSK.
    """
    result = {}
    for direction, (src, dst) in (("out", (local, peer)),
                                  ("in", (peer, local))):
        spi = _spi_for(src, dst)
        enc, auth = derive_keys(psk.encode(), src.encode(), dst.encode(),
                                spi)
        result[direction] = {"src": src, "dst": dst, "spi": spi,
                             "enc": enc.hex(), "auth": auth.hex()}
    return result


class StrongswanPlugin(NnfPlugin):
    name = "strongswan"
    functional_type = "ipsec-endpoint"
    sharable = False
    multi_instance = False
    single_interface = False
    package = "strongswan"

    REQUIRED = ("ipsec.local", "ipsec.peer", "ipsec.local_subnet",
                "ipsec.remote_subnet", "ipsec.psk")

    def create_script(self, ctx: PluginContext) -> list[str]:
        return [
            f"ip netns exec {ctx.netns} sysctl -w net.ipv4.ip_forward=1",
        ]

    def configure_script(self, ctx: PluginContext) -> list[str]:
        for key in self.REQUIRED:
            ctx.require_config(key)
        lan, wan = ctx.port("lan"), ctx.port("wan")
        commands = []
        if "lan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['lan.address']} dev {lan}")
        if "wan.address" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip addr add "
                            f"{ctx.config['wan.address']} dev {wan}")
        if "gateway" in ctx.config:
            commands.append(f"ip netns exec {ctx.netns} ip route add "
                            f"default via {ctx.config['gateway']} dev {wan}")
        # Route protected remote traffic towards the tunnel device.
        commands.append(
            f"ip netns exec {ctx.netns} ip route add "
            f"{ctx.config['ipsec.remote_subnet']} dev {wan}")
        return commands

    def start_script(self, ctx: PluginContext) -> list[str]:
        """Install kernel SAs + policies (what charon does after IKE)."""
        lan, wan = ctx.port("lan"), ctx.port("wan")
        local = ctx.config["ipsec.local"]
        peer = ctx.config["ipsec.peer"]
        local_subnet = ctx.config["ipsec.local_subnet"]
        remote_subnet = ctx.config["ipsec.remote_subnet"]
        params = tunnel_sa_parameters(local, peer, ctx.config["ipsec.psk"])
        out, inc = params["out"], params["in"]
        prefix = f"ip netns exec {ctx.netns}"
        return [
            f"{prefix} ip link set {lan} up",
            f"{prefix} ip link set {wan} up",
            f"{prefix} ip xfrm state add src {out['src']} dst {out['dst']} "
            f"proto esp spi {out['spi']} enc {out['enc']} "
            f"auth {out['auth']}",
            f"{prefix} ip xfrm state add src {inc['src']} dst {inc['dst']} "
            f"proto esp spi {inc['spi']} enc {inc['enc']} "
            f"auth {inc['auth']}",
            f"{prefix} ip xfrm policy add src {local_subnet} "
            f"dst {remote_subnet} dir out tmpl src {local} dst {peer}",
            f"{prefix} ip xfrm policy add src {remote_subnet} "
            f"dst {local_subnet} dir in tmpl src {peer} dst {local}",
        ]

    def stop_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip xfrm state flush"]

    def destroy_script(self, ctx: PluginContext) -> list[str]:
        return [f"ip netns exec {ctx.netns} ip xfrm state flush"]
