"""Sharability machinery: one native component, many service graphs.

Paper §2: a NNF that cannot spin up multiple instances must be
"sharable" to let several service graphs traverse it, which requires
(i) an ad-hoc marking mechanism distinguishing the graphs' traffic and
(ii) per-graph isolated internal paths.  This module owns the shared
instances: it hands each deploying graph a mark + adaptation-layer
attachment and asks the plugin for its add-path script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nnf.adaptation import AdaptationLayer, GraphAttachment
from repro.nnf.plugin import NnfPlugin, PluginContext

__all__ = ["SharedInstance", "SharedNnfManager", "SharingError"]


class SharingError(Exception):
    """NNF cannot accept another graph (exclusive and busy, etc.)."""


@dataclass
class SharedInstance:
    """One live shared NNF component."""

    plugin: NnfPlugin
    instance_id: str
    netns: str
    adaptation: AdaptationLayer
    base_config: dict[str, str] = field(default_factory=dict)
    attachments: dict[str, GraphAttachment] = field(default_factory=dict)

    @property
    def graph_count(self) -> int:
        return len(self.attachments)

    def context_for(self, graph_id: str,
                    config: Optional[dict[str, str]] = None) -> PluginContext:
        """Plugin context for one graph's internal path."""
        attachment = self.attachments[graph_id]
        merged = dict(self.base_config)
        merged.update(config or {})
        return PluginContext(instance_id=self.instance_id,
                             netns=self.netns,
                             ports=dict(attachment.port_devices),
                             config=merged,
                             mark=attachment.mark)


class SharedNnfManager:
    """Tracks shared instances per plugin on one node."""

    def __init__(self) -> None:
        self._instances: dict[str, SharedInstance] = {}

    def instance_of(self, plugin_name: str) -> Optional[SharedInstance]:
        return self._instances.get(plugin_name)

    def instances(self) -> list[SharedInstance]:
        return list(self._instances.values())

    # -- attach ------------------------------------------------------------------
    def ensure_instance(self, plugin: NnfPlugin, netns: str,
                        base_config: Optional[dict[str, str]] = None
                        ) -> tuple[SharedInstance, bool]:
        """Get-or-create the shared instance; returns (instance, created)."""
        if not plugin.sharable:
            raise SharingError(
                f"plugin {plugin.name} is not sharable; cannot multiplex "
                "service graphs through it")
        existing = self._instances.get(plugin.name)
        if existing is not None:
            return existing, False
        instance = SharedInstance(
            plugin=plugin,
            instance_id=f"shared-{plugin.name}",
            netns=netns,
            adaptation=AdaptationLayer(),
            base_config=dict(base_config or {}))
        self._instances[plugin.name] = instance
        return instance, True

    def attach(self, plugin_name: str, graph_id: str,
               logical_ports: list[str]) -> GraphAttachment:
        instance = self._require(plugin_name)
        if graph_id in instance.attachments:
            raise SharingError(
                f"graph {graph_id!r} already attached to {plugin_name}")
        attachment = instance.adaptation.attach_graph(graph_id,
                                                      logical_ports)
        instance.attachments[graph_id] = attachment
        return attachment

    def detach(self, plugin_name: str, graph_id: str) -> GraphAttachment:
        instance = self._require(plugin_name)
        attachment = instance.attachments.pop(graph_id, None)
        if attachment is None:
            raise SharingError(
                f"graph {graph_id!r} not attached to {plugin_name}")
        instance.adaptation.detach_graph(graph_id)
        return attachment

    def release_if_unused(self, plugin_name: str) -> Optional[SharedInstance]:
        """Drop the instance once its last graph detached."""
        instance = self._instances.get(plugin_name)
        if instance is not None and instance.graph_count == 0:
            del self._instances[plugin_name]
            return instance
        return None

    def _require(self, plugin_name: str) -> SharedInstance:
        instance = self._instances.get(plugin_name)
        if instance is None:
            raise SharingError(f"no shared instance of {plugin_name!r}")
        return instance
