"""NNF plugin API.

Each plugin mirrors the paper's implementation: "a collection of bash
scripts that control the basic lifecycle (create, update, etc.) of the
NF".  A script here is a list of command strings executed by
:class:`~repro.linuxnet.cmdline.ScriptRunner` against the simulated
host, so plugin behaviour is observable Linux state (namespaces,
iptables rules, xfrm entries), not Python side effects.

Sharable plugins additionally implement ``add_path``/``remove_path``
scripts that build or tear down one *internal path* per service graph,
keyed on the graph's mark (paper §2, requirement (ii)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.linuxnet.host import LinuxHost

__all__ = ["NnfPlugin", "PluginContext", "PluginError"]


class PluginError(Exception):
    """Plugin misuse (missing config, unsupported operation)."""


@dataclass
class PluginContext:
    """Everything a plugin script template needs.

    ``ports`` maps each logical port name of the NF template to the
    device name inside the NNF's namespace.  For shared instances,
    ``mark`` is the graph's mark and port devices are the per-graph
    VLAN subinterfaces created by the adaptation layer.
    """

    instance_id: str
    netns: str
    ports: dict[str, str] = field(default_factory=dict)
    config: dict[str, str] = field(default_factory=dict)
    mark: Optional[int] = None

    def port(self, name: str) -> str:
        try:
            return self.ports[name]
        except KeyError:
            raise PluginError(
                f"{self.instance_id}: no device for logical port "
                f"{name!r} (have {sorted(self.ports)})") from None

    def require_config(self, key: str) -> str:
        try:
            return self.config[key]
        except KeyError:
            raise PluginError(
                f"{self.instance_id}: missing required config key "
                f"{key!r}") from None


class NnfPlugin:
    """Base plugin.  Subclasses override the ``*_script`` methods.

    Class attributes describe the NNF's constraints, which the
    resolver/orchestrator consult (paper §2):

    * ``sharable`` — can serve several graphs through one component
      instance (requires the marking + internal-path machinery);
    * ``multi_instance`` — can be started several times concurrently
      (one namespace each).  A plugin that is neither sharable nor
      multi-instance is exclusive: first graph wins;
    * ``single_interface`` — receives traffic on one interface only,
      so the adaptation layer must multiplex graphs onto it.
    """

    name: str = "abstract"
    functional_type: str = ""
    sharable: bool = False
    multi_instance: bool = True
    single_interface: bool = False
    #: host package that must be installed for the plugin to be usable
    package: str = ""

    # -- lifecycle scripts ------------------------------------------------------
    def create_script(self, ctx: PluginContext) -> list[str]:
        """Bring the component into existence (netns is pre-created)."""
        return []

    def configure_script(self, ctx: PluginContext) -> list[str]:
        """Apply the predefined configuration (paper: configuration
        script applied by the NNF driver after start)."""
        return []

    def start_script(self, ctx: PluginContext) -> list[str]:
        return []

    def stop_script(self, ctx: PluginContext) -> list[str]:
        return []

    def update_script(self, ctx: PluginContext) -> list[str]:
        """Re-apply changed configuration on a running instance."""
        return self.configure_script(ctx)

    def destroy_script(self, ctx: PluginContext) -> list[str]:
        return []

    # -- sharable-NNF paths -------------------------------------------------------
    def add_path_script(self, ctx: PluginContext) -> list[str]:
        """Create the isolated internal path for one graph (ctx.mark)."""
        if not self.sharable:
            raise PluginError(f"plugin {self.name} is not sharable")
        return []

    def remove_path_script(self, ctx: PluginContext) -> list[str]:
        if not self.sharable:
            raise PluginError(f"plugin {self.name} is not sharable")
        return []

    # -- daemon hook ---------------------------------------------------------------
    def post_start(self, ctx: PluginContext, host: "LinuxHost") -> None:
        """Launch daemon behaviour that scripts cannot express (e.g.
        binding a UDP socket).  Stands in for the component's long-
        running process."""

    def post_stop(self, ctx: PluginContext, host: "LinuxHost") -> None:
        """Undo :meth:`post_start`."""

    def __repr__(self) -> str:
        flags = []
        if self.sharable:
            flags.append("sharable")
        if self.single_interface:
            flags.append("single-if")
        if not self.multi_instance:
            flags.append("exclusive")
        return f"<NnfPlugin {self.name} [{' '.join(flags) or 'plain'}]>"
