"""Autoscale bench: deterministic time-to-scale on the sim clock.

One scenario, entirely in virtual time: a chain NF with an autoscaling
policy is overloaded (offered pps far above its per-replica target),
the control loop detects it, the reconciler converges the scale-out,
the load drops, and cooldown-paced scale-ins drain the replicas away.
Because the loop, the journal and the rates all run on the simulator's
clock, the recorded ``time_to_scale_s`` / ``time_to_drain_s`` are
exact event-log replays — the same on every machine — so the bench
gates can be tight without flaking.  (Wall-clock cost is just the
frames pushed through the dataplane; a few thousand.)

``run_autoscale_bench`` returns a JSON-ready dict that
:func:`repro.perf.dataplane.run_dataplane_bench` embeds under the
``autoscale`` key of ``BENCH_dataplane.json``, and
:func:`repro.perf.dataplane.check_results` gates on.
"""

from __future__ import annotations

__all__ = ["AUTOSCALE_MAX_TICKS_TO_SCALE", "run_autoscale_bench"]

#: Gate: the loop must converge a scale-out within this many control
#: intervals of the overload becoming measurable (decision on the
#: first rated sample + one tick to converge = 2; headroom for the
#: cooldown alignment of the drain phase).
AUTOSCALE_MAX_TICKS_TO_SCALE = 4


def run_autoscale_bench(quick: bool = False, interval: float = 1.0,
                        seed: int = 5) -> dict:
    """Run the overload -> scale-out -> drain -> scale-in scenario."""
    from repro.core import ComputeNode
    from repro.net import MacAddress, make_udp_frame
    from repro.nffg.model import Nffg
    from repro.resources.capabilities import NodeCapabilities
    from repro.sim.engine import Simulator
    from repro.telemetry import Autoscaler, ControlLoop, ScalingPolicy

    if quick:
        overload_rate, light_rate = 150, 15
        target_pps, overload_until, horizon = 50.0, 4.0, 20.0
    else:
        overload_rate, light_rate = 300, 30
        target_pps, overload_until, horizon = 100.0, 6.0, 30.0

    node = ComputeNode("bench",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    graph = Nffg(graph_id="elastic", name="autoscale bench")
    graph.add_nf("dpi", "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi:in")
    graph.add_flow_rule("r2", "vnf:dpi:out", "endpoint:wan")

    sim = Simulator()
    scaler = Autoscaler(node.orchestrator.reconciler, node.telemetry)
    scaler.add_policy("elastic", ScalingPolicy(
        nf_id="dpi", target_pps=target_pps, max_replicas=3,
        cooldown_seconds=2.0 * interval))
    loop = ControlLoop(node.orchestrator, node.telemetry,
                       autoscaler=scaler, interval=interval)
    loop.run_sim(sim)
    node.deploy(graph)

    src = MacAddress("02:be:00:00:00:01")
    dst = MacAddress("02:be:00:00:00:02")
    # The seed varies the synthetic 5-tuples (and with them the hash
    # spread) between runs; the *timing* of the scenario is fixed, so
    # the time-to-scale figures stay deterministic per seed.
    import random
    rng = random.Random(seed)
    net = rng.randrange(256)
    sport_base = 4000 + rng.randrange(1000)

    def traffic():
        while sim.now < horizon - 2 * interval:
            rate = (overload_rate if sim.now < overload_until
                    else light_rate)
            frames = [make_udp_frame(
                src, dst, f"10.{net}.{i % 11}.{i % 23}", "10.8.0.1",
                sport_base + (i % 17), 53, b"b") for i in range(rate)]
            node.steering.inject_batch("lan0", frames)
            yield sim.timeout(interval)

    replica_trace: list[tuple[float, int]] = []

    def watcher():
        while True:
            counts = node.telemetry.replica_counts("elastic")
            replica_trace.append((sim.now, counts.get("dpi", 0)))
            yield sim.timeout(interval)

    sim.process(traffic(), name="traffic")
    sim.process(watcher(), name="watcher")
    sim.run(until=horizon)

    # Replay the journal for the scale timings (the same computation
    # the telemetry layer serves as time-to-scale-seconds).
    events = node.orchestrator.events("elastic")
    scale_times = [e.time for e in events if e.kind == "autoscale"]
    converged_times = [e.time for e in events if e.kind == "converged"]

    def converged_after(start):
        return next((t for t in converged_times if t > start), None)

    time_to_scale = time_to_drain = None
    if scale_times:
        done = converged_after(scale_times[0])
        if done is not None:
            time_to_scale = done - scale_times[0]
    if len(scale_times) > 1:
        done = converged_after(scale_times[-1])
        if done is not None:
            time_to_drain = done - scale_times[-1]
    max_seen = max((count for _, count in replica_trace), default=0)
    final = replica_trace[-1][1] if replica_trace else 0
    return {
        "interval_s": interval,
        "target_pps": target_pps,
        "overload_pps": float(overload_rate),
        "time_to_scale_s": time_to_scale,
        "time_to_drain_s": time_to_drain,
        "max_replicas_seen": max_seen,
        "final_replicas": final,
        "scale_decisions": [d.to_dict() for d in scaler.decisions],
        "loop_iterations": loop.iterations,
        "loop_error": loop.last_error,
        "quick": quick,
    }
