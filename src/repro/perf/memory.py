"""RAM footprint decomposition per packaging technology.

Table 1's RAM column decomposes cleanly:

* **Native** (19.4 MB) — just the NF processes: strongSwan's starter +
  charon RSS.
* **Docker** (24.2 MB) — the same processes on the same kernel, plus
  the per-container runtime attribution (containerd-shim +
  docker-proxy): 24.2 − 19.4 = **4.8 MB** of container tax.
* **KVM/QEMU** (390.6 MB) — the guest's whole RAM allocation is
  resident from the host's view (256 MB for the era's smallest
  comfortable Ubuntu guest) plus the QEMU process RSS
  (390.6 − 256 = **134.6 MB**: device models, VNC, caches).

The same decomposition prices any other NF by substituting its RSS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.templates import Technology
from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.dpdk import DpdkDriver
from repro.compute.drivers.vm_kvm import KvmDriver

__all__ = ["MemoryModel"]


@dataclass
class MemoryModel:
    """Runtime RAM per flavor, composed from driver constants so the
    drivers and the Table 1 bench can never drift apart."""

    guest_ram_mb: float = KvmDriver.guest_ram_mb
    qemu_rss_mb: float = KvmDriver.qemu_rss_mb
    shim_rss_mb: float = DockerDriver.shim_rss_mb
    hugepages_mb: float = DpdkDriver.hugepages_mb
    eal_rss_mb: float = DpdkDriver.eal_rss_mb

    def runtime_mb(self, technology: Technology,
                   nf_rss_mb: float) -> float:
        if technology is Technology.NATIVE:
            return nf_rss_mb
        if technology is Technology.DOCKER:
            return nf_rss_mb + self.shim_rss_mb
        if technology is Technology.VM:
            # NF RSS lives inside the guest allocation; not added twice.
            return self.guest_ram_mb + self.qemu_rss_mb
        if technology is Technology.DPDK:
            return self.hugepages_mb + self.eal_rss_mb + nf_rss_mb
        raise ValueError(f"unknown technology {technology!r}")

    def breakdown(self, technology: Technology,
                  nf_rss_mb: float) -> dict[str, float]:
        if technology is Technology.NATIVE:
            return {"nf-rss": nf_rss_mb}
        if technology is Technology.DOCKER:
            return {"nf-rss": nf_rss_mb, "container-shim": self.shim_rss_mb}
        if technology is Technology.VM:
            return {"guest-ram": self.guest_ram_mb,
                    "qemu-rss": self.qemu_rss_mb}
        if technology is Technology.DPDK:
            return {"hugepages": self.hugepages_mb,
                    "eal-rss": self.eal_rss_mb, "nf-rss": nf_rss_mb}
        raise ValueError(f"unknown technology {technology!r}")
