"""Churn bench: remap fractions per scale step + a stateful scale cycle.

Two legs, both deterministic (seeded flow populations, no timing):

* **Remap sweep** — :func:`measure_replica_churn` drives
  :func:`repro.switch.actions.rendezvous_select` over a seeded flow
  population through a replica ladder (1 -> 2 -> ... -> N -> ... -> 1)
  and records, per step, the fraction of flows whose selected port
  changed.  Rendezvous hashing bounds that fraction at ``1/min(N_from,
  N_to)`` in expectation — the consistent-hashing contract that
  replaced the modulo spread (where *every* step remapped ~(N-1)/N of
  flows).  The gate allows :data:`CHURN_EPSILON` of sampling slack.

* **Scale-cycle probe** — :func:`run_scale_cycle_probe` pushes TCP
  flows through a real :class:`~repro.switch.datapath.Datapath` whose
  forwarding mirrors the steering layer across a 1 -> 3 -> 1 replica
  cycle: plain ``Output`` at one replica, a stateful ``SelectOutput``
  (group + ``default_owner``) at three.  Each replica port feeds a
  NAT-style capture: a replica only knows flows whose SYN it saw, and
  any non-SYN frame landing on a replica without state is a **broken
  connection**.  The gate is zero.

``run_churn_bench`` bundles both into the dict
:func:`repro.perf.dataplane.run_dataplane_bench` embeds under the
``churn`` key of ``BENCH_dataplane.json``;
:func:`repro.perf.dataplane.check_results` gates on it in quick and
full mode alike (everything here is exact, not a timing).
"""

from __future__ import annotations

import random

__all__ = ["CHURN_EPSILON", "measure_replica_churn", "run_churn_bench",
           "run_scale_cycle_probe"]

#: Slack over the 1/min(N_from, N_to) expected remap fraction — covers
#: the sampling variance of a finite (seeded) flow population.
CHURN_EPSILON = 0.05


def measure_replica_churn(flows: int = 20000, max_replicas: int = 6,
                          seed: int = 17, base_port: int = 10) -> dict:
    """Remap fraction per replica-set step on a seeded flow population.

    Walks the ladder ``[p0] -> [p0,p1] -> ... -> [p0..pN-1]`` and back
    down, comparing each flow's rendezvous choice before and after
    every step.  Returns per-step records plus the worst margin over
    the theoretical bound (negative = under the bound everywhere).
    """
    from repro.switch.actions import rendezvous_select

    rng = random.Random(seed)
    population = [rng.randrange(1 << 32) for _ in range(flows)]
    ports = tuple(base_port + i for i in range(max_replicas))
    ladder = [ports[:n] for n in range(1, max_replicas + 1)]
    ladder += [ports[:n] for n in range(max_replicas - 1, 0, -1)]

    steps = []
    worst_margin = float("-inf")
    owners = [rendezvous_select(ladder[0], flow) for flow in population]
    for live in ladder[1:]:
        new_owners = [rendezvous_select(live, flow) for flow in population]
        moved = sum(1 for old, new in zip(owners, new_owners)
                    if old != new)
        previous_n = len(ladder[len(steps)])
        fraction = moved / flows
        bound = 1.0 / min(previous_n, len(live))
        worst_margin = max(worst_margin, fraction - bound)
        steps.append({
            "from_replicas": previous_n,
            "to_replicas": len(live),
            "flows": flows,
            "moved": moved,
            "fraction": fraction,
            "bound": bound,
        })
        owners = new_owners
    return {
        "flows": flows,
        "max_replicas": max_replicas,
        "seed": seed,
        "steps": steps,
        "worst_margin": worst_margin,
    }


def run_scale_cycle_probe(phase1_flows: int = 60, phase2_flows: int = 120,
                          data_frames: int = 3, seed: int = 19) -> dict:
    """A 1 -> 3 -> 1 replica cycle against NAT-style per-replica state.

    The datapath mirrors what the steering layer installs at each
    replica count (plain ``Output`` at one, stateful ``SelectOutput``
    at three, ``default_owner`` = the replica keeping the base
    identity).  Replica captures enforce the stateful-NF contract: a
    data frame is only deliverable where its SYN created state.
    """
    from repro.net import MacAddress, parse_frame
    from repro.net.builder import make_tcp_frame
    from repro.linuxnet.devices import VethPair
    from repro.switch import (
        Datapath, FlowEntry, FlowMatch, Output, SelectOutput, flow_key,
    )

    group = "churn-probe/nat:out"
    dp = Datapath(0xC000, name="churnprobe")
    dp.add_port("ingress")

    replica_ports: list[int] = []
    nat_state: list[dict] = []
    delivered: list[int] = []
    broken: list[tuple] = []

    def make_capture(index: int):
        known = nat_state[index]

        def capture(device, frame) -> None:
            parsed = parse_frame(frame)
            key = flow_key(parsed)
            tcp = parsed.tcp
            if tcp is not None and tcp.flags & 0x02:  # SYN creates state
                known[key] = True
            elif key not in known:
                broken.append((index, key))
            delivered[index] += 1
        return capture

    for index in range(3):
        nat_state.append({})
        delivered.append(0)
        pair = VethPair(f"cp{index}-sw", f"cp{index}-nf")
        port = dp.add_port(f"replica{index}", device=pair.a)
        pair.b.attach_handler(make_capture(index))
        pair.b.set_up()
        replica_ports.append(port.port_no)

    src = MacAddress("02:cd:00:00:00:01")
    dst = MacAddress("02:cd:00:00:00:02")
    rng = random.Random(seed)

    def flow_frames(index: int, flags: int) -> bytes:
        return make_tcp_frame(
            src, dst, f"10.{index % 200}.{index // 200}.1", "10.99.0.1",
            2000 + index, 80, b"d" if flags & 0x10 else b"",
            flags=flags)

    def send(frames) -> None:
        for frame in frames:
            dp.process(1, frame)

    def install_single() -> None:
        dp.install(FlowEntry(match=FlowMatch(in_port=1),
                             actions=(Output(replica_ports[0]),)))

    def install_spread() -> None:
        table = dp.flow_state.table(group)
        table.default_owner = replica_ports[0]
        dp.install(FlowEntry(
            match=FlowMatch(in_port=1),
            actions=(SelectOutput(tuple(replica_ports), group=group),)))

    phase1 = list(range(phase1_flows))
    phase2 = list(range(phase1_flows, phase1_flows + phase2_flows))

    # Phase A: one replica.  S1 handshakes land on replica 0 only.
    install_single()
    send(flow_frames(i, 0x02) for i in phase1)          # SYN
    send(flow_frames(i, 0x10) for i in phase1)          # first data

    # Phase B: scale-out to three.  S1 continues mid-connection (must
    # be adopted to replica 0 — its NAT state lives nowhere else);
    # S2 opens, talks and *finishes* across the spread.
    install_spread()
    for _ in range(data_frames):
        sequence = phase1[:]
        rng.shuffle(sequence)
        send(flow_frames(i, 0x10) for i in sequence)
    send(flow_frames(i, 0x02) for i in phase2)          # S2 SYN
    for _ in range(data_frames):
        sequence = phase2[:]
        rng.shuffle(sequence)
        send(flow_frames(i, 0x18) for i in sequence)
    send(flow_frames(i, 0x11) for i in phase2)          # S2 FIN/ACK

    spread_counts = list(delivered)

    # Phase C: drain back to one replica.  S2 is done; S1 keeps
    # talking and must still land on replica 0, state intact.
    install_single()
    send(flow_frames(i, 0x10) for i in phase1)

    stats = dp.flow_state.table(group).stats()
    return {
        "phase1_flows": phase1_flows,
        "phase2_flows": phase2_flows,
        "data_frames": data_frames,
        "seed": seed,
        "broken_connections": len(broken),
        "frames_per_replica": list(delivered),
        "spread_frames_per_replica": spread_counts,
        "replicas_used_during_spread":
            sum(1 for count in spread_counts if count),
        "state": stats,
    }


def run_churn_bench(quick: bool = False, seed: int = 17) -> dict:
    """Both legs, JSON-ready (the ``churn`` key of the bench dict)."""
    if quick:
        flows, max_replicas = 4000, 4
        phase1, phase2, data = 40, 80, 2
    else:
        flows, max_replicas = 20000, 6
        phase1, phase2, data = 100, 200, 3
    return {
        "epsilon": CHURN_EPSILON,
        "remap": measure_replica_churn(flows=flows,
                                       max_replicas=max_replicas,
                                       seed=seed),
        "cycle": run_scale_cycle_probe(phase1_flows=phase1,
                                       phase2_flows=phase2,
                                       data_frames=data, seed=seed + 2),
        "quick": quick,
    }
