"""Performance harness: regenerates the paper's evaluation numbers.

Absolute numbers on the authors' CPE are not reproducible in a
simulator; what is reproducible — and what the benches assert — is the
*shape* of Table 1: VM markedly slowest and heaviest, Docker ≈ Native
on throughput, Native smallest in RAM and image by a wide margin.

* :mod:`repro.perf.costmodel` — per-packet cost decomposition per
  packaging technology, calibrated against Table 1 (constants carry
  their derivations);
* :mod:`repro.perf.pipeline` — discrete-event packet pipeline: a
  closed-loop source drives a CPU-bound service chain, goodput is
  metered at the sink;
* :mod:`repro.perf.iperf` — the iPerf-like load generator/sink pair;
* :mod:`repro.perf.memory` — RAM footprint decomposition per flavor;
* :mod:`repro.perf.table1` — the Table 1 experiment driver;
* :mod:`repro.perf.dataplane` — pps microbenchmarks for the switch
  substrate itself: indexed vs linear flow lookup and the batched
  LSI-chain pipeline (emits ``BENCH_dataplane.json``).
"""

from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.dataplane import (
    ChainPoint,
    LookupPoint,
    run_dataplane_bench,
    sweep_chain,
    sweep_lookup,
    write_bench_json,
)
from repro.perf.iperf import IperfResult, run_iperf
from repro.perf.memory import MemoryModel
from repro.perf.pipeline import PacketPipeline, Stage, measure_throughput
from repro.perf.table1 import Table1Row, run_table1

__all__ = [
    "ChainPoint",
    "CostModel",
    "IperfResult",
    "LookupPoint",
    "MemoryModel",
    "NfWorkload",
    "PacketPipeline",
    "Stage",
    "Table1Row",
    "measure_throughput",
    "run_dataplane_bench",
    "run_iperf",
    "run_table1",
    "sweep_chain",
    "sweep_lookup",
    "write_bench_json",
]
