"""Control-plane churn bench: 1k graphs through the sharded loop.

The dataplane sweeps answer "how fast is a packet"; this bench answers
"how fast is the *node*" — the fleet-scale control-plane figures the
availability literature frames as first-class (time-to-converge, not
just throughput):

* **Mass deploy.**  N one-NF graphs land in the reconciler's desired
  state declaratively (``set_desired``, no inline reconcile — exactly
  what a REST burst does), then the sharded
  :class:`~repro.telemetry.loop.ControlLoop` converges the whole fleet.
  Recorded: productive ticks to convergence and per-tick wall latency.

* **Churn rounds.**  Each round rewrites the desired config of a
  deterministic subset of graphs (a reconfigure diff — the cheapest
  real plan) and converges again.  Recorded per round: ticks to
  converge, graphs touched, tick latency.

* **Policy persistence probe.**  A slice of the fleet carries
  persisted scaling policies; after deploying, every policy graph is
  re-PUT *without* policies (the plain re-PUT path) and the bench
  counts how many kept them — durable-graph-state semantics, gated
  exactly.

Convergence counts and journal totals are deterministic (the loop runs
in direct-step mode, round-robin over shard partitions), so those
gates are exact; only the latency ceilings are wall-clock and they are
set generously above the measured figures to stay flake-free in CI.

``run_controlplane_bench`` returns a JSON-ready dict;
:func:`check_results` asserts the standing gates on it (quick and
full), and the perf harness writes ``BENCH_controlplane.json`` next to
the dataplane artifact.
"""

from __future__ import annotations

import time

__all__ = [
    "CONTROLPLANE_MAX_CONVERGE_TICKS",
    "FULL_GRAPHS",
    "QUICK_GRAPHS",
    "TICK_LATENCY_CEILING_S",
    "check_results",
    "run_controlplane_bench",
]

#: Gate: a fleet-wide change (mass deploy or churn round) must become
#: convergent within this many *productive* loop ticks.  The plan
#: compiler executes a graph's whole diff in one tick, so the expected
#: figure is exactly 1; 2 leaves room for a checkpoint boundary.
CONTROLPLANE_MAX_CONVERGE_TICKS = 2

#: Fleet sizes: the full bench is the ISSUE's 1k-graph churn; quick is
#: the CI smoke slice of the same shape.
FULL_GRAPHS = 1000
QUICK_GRAPHS = 64

#: Wall-clock ceiling on the *mean* fleet tick, per graph.  A no-op
#: tick costs tens of microseconds and a full-deploy tick a few
#: hundred; 5 ms/graph is an order of magnitude of headroom for loaded
#: CI boxes.  The max-tick gate allows 3x the mean ceiling.
TICK_LATENCY_CEILING_S = 0.005


def _mega_capabilities():
    """A node big enough to host the 1k-graph fleet.

    ``datacenter_server()`` (32 cores / 256 GB) admits only a few
    hundred docker NFs; the bench is about the control plane, not
    admission control, so the box is sized out of the way.
    """
    from repro.resources.capabilities import NodeCapabilities, NodeClass
    return NodeCapabilities(
        node_class=NodeClass.DATACENTER, cpu_cores=65536, cpu_mhz=2600,
        ram_mb=1 << 26, disk_mb=1 << 30,
        features=frozenset({"docker", "kvm", "linux", "netns",
                            "iptables", "xfrm"}))


def _fleet_graph(index: int, policy_every: int):
    """One-NF pass-through graph #index; every Nth carries a policy."""
    from repro.nffg.model import Nffg
    graph = Nffg(graph_id=f"g{index:04d}", name=f"churn fleet #{index}")
    graph.add_nf("fw", "firewall", technology="docker",
                 config={"round": "0"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan")
    graph.add_flow_rule("r2", "vnf:fw:wan", "endpoint:wan")
    if index % policy_every == 0:
        graph.add_policy("fw", target_pps=10000.0, max_replicas=2)
    return graph


def run_controlplane_bench(quick: bool = False, shards: int = 4,
                           policy_every: int = 10) -> dict:
    """Run the mass-deploy + churn scenario; returns the results dict."""
    from repro.core import ComputeNode
    from repro.core.reconciler import ShardedEventJournal, shard_of_graph
    from repro.nffg.model import NfInstanceSpec
    from repro.telemetry import Autoscaler, ControlLoop

    graph_count = QUICK_GRAPHS if quick else FULL_GRAPHS
    churn_rounds = 2 if quick else 3
    churn_every = 5  # each round rewrites 1/5th of the fleet

    node = ComputeNode("controlplane-bench",
                       capabilities=_mega_capabilities())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    reconciler = node.orchestrator.reconciler
    autoscaler = Autoscaler(reconciler=reconciler, registry=node.telemetry)
    loop = ControlLoop(node.orchestrator, node.telemetry,
                       autoscaler=autoscaler, interval=1.0, shards=shards)

    graphs = [_fleet_graph(i, policy_every) for i in range(graph_count)]
    tick_seconds: list[float] = []

    def converge(max_steps: int = 10) -> tuple[int, bool]:
        """Step the loop until a tick executes nothing.

        Returns (productive ticks, converged) — deterministic, because
        direct ``step()`` calls tick the shard partitions round-robin.
        """
        productive = 0
        for _ in range(max_steps):
            started = time.perf_counter()
            stats = loop.step()
            tick_seconds.append(time.perf_counter() - started)
            if stats["steps-executed"] == 0:
                return productive, True
            productive += 1
        return productive, False

    # -- phase 1: mass declarative deploy ------------------------------------
    deploy_started = time.perf_counter()
    for graph in graphs:
        reconciler.set_desired(graph)
    set_desired_seconds = time.perf_counter() - deploy_started
    deploy_ticks, deploy_converged = converge()
    deploy_seconds = time.perf_counter() - deploy_started

    # -- phase 2: policy persistence probe -----------------------------------
    policy_graphs = [g for g in graphs if g.policies]
    preserved = 0
    for graph in policy_graphs:
        replut = _fleet_graph(int(graph.graph_id[1:]), policy_every)
        replut.policies = []  # a plain re-PUT carries no policy key
        node.update(replut)
        raw = reconciler.desired_raw[graph.graph_id]
        if len(raw.policies) == len(graph.policies):
            preserved += 1

    # -- phase 3: churn rounds -----------------------------------------------
    rounds = []
    for round_no in range(1, churn_rounds + 1):
        touched = 0
        for index, graph in enumerate(graphs):
            if index % churn_every != round_no % churn_every:
                continue
            mutated = _fleet_graph(index, policy_every)
            mutated.nfs = [NfInstanceSpec.with_config(
                "fw", "firewall", technology="docker",
                config={"round": str(round_no)})]
            reconciler.set_desired(mutated)
            touched += 1
        round_started = time.perf_counter()
        ticks, converged_flag = converge()
        rounds.append({
            "round": round_no,
            "graphs_touched": touched,
            "ticks_to_converge": ticks,
            "converged": converged_flag,
            "round_seconds": time.perf_counter() - round_started,
        })

    # -- bookkeeping ----------------------------------------------------------
    journal = reconciler.journal
    dropped_total = sum(journal.dropped_count(graph.graph_id)
                        for graph in graphs)
    per_shard = [0] * shards
    for graph in graphs:
        per_shard[shard_of_graph(graph.graph_id, shards)] += 1
    statuses = [node.orchestrator.status(graph.graph_id)
                for graph in graphs]
    mean_tick = (sum(tick_seconds) / len(tick_seconds)
                 if tick_seconds else 0.0)
    return {
        "graphs": graph_count,
        "shards": shards,
        "deploy": {
            "set_desired_seconds": set_desired_seconds,
            "ticks_to_converge": deploy_ticks,
            "converged": deploy_converged,
            "total_seconds": deploy_seconds,
        },
        "churn_rounds": rounds,
        "policies": {
            "graphs_with_policies": len(policy_graphs),
            "preserved_after_replut": preserved,
        },
        "tick_latency": {
            "ticks": len(tick_seconds),
            "mean_s": mean_tick,
            "max_s": max(tick_seconds, default=0.0),
            "mean_per_graph_s": mean_tick / graph_count,
        },
        "shard_graphs": per_shard,
        "journal": {
            "sharded": isinstance(journal, ShardedEventJournal),
            "dropped_total": dropped_total,
            "graphs_journaled": len(journal.graphs()),
        },
        "statuses_converged": sum(1 for s in statuses if s["converged"]),
        "tick_errors": loop.tick_errors,
        "loop_error": loop.last_error,
        "meta": {"quick": quick, "timestamp": time.time()},
    }


def check_results(results: dict) -> None:
    """Assert the standing control-plane gates on a bench result dict.

    The convergence, policy, journal and shard gates are exact (the
    loop is deterministic in direct-step mode); only the latency gates
    are wall-clock, and their ceilings sit an order of magnitude above
    the measured figures.  Applied identically in quick and full mode
    — the quick fleet is the same shape, just smaller.
    """
    graphs = results["graphs"]
    deploy = results["deploy"]
    assert deploy["converged"], (
        f"{graphs}-graph mass deploy never converged "
        f"({deploy['ticks_to_converge']} productive ticks)")
    assert 1 <= deploy["ticks_to_converge"] <= \
        CONTROLPLANE_MAX_CONVERGE_TICKS, (
        f"mass deploy took {deploy['ticks_to_converge']} productive "
        f"ticks (expected 1..{CONTROLPLANE_MAX_CONVERGE_TICKS})")
    for round_result in results["churn_rounds"]:
        assert round_result["converged"], (
            f"churn round {round_result['round']} never converged")
        assert round_result["ticks_to_converge"] <= \
            CONTROLPLANE_MAX_CONVERGE_TICKS, (
            f"churn round {round_result['round']} took "
            f"{round_result['ticks_to_converge']} productive ticks "
            f"(ceiling {CONTROLPLANE_MAX_CONVERGE_TICKS})")
        assert round_result["graphs_touched"] > 0, (
            f"churn round {round_result['round']} touched no graphs")
    policies = results["policies"]
    assert policies["graphs_with_policies"] > 0, (
        "no graph in the fleet carried a scaling policy")
    assert policies["preserved_after_replut"] == \
        policies["graphs_with_policies"], (
        f"only {policies['preserved_after_replut']}/"
        f"{policies['graphs_with_policies']} graphs kept their "
        "persisted policies across a plain re-PUT")
    assert results["statuses_converged"] == graphs, (
        f"only {results['statuses_converged']}/{graphs} graphs report "
        "converged status after the churn")
    assert results["tick_errors"] == 0 and not results["loop_error"], (
        f"loop absorbed {results['tick_errors']} tick error(s), last: "
        f"{results['loop_error']!r}")
    journal = results["journal"]
    assert journal["sharded"], "the loop did not install a sharded journal"
    assert journal["dropped_total"] == 0, (
        f"{journal['dropped_total']} journal events dropped — rings "
        "sized too small for the churn volume")
    assert journal["graphs_journaled"] >= graphs, (
        f"journal knows {journal['graphs_journaled']} graphs, "
        f"expected >= {graphs}")
    if graphs >= 4 * results["shards"]:
        assert min(results["shard_graphs"]) > 0, (
            f"shard balance broken: {results['shard_graphs']}")
    latency = results["tick_latency"]
    assert latency["mean_per_graph_s"] <= TICK_LATENCY_CEILING_S, (
        f"mean fleet tick costs {latency['mean_per_graph_s'] * 1e3:.2f} "
        f"ms/graph (ceiling {TICK_LATENCY_CEILING_S * 1e3:.1f} ms)")
    assert latency["max_s"] <= 3 * TICK_LATENCY_CEILING_S * graphs, (
        f"worst fleet tick took {latency['max_s']:.2f}s "
        f"(ceiling {3 * TICK_LATENCY_CEILING_S * graphs:.2f}s)")
