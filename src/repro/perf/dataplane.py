"""Dataplane pps microbenchmarks: lookup, compiled actions, batched chains.

Three sweeps:

* **Lookup** — installs steering-shaped tables (exact ``(in_port,
  vlan)`` entries plus a sprinkle of CIDR wildcards) at several sizes
  and times :meth:`FlowTable.lookup` (small-table bypass below 17
  entries, two-level index above) against the pre-PR reference linear
  scan (:meth:`FlowTable.lookup_linear`, which still re-parses CIDR
  strings per packet — exactly the old cost model).

* **Actions** — times the fused closures from
  :func:`repro.switch.actions.compile_actions` against the interpreted
  reference loop (:meth:`Datapath.execute_interpreted`) for each hot
  steering shape.

* **Chain** — wires N datapaths in a row with virtual links (the
  Figure-1 LSI chain) and times four cost models: per-frame
  :meth:`Datapath.process` with *interpreted* actions (the pre-PR
  cost model), :meth:`Datapath.process_batch_from` with compiled
  actions and zero-reparse ``ParsedFrame`` carry but fusion disabled
  (the per-hop batch path), chain fusion on but per-port dispatch off
  (one straight-line program per batch group, a single indexed lookup
  at chain ingress), and the production configuration — fusion *and*
  the per-port dispatch tables (:class:`FusionEngine.dispatch`), where
  steady-state frames jump from ingress straight to their fused
  program without walking the flow table at all.

:func:`check_lb_fusion` is a behavioral probe, not a timing: a
chain-2 graph whose terminal is a stateful ``SelectOutput`` spread
driven through a 1 -> 3 -> 1 replica cycle with batched traffic,
asserting that the LB hop *fuses per replica*
(:class:`~repro.switch.fusion.FusedSelectChain`) while the churn
contract — zero broken connections, full adoption, preserved pins —
stays intact.

``run_dataplane_bench`` bundles the sweeps into a JSON-serializable
dict; benches write it to ``BENCH_dataplane.json`` so later PRs can
track the pps trajectory.  :func:`check_results` asserts the standing
acceptance thresholds on such a dict.  ``quick=True`` shrinks the
sweep to a single table size and chain length with fewer packets and
repeats — the tier-1 smoke configuration, which asserts only the
no-regression gates (point floors, purity counters) and skips the
absolute speedup targets that need the full best-of-3 sweep.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, field

from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.switch import (
    Datapath,
    FlowEntry,
    FlowMatch,
    FlowTable,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    VirtualLink,
)
from repro.switch.flowtable import SMALL_TABLE_THRESHOLD

__all__ = [
    "ActionPoint",
    "ChainPoint",
    "CHAIN_BATCH_TARGET",
    "DISPATCH_CHAIN_TARGET_AT_4",
    "FUSED_CHAIN_TARGET_AT_4",
    "LookupPoint",
    "SMALL_TABLE_FLOOR",
    "SPEEDUP_TARGET_AT_1K",
    "CHAIN_BATCH_TARGET_AT_4",
    "TRACING_OVERHEAD_FLOOR",
    "build_steering_table",
    "check_fused_invalidation",
    "check_lb_fusion",
    "check_results",
    "check_tracing_overhead",
    "count_chain_excess_parse_frame",
    "count_fast_path_parse_cidr",
    "run_dataplane_bench",
    "sweep_actions",
    "sweep_chain",
    "sweep_lookup",
    "write_bench_json",
]

#: Acceptance floor: indexed vs linear speedup at the 1k-entry point.
SPEEDUP_TARGET_AT_1K = 10.0
#: Acceptance floor: batched+compiled chain traversal vs per-frame
#: interpreted execution at the longest measured chain.
CHAIN_BATCH_TARGET = 1.3
#: Acceptance floor at chain length 4 specifically: with zero-reparse
#: ``ParsedFrame`` carry and single-port batch ingress the deep-chain
#: point must clear this (the pre-carry pipeline sat at ~1.45-1.6x).
CHAIN_BATCH_TARGET_AT_4 = 1.8
#: Regression floor for *every* chain length: batching must never be
#: meaningfully slower than the per-frame path.
CHAIN_POINT_FLOOR = 0.9
#: Acceptance target at chain length 4 for the *fused* leg: whole-chain
#: straight-line programs vs per-frame interpretation.  The per-hop
#: batch path sits at ~3.25x; fusion must roughly double it.
FUSED_CHAIN_TARGET_AT_4 = 6.0
#: Acceptance target at chain length 4 for the *dispatch-fused* leg —
#: the production configuration: per-port dispatch tables skip the
#: ingress table walk entirely, and byte-splice terminals replace the
#: per-frame ``derive()`` rewrite.  Fusion alone sits at ~7x; dispatch
#: must push past this.
DISPATCH_CHAIN_TARGET_AT_4 = 9.0
#: Acceptance floor: small tables (<= bypass threshold) must not lose
#: to the bare reference linear scan.
SMALL_TABLE_FLOOR = 1.0
#: Quick-mode no-regression floor for *every* measured lookup point:
#: indexed lookup must never lose to the reference linear scan (the
#: full sweep's absolute targets need best-of-3 to be stable, but
#: parity is safe to assert even on a loaded box — the real margin at
#: the quick point is ~4.5x).
QUICK_LOOKUP_FLOOR = 1.0
#: Acceptance floor for tracing overhead (quick and full mode): with a
#: tracer attached but the 1-in-N sampler never firing, dispatch-fused
#: chain throughput must stay within 3% of the tracer-detached
#: baseline — the unsampled hot path is one attribute read and a
#: counter compare per batch.
TRACING_OVERHEAD_FLOOR = 0.97

_MAC_A = MacAddress("02:00:00:00:00:01")
_MAC_B = MacAddress("02:00:00:00:00:02")

#: Ingress ports the synthetic steering layer spreads entries over.
_N_PORTS = 8
#: One wildcard (CIDR) entry per this many exact entries.
_WILDCARD_EVERY = 50


@dataclass
class LookupPoint:
    """One table-size point of the lookup sweep.

    ``wall_s`` maps each measured leg to the total wall-clock it spent
    (all repeats, not just the best), ``repeats`` how many runs each
    best-of figure was taken over — together they document the cost
    and stability of every recorded number.
    """

    table_size: int
    packets: int
    linear_pps: float
    indexed_pps: float
    speedup: float
    wall_s: dict = field(default_factory=dict)
    repeats: int = 0


@dataclass
class ChainPoint:
    """One chain-length point of the pipeline sweep.

    ``single_pps`` is per-frame :meth:`Datapath.process` with
    interpreted actions (the pre-compilation cost model);
    ``batched_pps`` is :meth:`Datapath.process_batch_from` with
    compiled actions and per-batch counters but fusion disabled (the
    per-hop batch path); ``fused_pps`` re-enables chain fusion with
    the per-port dispatch layer off (one indexed lookup per frame at
    chain ingress); ``dispatch_pps`` is the production configuration —
    fusion plus dispatch tables, no ingress table walk at all.
    ``fused_hits`` counts frames the ingress engine actually delivered
    through fused programs during the fused leg (0 at chain length 1,
    where single-hop "chains" stay on the already-optimal per-hop path
    by design); ``dispatch_hits`` counts frames that skipped the
    ingress walk through a dispatch slot during the dispatch leg.
    ``wall_s`` / ``repeats`` as on :class:`LookupPoint`.
    """

    chain_length: int
    packets: int
    single_pps: float
    batched_pps: float
    speedup: float
    fused_pps: float = 0.0
    fused_speedup: float = 0.0
    fused_hits: int = 0
    dispatch_pps: float = 0.0
    dispatch_speedup: float = 0.0
    dispatch_hits: int = 0
    wall_s: dict = field(default_factory=dict)
    repeats: int = 0


@dataclass
class ActionPoint:
    """One action-shape point: compiled closure vs interpreted loop."""

    shape: str
    packets: int
    interpreted_pps: float
    compiled_pps: float
    speedup: float
    wall_s: dict = field(default_factory=dict)
    repeats: int = 0


def _vid(index: int) -> int:
    """Unique (port, vlan) pair per entry index, steering-style."""
    return 100 + (index // _N_PORTS) % 3900


def _port(index: int) -> int:
    return 1 + index % _N_PORTS


def build_steering_table(size: int) -> FlowTable:
    """A table shaped like the steering layer's output at ``size`` entries.

    Mostly exact ``(in_port, vlan_vid)`` entries (what ``_install_rule``
    emits for inter-LSI segments), plus a low-priority CIDR wildcard
    every :data:`_WILDCARD_EVERY` entries (endpoint classification
    rules).
    """
    table = FlowTable()
    for index in range(size):
        table.add(FlowEntry(
            match=FlowMatch(in_port=_port(index), vlan_vid=_vid(index)),
            actions=(Output(200),), priority=100))
        if index % _WILDCARD_EVERY == 0:
            table.add(FlowEntry(
                match=FlowMatch(in_port=_port(index),
                                ip_dst=f"10.{index % 200}.0.0/16"),
                actions=(Output(201),), priority=10))
    return table


def _steering_frames(size: int, packets: int, seed: int) -> list:
    """(in_port, ParsedFrame) pairs hitting installed entries."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(packets):
        index = rng.randrange(max(size, 1))
        frame = make_udp_frame(
            _MAC_A, _MAC_B, f"10.{index % 200}.0.1", "10.200.0.2",
            4000, 5001, b"x", vlan=_vid(index))
        pairs.append((_port(index), parse_frame(frame)))
    return pairs


def _best_elapsed(run, repeats: int) -> "tuple[float, float]":
    """``(best, total)`` wall-clock of ``repeats`` runs of ``run``.

    Microbenchmark legs take best-of-N so one scheduler hiccup or GC
    pause cannot fail an acceptance threshold; the minimum is the
    least-noisy estimator of the true cost.  The total (every repeat
    summed) is recorded alongside each point so the sweep's real cost
    stays visible in the bench file.
    """
    best = float("inf")
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        total += elapsed
        best = min(best, elapsed)
    return best, total


def sweep_lookup(sizes=(10, 100, 1000, 5000), packets: int = 2000,
                 seed: int = 7, repeats: int = 3) -> list[LookupPoint]:
    """Time indexed vs reference-linear lookup at each table size."""
    points = []
    for size in sizes:
        table = build_steering_table(size)
        workload = _steering_frames(size, packets, seed)
        # Warm the lazy-parse caches so both paths see identical frames.
        for in_port, parsed in workload:
            table.lookup(in_port, parsed, count=False)
            table.lookup_linear(in_port, parsed)

        def run_linear():
            for in_port, parsed in workload:
                table.lookup_linear(in_port, parsed)

        def run_indexed():
            for in_port, parsed in workload:
                table.lookup(in_port, parsed, count=False)

        linear_elapsed, linear_wall = _best_elapsed(run_linear, repeats)
        indexed_elapsed, indexed_wall = _best_elapsed(run_indexed, repeats)

        linear_pps = packets / linear_elapsed
        indexed_pps = packets / indexed_elapsed
        points.append(LookupPoint(
            table_size=size, packets=packets, linear_pps=linear_pps,
            indexed_pps=indexed_pps, speedup=indexed_pps / linear_pps,
            wall_s={"linear": linear_wall, "indexed": indexed_wall},
            repeats=repeats))
    return points


#: The steering layer's action shapes (see ``_install_rule``), timed by
#: :func:`sweep_actions`.  The third element marks shapes that need
#: VLAN-tagged input frames.
_ACTION_SHAPES: tuple[tuple[str, tuple, bool], ...] = (
    ("output", (Output(2),), False),
    ("push+output", (PushVlan(42), Output(2)), False),
    ("pop+output", (PopVlan(), Output(2)), True),
    ("pop+push+output", (PopVlan(), PushVlan(43), Output(2)), True),
    ("setfield+push+output",
     (SetField("eth_dst", "02:00:00:00:00:99"), PushVlan(44), Output(2)),
     False),
)


def sweep_actions(packets: int = 2000, seed: int = 13,
                  repeats: int = 3) -> list[ActionPoint]:
    """Time compiled action closures against the interpreted loop.

    Both paths run the same entry over the same frames with a no-op
    emit, so the measurement isolates the action machinery itself
    (dispatch + frame rewrites) from lookup and egress.
    """
    rng = random.Random(seed)

    def no_emit(out_port: int, in_port: int, frame) -> None:
        pass

    points = []
    for shape, actions, tagged in _ACTION_SHAPES:
        dp = Datapath(0x8000, name="actbench")
        entry = FlowEntry(match=FlowMatch(), actions=actions)
        frames = [make_udp_frame(
            _MAC_A, _MAC_B, "10.0.0.1", "10.0.0.2",
            4000 + rng.randrange(1000), 5001, b"x",
            vlan=7 if tagged else None) for _ in range(packets)]
        compiled = entry.compiled
        for frame in frames[:16]:  # warm both paths
            dp.execute_interpreted(entry.actions, 1, frame, no_emit)
            compiled(dp, 1, frame, no_emit)

        def run_interpreted():
            acts = entry.actions
            for frame in frames:
                dp.execute_interpreted(acts, 1, frame, no_emit)

        def run_compiled():
            for frame in frames:
                compiled(dp, 1, frame, no_emit)

        interpreted_elapsed, interpreted_wall = _best_elapsed(
            run_interpreted, repeats)
        compiled_elapsed, compiled_wall = _best_elapsed(
            run_compiled, repeats)

        interpreted_pps = packets / interpreted_elapsed
        compiled_pps = packets / compiled_elapsed
        points.append(ActionPoint(
            shape=shape, packets=packets, interpreted_pps=interpreted_pps,
            compiled_pps=compiled_pps,
            speedup=compiled_pps / interpreted_pps,
            wall_s={"interpreted": interpreted_wall,
                    "compiled": compiled_wall},
            repeats=repeats))
    return points


def _build_chain(length: int) -> list[Datapath]:
    """``length`` datapaths in a row joined by virtual links.

    Ingress port is 1 on the first hop; the last hop forwards to a
    counting sink port.
    """
    hops = [Datapath(0x9000 + i, name=f"hop{i}") for i in range(length)]
    first = hops[0]
    first.add_port("ingress")
    previous_in = 1
    for left, right in zip(hops, hops[1:]):
        link = VirtualLink.connect(left, right, name=f"vl-{left.name}")
        out_no = link.far_port(left).port_no
        left.install(FlowEntry(match=FlowMatch(in_port=previous_in),
                               actions=(Output(out_no),)))
        previous_in = link.far_port(right).port_no
    last = hops[-1]
    sink = last.add_port("sink")
    last.install(FlowEntry(match=FlowMatch(in_port=previous_in),
                           actions=(Output(sink.port_no),)))
    return hops


def sweep_chain(lengths=(1, 2, 4), packets: int = 1000,
                seed: int = 11, repeats: int = 3) -> list[ChainPoint]:
    """Time the four chain cost models at each length.

    Four legs per length, same frames, same wiring: per-frame
    interpreted :meth:`Datapath.process` (the pre-compilation cost
    model), per-hop batched with compiled actions but fusion *off*
    (the pre-fusion cost model, and the fusion fallback path), batched
    with chain fusion on but the per-port dispatch layer off (the
    whole chain runs as one straight-line program per batch group,
    reached through one indexed lookup per frame), and the production
    configuration — fusion plus dispatch tables, where steady-state
    frames skip the ingress table walk entirely.
    """
    rng = random.Random(seed)
    frames = [make_udp_frame(_MAC_A, _MAC_B, "10.0.0.1", "10.0.0.2",
                             4000 + rng.randrange(1000), 5001, b"x")
              for _ in range(packets)]
    points = []
    for length in lengths:
        hops = _build_chain(length)
        first, last = hops[0], hops[-1]
        sink = last.port_by_name("sink")
        warmup = frames[:16]
        for frame in warmup:
            first.process(1, frame)

        def run_single():
            for frame in frames:
                first.process(1, frame)

        def run_batched():
            first.process_batch_from(1, frames)

        for hop in hops:
            hop.compiled_actions = False
        single_elapsed, single_wall = _best_elapsed(run_single, repeats)

        for hop in hops:
            hop.compiled_actions = True
            hop.fusion.enabled = False
        batched_elapsed, batched_wall = _best_elapsed(run_batched, repeats)

        for hop in hops:
            hop.fusion.enabled = True
            hop.fusion.dispatch_enabled = False
        fused_elapsed, fused_wall = _best_elapsed(run_batched, repeats)
        fused_hits = first.fusion.hits

        for hop in hops:
            hop.fusion.dispatch_enabled = True
        dispatch_elapsed, dispatch_wall = _best_elapsed(
            run_batched, repeats)
        dispatch_hits = first.fusion.dispatch_hits

        assert sink.tx_packets == len(warmup) + 4 * repeats * packets, \
            f"chain {length}: sink saw {sink.tx_packets} frames"
        single_pps = packets / single_elapsed
        batched_pps = packets / batched_elapsed
        fused_pps = packets / fused_elapsed
        dispatch_pps = packets / dispatch_elapsed
        points.append(ChainPoint(
            chain_length=length, packets=packets, single_pps=single_pps,
            batched_pps=batched_pps, speedup=batched_pps / single_pps,
            fused_pps=fused_pps, fused_speedup=fused_pps / single_pps,
            fused_hits=fused_hits,
            dispatch_pps=dispatch_pps,
            dispatch_speedup=dispatch_pps / single_pps,
            dispatch_hits=dispatch_hits,
            wall_s={"single": single_wall, "batched": batched_wall,
                    "fused": fused_wall, "dispatch": dispatch_wall},
            repeats=repeats))
    return points


def count_fast_path_parse_cidr(table: FlowTable, workload) -> int:
    """How many ``parse_cidr`` calls the indexed fast path makes (must be 0).

    Temporarily intercepts ``parse_cidr`` in both the flowtable and
    addresses namespaces, runs every lookup in ``workload`` against
    ``table``, and returns the call count.
    """
    from repro.net import addresses
    from repro.switch import flowtable

    calls = [0]
    original = addresses.parse_cidr

    def counting(cidr: str):
        calls[0] += 1
        return original(cidr)

    flowtable.parse_cidr = counting
    addresses.parse_cidr = counting
    try:
        for in_port, parsed in workload:
            table.lookup(in_port, parsed, count=False)
    finally:
        flowtable.parse_cidr = original
        addresses.parse_cidr = original
    return calls[0]


def count_chain_excess_parse_frame(length: int, packets: int = 50,
                                   seed: int = 23,
                                   fused: bool = False) -> int:
    """``parse_frame`` calls beyond one per frame on an untouched chain.

    Builds a plain-``Output`` chain of ``length`` hops (no action
    rewrites any frame), runs one batch of raw frames through it while
    counting every ``parse_frame`` call the datapath makes, and returns
    the excess over one-parse-per-frame at ingress.  Must never be
    positive: ``fused=False`` pins the per-hop batch pipeline at
    exactly 0 (carried :class:`ParsedFrame` views make re-parsing at
    hops 2..N structurally impossible), while ``fused=True`` — the
    production path, dispatch tables on — goes *negative* at
    multi-hop lengths: dispatch-hit frames are parked raw and a plain
    fused chain delivers them without decoding past L2, so even the
    ingress parse disappears.
    """
    from repro.switch import datapath as datapath_module

    rng = random.Random(seed)
    frames = [make_udp_frame(_MAC_A, _MAC_B, "10.0.0.1", "10.0.0.2",
                             4000 + rng.randrange(1000), 5001, b"x")
              for _ in range(packets)]
    hops = _build_chain(length)
    for hop in hops:
        hop.fusion.enabled = fused
    calls = [0]
    original = datapath_module.parse_frame

    def counting(frame):
        calls[0] += 1
        return original(frame)

    datapath_module.parse_frame = counting
    try:
        hops[0].process_batch_from(1, frames)
    finally:
        datapath_module.parse_frame = original
    sink = hops[-1].port_by_name("sink")
    assert sink.tx_packets == packets, \
        f"chain {length}: sink saw {sink.tx_packets}/{packets} frames"
    if fused and length >= 2:
        assert hops[0].fusion.hits == packets, \
            f"chain {length}: fusion engaged for only " \
            f"{hops[0].fusion.hits}/{packets} frames"
    return calls[0] - packets


def check_fused_invalidation(packets: int = 40, seed: int = 29) -> dict:
    """Behavioral gate on the fusion-invalidation contract.

    Runs a chain-2 batch (which fuses), lands a flow-mod *directly* on
    the downstream table — the worst case: no steering-level
    invalidation fires, only the flush-time validity check stands
    between the stale program and the wire — then batches again.  The
    second batch must take the fallback path to the *new* terminal
    (zero frames may reach the old sink), and a third batch must
    re-fuse against the new rule set.  Returned counters are asserted
    by :func:`check_results` in quick and full mode alike.
    """
    rng = random.Random(seed)
    frames = [make_udp_frame(_MAC_A, _MAC_B, "10.0.0.1", "10.0.0.2",
                             4000 + rng.randrange(1000), 5001, b"x")
              for _ in range(packets)]
    hops = _build_chain(2)
    first, last = hops[0], hops[-1]
    engine = first.fusion
    old_sink = last.port_by_name("sink")

    first.process_batch_from(1, frames)
    fused_before = engine.hits
    old_before = old_sink.tx_packets

    # The flow-mod: retarget the terminal entry at a new sink port via
    # a direct table write (add() strict-deletes the old entry).
    new_sink = last.add_port("sink2")
    entry = next(iter(last.table))
    last.install(FlowEntry(match=entry.match,
                           actions=(Output(new_sink.port_no),),
                           priority=entry.priority))

    first.process_batch_from(1, frames)
    stale = old_sink.tx_packets - old_before
    fallback = new_sink.tx_packets
    invalidations = engine.invalidations
    hits_before_retrace = engine.hits

    first.process_batch_from(1, frames)
    return {
        "packets": packets,
        "fused_before_flowmod": fused_before,
        "stale_frames_delivered": stale,
        "fallback_delivered": fallback,
        "invalidations": invalidations,
        "refused_after_retrace": engine.hits - hits_before_retrace,
    }


def check_lb_fusion(phase1_flows: int = 40, phase2_flows: int = 80,
                    data_frames: int = 2, seed: int = 31) -> dict:
    """Behavioral gate: the LB hop fuses per replica, churn-safely.

    A chain-2 graph — forwarding ingress LSI into an LB LSI whose
    terminal is a stateful ``SelectOutput`` over three NAT-style
    replica captures — driven with *batched* traffic through a
    1 -> 3 -> 1 replica cycle (the same contract as
    :func:`repro.perf.churn.run_scale_cycle_probe`, which runs
    per-frame and single-hop, so its select sits at chain ingress and
    never fuses).  Here the spread is a chain *terminal*: after the
    one fallback batch that re-traces past each reinstall, every
    spread-phase frame must run inside a
    :class:`~repro.switch.fusion.FusedSelectChain` — while the churn
    gates (zero broken connections, full adoption to the base replica,
    preserved pins across the drain) hold exactly as on the per-hop
    path.  All figures are exact counts, asserted by
    :func:`check_results` in quick and full mode alike.
    """
    from repro.net.builder import make_tcp_frame
    from repro.linuxnet.devices import VethPair
    from repro.switch import SelectOutput, flow_key
    from repro.switch.fusion import FusedSelectChain

    group = "lbfuse-probe/nat:out"
    ingress = Datapath(0xD000, name="lbf-ingress")
    ingress.add_port("ingress")
    balancer = Datapath(0xD001, name="lbf-balancer")
    link = VirtualLink.connect(ingress, balancer, name="lbf-seg")
    lb_in = link.far_port(balancer).port_no

    replica_ports: list[int] = []
    nat_state: list[dict] = []
    delivered: list[int] = []
    broken: list[tuple] = []

    def make_capture(index: int):
        known = nat_state[index]

        def capture(device, frame) -> None:
            parsed = parse_frame(frame)
            key = flow_key(parsed)
            tcp = parsed.tcp
            if tcp is not None and tcp.flags & 0x02:  # SYN creates state
                known[key] = True
            elif key not in known:
                broken.append((index, key))
            delivered[index] += 1
        return capture

    for index in range(3):
        nat_state.append({})
        delivered.append(0)
        pair = VethPair(f"lbf{index}-sw", f"lbf{index}-nf")
        port = balancer.add_port(f"replica{index}", device=pair.a)
        pair.b.attach_handler(make_capture(index))
        pair.b.set_up()
        replica_ports.append(port.port_no)

    ingress.install(FlowEntry(
        match=FlowMatch(in_port=1),
        actions=(Output(link.far_port(ingress).port_no),)))

    src = MacAddress("02:1b:00:00:00:01")
    dst = MacAddress("02:1b:00:00:00:02")
    rng = random.Random(seed)

    def flow_frame(index: int, flags: int):
        return make_tcp_frame(
            src, dst, f"10.{index % 200}.{index // 200}.1", "10.99.0.1",
            2000 + index, 80, b"d" if flags & 0x10 else b"",
            flags=flags)

    def send_batch(indices, flags) -> int:
        batch = [flow_frame(i, flags) for i in indices]
        ingress.process_batch_from(1, batch)
        return len(batch)

    def install_single() -> None:
        balancer.install(FlowEntry(
            match=FlowMatch(in_port=lb_in),
            actions=(Output(replica_ports[0]),)))

    def install_spread() -> None:
        table = balancer.flow_state.table(group)
        table.default_owner = replica_ports[0]
        balancer.install(FlowEntry(
            match=FlowMatch(in_port=lb_in),
            actions=(SelectOutput(tuple(replica_ports), group=group),)))

    engine = ingress.fusion
    phase1 = list(range(phase1_flows))
    phase2 = list(range(phase1_flows, phase1_flows + phase2_flows))

    # Phase A: one replica.  S1 handshakes land on replica 0 only; the
    # chain fuses as a plain program (degenerate spread-of-one).
    install_single()
    send_batch(phase1, 0x02)                             # SYN
    send_batch(phase1, 0x10)                             # first data

    # Phase B: scale-out to three.  The reinstall bumps the LB table
    # version, so the first batch takes the flush-time fallback (and
    # adopts every established S1 flow to the base replica on the
    # per-hop path); every batch after it must run per-replica fused.
    install_spread()
    sequence = phase1[:]
    rng.shuffle(sequence)
    send_batch(sequence, 0x10)                           # fallback batch
    spread_hits_before = engine.hits
    spread_frames = 0
    for _ in range(data_frames - 1):
        sequence = phase1[:]
        rng.shuffle(sequence)
        spread_frames += send_batch(sequence, 0x10)      # S1 keeps talking
    spread_frames += send_batch(phase2, 0x02)            # S2 SYN
    for _ in range(data_frames):
        sequence = phase2[:]
        rng.shuffle(sequence)
        spread_frames += send_batch(sequence, 0x18)      # S2 data
    spread_frames += send_batch(phase2, 0x11)            # S2 FIN/ACK
    spread_fused_hits = engine.hits - spread_hits_before
    select_program = next(iter(ingress.table)).fused
    spread_counts = list(delivered)

    # Phase C: drain back to one replica.  S1 must still land on the
    # base replica, NAT state intact.
    install_single()
    send_batch(phase1, 0x10)

    stats = balancer.flow_state.table(group).stats()
    return {
        "phase1_flows": phase1_flows,
        "phase2_flows": phase2_flows,
        "data_frames": data_frames,
        "seed": seed,
        "select_program_fused":
            isinstance(select_program, FusedSelectChain),
        "spread_frames": spread_frames,
        "spread_fused_hits": spread_fused_hits,
        "dispatch_hits": engine.dispatch_hits,
        "invalidations": engine.invalidations,
        "broken_connections": len(broken),
        "frames_per_replica": list(delivered),
        "spread_frames_per_replica": spread_counts,
        "replicas_used_during_spread":
            sum(1 for count in spread_counts if count),
        "state": stats,
    }


def check_tracing_overhead(chain_length: int = 4, packets: int = 800,
                           repeats: int = 5, sample_every: int = 64,
                           seed: int = 37) -> dict:
    """Measure the cost of an attached-but-unsampled tracer.

    Runs the production chain configuration (fusion + dispatch tables)
    twice per repeat over the same frames — once with no tracer on any
    hop, once with a shared :class:`~repro.telemetry.tracing.Tracer`
    attached — interleaved so thermal/scheduler drift cancels, and
    takes best-of-N for each leg.  The traced leg is sized so the
    1-in-``sample_every`` sampler never fires (asserted), making the
    measured delta exactly the unsampled hot-path cost: one attribute
    read plus a counter compare per batch.

    A second, tiny run with ``sample_every=1`` on a fresh chain proves
    the sampler *does* engage when asked, and freezes a ``perf-probe``
    flight dump so the result dict carries histogram and flight
    artifacts for CI upload on gate failure.
    """
    from repro.telemetry.tracing import Tracer

    rng = random.Random(seed)
    frames = [make_udp_frame(_MAC_A, _MAC_B, "10.0.0.1", "10.0.0.2",
                             4000 + rng.randrange(1000), 5001, b"x")
              for _ in range(packets)]
    hops = _build_chain(chain_length)
    first, last = hops[0], hops[-1]
    sink = last.port_by_name("sink")
    warmup = frames[:16]
    first.process_batch_from(1, warmup)  # fuse the chain before timing

    tracer = Tracer(sample_every=sample_every)
    best_baseline = float("inf")
    best_traced = float("inf")
    wall = 0.0
    pairs_run = 0
    # Adaptive rounds of interleaved pairs: best-of-N per leg
    # converges both legs toward their true minima, and scheduler
    # noise can only *lower* the measured ratio — so keep measuring
    # while the ratio sits under the floor instead of failing on one
    # noisy round (this leg runs in tier-1 on loaded CI boxes).  The
    # inter-round sleep decorrelates retries from whatever busy
    # window poisoned the first samples.
    for _round in range(6):
        if _round:
            time.sleep(0.002)
        for _ in range(repeats):
            # Alternate which leg runs first so monotonic drift
            # (frequency scaling, cache warmth) cancels across pairs.
            legs = [None, tracer] if pairs_run % 2 == 0 \
                else [tracer, None]
            for leg in legs:
                for hop in hops:
                    hop.tracer = leg
                start = time.perf_counter()
                first.process_batch_from(1, frames)
                elapsed = time.perf_counter() - start
                wall += elapsed
                if leg is None:
                    best_baseline = min(best_baseline, elapsed)
                else:
                    best_traced = min(best_traced, elapsed)
            pairs_run += 1
        if best_baseline / best_traced >= TRACING_OVERHEAD_FLOOR:
            break
    for hop in hops:
        hop.tracer = None
    assert sink.tx_packets == len(warmup) + 2 * pairs_run * packets, (
        f"tracing probe: sink saw {sink.tx_packets} frames")
    # The timed traced leg must have been pure-unsampled — otherwise
    # the ratio would be measuring span construction, not the guard.
    assert tracer.sampled_batches == 0, (
        f"tracing probe mis-sized: {tracer.sampled_batches} batches "
        f"were sampled during the timed leg (keep traced batches "
        f"< sample_every={sample_every})")

    # Engagement probe: a 1-in-1 sampler on a fresh chain must record
    # spans and populate the per-LSI histogram, and the freeze gives
    # the bench file a flight dump to ship as a CI artifact.
    sampled_hops = _build_chain(chain_length)
    sampled_tracer = Tracer(sample_every=1)
    for hop in sampled_hops:
        hop.tracer = sampled_tracer
    sampled_hops[0].process_batch_from(1, frames[:32])
    sampler_engaged = (sampled_tracer.sampled_batches > 0
                       and sampled_tracer.flight.recorded > 0)
    sampled_tracer.freeze(
        "perf-probe",
        detail=f"tracing-overhead probe, chain-{chain_length}")

    baseline_pps = packets / best_baseline
    traced_pps = packets / best_traced
    return {
        "chain_length": chain_length,
        "packets": packets,
        "repeats": repeats,
        "pairs_run": pairs_run,
        "sample_every": sample_every,
        "baseline_pps": baseline_pps,
        "traced_pps": traced_pps,
        "ratio": traced_pps / baseline_pps,
        "sampled_batches": tracer.sampled_batches,
        "sampler_engaged": sampler_engaged,
        "histograms": sampled_tracer.histograms.to_dict(),
        "flight": sampled_tracer.flight_document(),
        "wall_s": wall,
    }


def run_dataplane_bench(sizes=None,
                        chain_lengths=None,
                        lookup_packets: "int | None" = None,
                        chain_packets: "int | None" = None,
                        action_packets: "int | None" = None,
                        seed: int = 7,
                        repeats: "int | None" = None,
                        quick: bool = False) -> dict:
    """All three sweeps plus the purity checks, JSON-ready.

    ``quick`` selects the *defaults* for any parameter the caller left
    unset: the full sweep shape (sizes 10/100/1k/5k, chains 1/2/4,
    best-of-3) normally, or the smoke configuration (one mid-size
    table, chain length 2, fewer packets, best-of-2 — a sub-second run
    whose results are only held to the no-regression gates, see
    :func:`check_results`) with ``quick=True``.  Explicitly passed
    parameters always win over either preset.
    """
    if quick:
        preset = ((100,), (2,), 400, 300, 400, 2)
    else:
        preset = ((10, 100, 1000, 5000), (1, 2, 4), 2000, 1000, 2000, 3)
    if sizes is None:
        sizes = preset[0]
    if chain_lengths is None:
        chain_lengths = preset[1]
    if lookup_packets is None:
        lookup_packets = preset[2]
    if chain_packets is None:
        chain_packets = preset[3]
    if action_packets is None:
        action_packets = preset[4]
    if repeats is None:
        repeats = preset[5]
    lookup = sweep_lookup(sizes, packets=lookup_packets, seed=seed,
                          repeats=repeats)
    actions = sweep_actions(packets=action_packets, seed=seed + 2,
                            repeats=repeats)
    chain = sweep_chain(chain_lengths, packets=chain_packets, seed=seed + 4,
                        repeats=repeats)
    # The elastic-scaling smoke leg runs in *virtual* time (sim-engine
    # control loop), so its time-to-scale figures are deterministic in
    # both quick and full modes; lazy import keeps this module light.
    from repro.perf.autoscale import run_autoscale_bench
    autoscale = run_autoscale_bench(quick=quick, seed=seed + 8)
    # Consistent-hash churn + the stateful scale-cycle probe: seeded
    # and timing-free, so the gates are exact in both modes too.
    from repro.perf.churn import run_churn_bench
    churn = run_churn_bench(quick=quick, seed=seed + 10)
    purity_size = 100 if quick else 1000
    purity_table = build_steering_table(purity_size)
    purity_workload = _steering_frames(purity_size, 200, seed)
    parse_cidr_calls = count_fast_path_parse_cidr(
        purity_table, purity_workload)
    excess_parse_frame = max(
        (count_chain_excess_parse_frame(length, seed=seed + 6)
         for length in chain_lengths), default=0)
    fused_excess_parse_frame = max(
        (count_chain_excess_parse_frame(length, seed=seed + 6, fused=True)
         for length in chain_lengths), default=0)
    fusion_invalidation = check_fused_invalidation(seed=seed + 10)
    if quick:
        lb_fusion = check_lb_fusion(phase1_flows=30, phase2_flows=60,
                                    data_frames=2, seed=seed + 12)
        tracing_overhead = check_tracing_overhead(
            packets=800, repeats=3, seed=seed + 14)
    else:
        lb_fusion = check_lb_fusion(phase1_flows=60, phase2_flows=120,
                                    data_frames=3, seed=seed + 12)
        tracing_overhead = check_tracing_overhead(
            packets=1500, repeats=5, seed=seed + 14)
    return {
        "lookup": [asdict(point) for point in lookup],
        "actions": [asdict(point) for point in actions],
        "chain": [asdict(point) for point in chain],
        "autoscale": autoscale,
        "churn": churn,
        "fusion_invalidation": fusion_invalidation,
        "lb_fusion": lb_fusion,
        "tracing_overhead": tracing_overhead,
        "fast_path_parse_cidr_calls": parse_cidr_calls,
        "chain_excess_parse_frame_calls": excess_parse_frame,
        "fused_chain_excess_parse_frame_calls": fused_excess_parse_frame,
        "meta": {
            "lookup_packets": lookup_packets,
            "chain_packets": chain_packets,
            "action_packets": action_packets,
            "small_table_threshold": SMALL_TABLE_THRESHOLD,
            "seed": seed,
            "repeats": repeats,
            "quick": quick,
            "timestamp": time.time(),
        },
    }


def check_results(results: dict) -> None:
    """Assert the standing acceptance criteria on a sweep result dict.

    Single source of truth for the thresholds: the bench file, its
    script entry point and the pytest sweep all call this.  A dict
    produced with ``quick=True`` (``meta.quick``) is held only to the
    no-regression gates — point floors and the two purity counters —
    because the absolute speedup targets need the full best-of-3 sweep
    to be stable.
    """
    quick = bool(results.get("meta", {}).get("quick"))
    if not quick:
        point = next(
            (p for p in results["lookup"] if p["table_size"] == 1000), None)
        assert point is not None, "sweep did not include the 1k-entry point"
        assert point["speedup"] >= SPEEDUP_TARGET_AT_1K, (
            f"indexed lookup only {point['speedup']:.1f}x over linear at 1k "
            f"entries ({point['indexed_pps']:.0f} vs "
            f"{point['linear_pps']:.0f} pps)")
    for point in results["lookup"]:
        if point["table_size"] <= SMALL_TABLE_THRESHOLD:
            assert point["speedup"] >= SMALL_TABLE_FLOOR, (
                f"small-table bypass regressed at {point['table_size']} "
                f"entries: {point['speedup']:.2f}x vs the bare linear scan")
        elif quick:
            # Quick mode skips the absolute 1k target, but the measured
            # lookup leg still gates on indexed-vs-linear parity.
            assert point["speedup"] >= QUICK_LOOKUP_FLOOR, (
                f"indexed lookup regressed below the linear scan at "
                f"{point['table_size']} entries: {point['speedup']:.2f}x")
    chain = results["chain"]
    if chain:
        if not quick:
            longest = max(chain, key=lambda p: p["chain_length"])
            assert longest["speedup"] >= CHAIN_BATCH_TARGET, (
                f"batched+compiled chain only {longest['speedup']:.2f}x "
                f"over per-frame interpretation at length "
                f"{longest['chain_length']} (target {CHAIN_BATCH_TARGET}x)")
            at_four = next(
                (p for p in chain if p["chain_length"] == 4), None)
            if at_four is not None:
                assert at_four["speedup"] >= CHAIN_BATCH_TARGET_AT_4, (
                    f"zero-reparse chain only {at_four['speedup']:.2f}x "
                    f"over per-frame interpretation at length 4 "
                    f"(target {CHAIN_BATCH_TARGET_AT_4}x)")
                fused_at_four = at_four.get("fused_speedup")
                if fused_at_four:
                    assert fused_at_four >= FUSED_CHAIN_TARGET_AT_4, (
                        f"fused chain only {fused_at_four:.2f}x over "
                        f"per-frame interpretation at length 4 "
                        f"(target {FUSED_CHAIN_TARGET_AT_4}x)")
                dispatch_at_four = at_four.get("dispatch_speedup")
                if dispatch_at_four:
                    assert dispatch_at_four >= DISPATCH_CHAIN_TARGET_AT_4, (
                        f"dispatch-fused chain only "
                        f"{dispatch_at_four:.2f}x over per-frame "
                        f"interpretation at length 4 "
                        f"(target {DISPATCH_CHAIN_TARGET_AT_4}x)")
        for point in chain:
            assert point["speedup"] >= CHAIN_POINT_FLOOR, (
                f"batched chain regressed at length "
                f"{point['chain_length']}: {point['speedup']:.2f}x")
            fused_speedup = point.get("fused_speedup")
            if fused_speedup:
                # Fusion-active smoke (quick and full mode): a fused
                # leg that measured anything must have actually fused
                # at every multi-hop length, and must never regress
                # below the per-frame path.
                assert fused_speedup >= CHAIN_POINT_FLOOR, (
                    f"fused chain regressed at length "
                    f"{point['chain_length']}: {fused_speedup:.2f}x")
                if point["chain_length"] >= 2:
                    assert point.get("fused_hits", 0) > 0, (
                        f"fusion never engaged at chain length "
                        f"{point['chain_length']} (0 fused hits)")
            dispatch_speedup = point.get("dispatch_speedup")
            if dispatch_speedup:
                # Dispatch smoke (quick and full mode): the production
                # leg must never regress below the per-frame path, and
                # on every multi-hop point the per-port dispatch table
                # must actually carry frames past the ingress walk.
                assert dispatch_speedup >= CHAIN_POINT_FLOOR, (
                    f"dispatch-fused chain regressed at length "
                    f"{point['chain_length']}: {dispatch_speedup:.2f}x")
                if point["chain_length"] >= 2:
                    assert point.get("dispatch_hits", 0) > 0, (
                        f"per-port dispatch never engaged at chain "
                        f"length {point['chain_length']} "
                        f"(0 dispatch hits)")
    action_speedups = [p["speedup"] for p in results.get("actions", [])]
    if action_speedups:
        mean = sum(action_speedups) / len(action_speedups)
        assert mean >= 1.0, (
            f"compiled actions slower than interpretation on average "
            f"({mean:.2f}x across shapes)")
    autoscale = results.get("autoscale")
    if autoscale is not None:
        # Virtual-clock figures: deterministic, so the gates are exact.
        from repro.perf.autoscale import AUTOSCALE_MAX_TICKS_TO_SCALE
        interval = autoscale["interval_s"]
        assert autoscale["max_replicas_seen"] >= 2, (
            "autoscaler never scaled out under a "
            f"{autoscale['overload_pps']:.0f}-pps overload")
        assert autoscale["final_replicas"] == 1, (
            f"autoscaler did not drain back to 1 replica "
            f"(ended at {autoscale['final_replicas']})")
        t_scale = autoscale["time_to_scale_s"]
        assert t_scale is not None and 0 < t_scale <= (
            AUTOSCALE_MAX_TICKS_TO_SCALE * interval), (
            f"time-to-scale {t_scale} outside "
            f"(0, {AUTOSCALE_MAX_TICKS_TO_SCALE} x {interval}s]")
        assert not autoscale["loop_error"], (
            f"control loop errored: {autoscale['loop_error']}")
    churn = results.get("churn")
    if churn is not None:
        # Consistent-hashing gates (quick and full mode): seeded flow
        # populations, so the figures are exact per seed, not timings.
        from repro.perf.churn import CHURN_EPSILON
        epsilon = churn.get("epsilon", CHURN_EPSILON)
        for step in churn["remap"]["steps"]:
            assert step["fraction"] <= step["bound"] + epsilon, (
                f"replica step {step['from_replicas']} -> "
                f"{step['to_replicas']} remapped "
                f"{100 * step['fraction']:.1f}% of flows (bound "
                f"{100 * step['bound']:.1f}% + {100 * epsilon:.0f}%)")
        cycle = churn["cycle"]
        assert cycle["broken_connections"] == 0, (
            f"{cycle['broken_connections']} connections broke across "
            "the 1 -> 3 -> 1 scale cycle (data frames reached a "
            "replica without their NAT state)")
        assert cycle["replicas_used_during_spread"] == 3, (
            "the stateful spread balanced over only "
            f"{cycle['replicas_used_during_spread']}/3 replicas")
        state = cycle["state"]
        assert state["adopted"] == cycle["phase1_flows"], (
            f"only {state['adopted']}/{cycle['phase1_flows']} "
            "pre-scale-out flows were adopted to the base replica")
        assert state["pinned"] > 0, (
            "the state table never pinned an established flow")
    invalidation = results.get("fusion_invalidation")
    if invalidation is not None:
        # Invalidation-fallback gate (quick and full mode): a flow-mod
        # between batches must never replay a stale fused chain.
        packets = invalidation["packets"]
        assert invalidation["fused_before_flowmod"] == packets, (
            f"fusion delivered only "
            f"{invalidation['fused_before_flowmod']}/{packets} frames "
            "before the flow-mod")
        assert invalidation["stale_frames_delivered"] == 0, (
            f"{invalidation['stale_frames_delivered']} frames ran a "
            "stale fused chain after a flow-mod")
        assert invalidation["fallback_delivered"] == packets, (
            f"fallback delivered only "
            f"{invalidation['fallback_delivered']}/{packets} frames "
            "to the post-flow-mod terminal")
        assert invalidation["invalidations"] >= 1, (
            "the stale fused program was never counted as invalidated")
        assert invalidation["refused_after_retrace"] == packets, (
            "the chain did not re-fuse after the invalidation "
            f"({invalidation['refused_after_retrace']}/{packets} hits)")
    lb_fusion = results.get("lb_fusion")
    if lb_fusion is not None:
        # LB-hop fusion gates (quick and full mode): the spread must
        # run *inside* a fused program, with the churn contract intact.
        assert lb_fusion["select_program_fused"], (
            "the SelectOutput terminal did not lower into a "
            "FusedSelectChain after the scale-out re-trace")
        assert lb_fusion["spread_fused_hits"] == \
            lb_fusion["spread_frames"], (
                f"only {lb_fusion['spread_fused_hits']}/"
                f"{lb_fusion['spread_frames']} spread-phase frames ran "
                "per-replica fused after the re-trace batch")
        assert lb_fusion["dispatch_hits"] > 0, (
            "the per-port dispatch table never engaged on the LB chain")
        assert lb_fusion["invalidations"] >= 2, (
            f"expected one invalidation per replica-set reinstall, saw "
            f"{lb_fusion['invalidations']}")
        assert lb_fusion["broken_connections"] == 0, (
            f"{lb_fusion['broken_connections']} connections broke "
            "across the fused 1 -> 3 -> 1 scale cycle")
        assert lb_fusion["replicas_used_during_spread"] == 3, (
            "the fused stateful spread balanced over only "
            f"{lb_fusion['replicas_used_during_spread']}/3 replicas")
        lb_state = lb_fusion["state"]
        assert lb_state["adopted"] == lb_fusion["phase1_flows"], (
            f"only {lb_state['adopted']}/{lb_fusion['phase1_flows']} "
            "pre-scale-out flows were adopted to the base replica")
        assert lb_state["pinned"] > 0, (
            "the fused spread never pinned an established flow")
    tracing = results.get("tracing_overhead")
    if tracing is not None:
        # Tracing-overhead gate (quick and full mode): an attached but
        # unsampled tracer may cost at most 3% of dispatch-fused
        # throughput, and the probe itself must be well-formed — the
        # timed leg pure-unsampled, the 1-in-1 leg actually sampling.
        assert tracing["sampled_batches"] == 0, (
            f"tracing probe sampled {tracing['sampled_batches']} "
            "batches during the timed leg (measurement invalid)")
        assert tracing["sampler_engaged"], (
            "the 1-in-1 tracing sampler never engaged on the "
            "engagement probe (no batches sampled or no spans "
            "recorded)")
        assert tracing["ratio"] >= TRACING_OVERHEAD_FLOOR, (
            f"unsampled tracing overhead too high: traced chain-"
            f"{tracing['chain_length']} ran at "
            f"{100 * tracing['ratio']:.1f}% of the tracer-detached "
            f"baseline ({tracing['traced_pps']:.0f} vs "
            f"{tracing['baseline_pps']:.0f} pps, floor "
            f"{100 * TRACING_OVERHEAD_FLOOR:.0f}%)")
    assert results["fast_path_parse_cidr_calls"] == 0, (
        "fast path called parse_cidr "
        f"{results['fast_path_parse_cidr_calls']} times")
    excess = results.get("chain_excess_parse_frame_calls", 0)
    assert excess == 0, (
        f"untouched frames were re-parsed {excess} times beyond the "
        "one ingress parse (zero-reparse carry is broken)")
    fused_excess = results.get("fused_chain_excess_parse_frame_calls", 0)
    assert fused_excess <= 0, (
        f"fused path re-parsed frames {fused_excess} times beyond the "
        "one ingress parse (dispatch-hit frames must stay raw)")


def write_bench_json(results: dict, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")


def format_results(results: dict) -> str:
    """Human-readable sweep tables for bench output."""
    lines = [f"{'table':>6} {'linear pps':>12} {'indexed pps':>13} "
             f"{'speedup':>9}"]
    for point in results["lookup"]:
        lines.append(f"{point['table_size']:>6} {point['linear_pps']:>12.0f} "
                     f"{point['indexed_pps']:>13.0f} "
                     f"{point['speedup']:>8.1f}x")
    if results.get("actions"):
        lines.append("")
        lines.append(f"{'shape':>22} {'interp pps':>12} "
                     f"{'compiled pps':>13} {'speedup':>9}")
        for point in results["actions"]:
            lines.append(f"{point['shape']:>22} "
                         f"{point['interpreted_pps']:>12.0f} "
                         f"{point['compiled_pps']:>13.0f} "
                         f"{point['speedup']:>8.2f}x")
    lines.append("")
    lines.append(f"{'chain':>6} {'single pps':>12} {'batched pps':>13} "
                 f"{'speedup':>9} {'fused pps':>12} {'fused':>8} "
                 f"{'dispatch pps':>13} {'dispatch':>9}")
    for point in results["chain"]:
        fused_pps = point.get("fused_pps", 0.0)
        fused_speedup = point.get("fused_speedup", 0.0)
        dispatch_pps = point.get("dispatch_pps", 0.0)
        dispatch_speedup = point.get("dispatch_speedup", 0.0)
        lines.append(f"{point['chain_length']:>6} "
                     f"{point['single_pps']:>12.0f} "
                     f"{point['batched_pps']:>13.0f} "
                     f"{point['speedup']:>8.2f}x "
                     f"{fused_pps:>12.0f} "
                     f"{fused_speedup:>7.2f}x "
                     f"{dispatch_pps:>13.0f} "
                     f"{dispatch_speedup:>8.2f}x")
    autoscale = results.get("autoscale")
    if autoscale:
        lines.append("")
        t_scale = autoscale.get("time_to_scale_s")
        t_drain = autoscale.get("time_to_drain_s")
        lines.append(
            "autoscale (virtual time): "
            f"scale-out in {t_scale if t_scale is not None else '?'}s, "
            f"drain in {t_drain if t_drain is not None else '?'}s, "
            f"peak {autoscale.get('max_replicas_seen')} replicas, "
            f"final {autoscale.get('final_replicas')}")
    churn = results.get("churn")
    if churn:
        lines.append("")
        lines.append(f"{'replicas':>10} {'moved':>8} {'fraction':>9} "
                     f"{'bound':>7}")
        for step in churn["remap"]["steps"]:
            lines.append(
                f"{step['from_replicas']:>4} -> {step['to_replicas']:>3} "
                f"{step['moved']:>8} {100 * step['fraction']:>8.1f}% "
                f"{100 * step['bound']:>6.1f}%")
        cycle = churn["cycle"]
        state = cycle["state"]
        lines.append(
            "scale cycle 1->3->1: "
            f"{cycle['broken_connections']} broken connections, "
            f"{state['adopted']} adopted, {state['pinned']} pinned, "
            f"spread {cycle['spread_frames_per_replica']}")
    invalidation = results.get("fusion_invalidation")
    if invalidation:
        lines.append("")
        lines.append(
            "fusion invalidation: "
            f"{invalidation.get('fused_before_flowmod')} fused before "
            f"flow-mod, {invalidation.get('stale_frames_delivered')} "
            f"stale, {invalidation.get('fallback_delivered')} fell "
            f"back, {invalidation.get('refused_after_retrace')} "
            "re-fused after")
    lb_fusion = results.get("lb_fusion")
    if lb_fusion:
        state = lb_fusion["state"]
        lines.append(
            "lb fusion 1->3->1: "
            f"{lb_fusion['spread_fused_hits']}/"
            f"{lb_fusion['spread_frames']} spread frames fused, "
            f"{lb_fusion['broken_connections']} broken connections, "
            f"{state['adopted']} adopted, {state['pinned']} pinned, "
            f"spread {lb_fusion['spread_frames_per_replica']}")
    tracing = results.get("tracing_overhead")
    if tracing:
        lines.append("")
        lines.append(
            f"tracing overhead (chain {tracing['chain_length']}, "
            f"1/{tracing['sample_every']} sampling, unsampled leg): "
            f"{tracing['traced_pps']:.0f} vs "
            f"{tracing['baseline_pps']:.0f} pps baseline "
            f"({100 * tracing['ratio']:.1f}%)")
    lines.append("")
    lines.append("fast-path parse_cidr calls: "
                 f"{results['fast_path_parse_cidr_calls']}")
    lines.append("chain excess parse_frame calls: "
                 f"{results.get('chain_excess_parse_frame_calls', 0)}")
    lines.append("fused-chain excess parse_frame calls: "
                 f"{results.get('fused_chain_excess_parse_frame_calls', 0)}")
    return "\n".join(lines)
