"""Traffic capture: tcpdump for the simulated node.

Attaches to datapath taps (every frame a switch processes) or to a
wire, timestamps against a wall-clock-free monotonic counter, and
writes standard pcap files that open in Wireshark — the traditional way
to debug an NFV dataplane, and the repro's observability story.
"""

from __future__ import annotations

import itertools
from typing import BinaryIO, Optional

from repro.linuxnet.devices import NetDevice
from repro.net.ethernet import EthernetFrame
from repro.net.pcap import PcapWriter
from repro.switch.datapath import Datapath

__all__ = ["PcapCapture"]


class PcapCapture:
    """Collects frames from datapaths/wires; dumps them as pcap."""

    def __init__(self) -> None:
        self._frames: list[tuple[float, bytes]] = []
        self._sequence = itertools.count()
        self._taps: list[tuple[Datapath, object]] = []
        self._wires: list[NetDevice] = []

    # -- sources -----------------------------------------------------------------
    def attach_datapath(self, datapath: Datapath) -> None:
        """Record every frame entering ``datapath``."""
        def tap(in_port: int, frame: EthernetFrame) -> None:
            self._record(frame)

        datapath.taps.append(tap)
        self._taps.append((datapath, tap))

    def attach_wire(self, device: NetDevice) -> None:
        """Record frames arriving at a wire-side device (keeps
        delivering to any pre-existing consumer is NOT supported — the
        wire must be free, mirroring a dedicated monitor port)."""
        device.attach_handler(lambda dev, frame: self._record(frame))
        self._wires.append(device)

    def detach_all(self) -> None:
        for datapath, tap in self._taps:
            if tap in datapath.taps:
                datapath.taps.remove(tap)
        self._taps.clear()
        for device in self._wires:
            device.detach_handler()
        self._wires.clear()

    # -- recording -----------------------------------------------------------------
    def _record(self, frame: EthernetFrame) -> None:
        # Synchronous dataplane: order is the only truth; synthesise
        # microsecond-spaced timestamps so Wireshark sorts stably.
        timestamp = next(self._sequence) * 1e-6
        self._frames.append((timestamp, frame.to_bytes()))

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def frames(self) -> list[tuple[float, bytes]]:
        return list(self._frames)

    # -- output --------------------------------------------------------------------
    def write(self, stream: BinaryIO) -> int:
        """Write all captured frames as pcap; returns the count."""
        writer = PcapWriter(stream)
        for timestamp, raw in self._frames:
            writer.write(timestamp, raw)
        return len(self._frames)

    def save(self, path: str) -> int:
        with open(path, "wb") as stream:
            return self.write(stream)
