"""iPerf-like measurement: saturating flow through a deployed node.

``run_iperf`` combines the two halves of the reproduction:

1. **functional**: a probe frame is pushed through the *real* deployed
   dataplane (wire -> LSI-0 -> graph LSI -> NF namespace -> wire) and
   must come out the far side, transformed as the NF dictates — this
   guards against measuring a black hole;
2. **timing**: the DES pipeline replays the chain's calibrated
   per-packet costs under a closed-loop load and meters goodput, which
   is what iPerf would have reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.node import ComputeNode
from repro.linuxnet.devices import NetDevice
from repro.net import MacAddress, make_udp_frame
from repro.perf.costmodel import CostModel, NfWorkload, PacketCostBreakdown
from repro.perf.pipeline import Stage, measure_throughput

__all__ = ["IperfResult", "functional_probe", "run_iperf"]

_SRC_MAC = MacAddress("02:be:ef:00:00:01")
_DST_MAC = MacAddress("02:be:ef:00:00:02")


@dataclass
class IperfResult:
    throughput_mbps: float
    packets: int
    mean_latency_us: float
    probe_delivered: bool
    breakdown: dict[str, float]


def functional_probe(node: ComputeNode, in_wire: str, out_wire: str,
                     src_ip: str, dst_ip: str,
                     payload: bytes = b"probe") -> bool:
    """Push one frame in; True iff something exits the far wire."""
    received: list = []
    out = node.wire(out_wire)
    out.attach_handler(lambda dev, frame: received.append(frame))
    try:
        node.wire(in_wire).transmit(make_udp_frame(
            _SRC_MAC, _DST_MAC, src_ip, dst_ip, 43210, 5001, payload))
    finally:
        out.detach_handler()
    return len(received) > 0


def run_iperf(chain_cost: PacketCostBreakdown,
              frame_bytes: int = 1500,
              duration: float = 0.2,
              warmup: float = 0.02,
              cores: int = 1,
              node: Optional[ComputeNode] = None,
              probe: Optional[dict] = None) -> IperfResult:
    """Measure one chain; optionally verify the live dataplane first.

    ``probe`` (when given with ``node``) carries the kwargs of
    :func:`functional_probe` minus the node.
    """
    delivered = True
    if node is not None and probe is not None:
        delivered = functional_probe(node, **probe)
    # Keep the warmup a fraction of short measurement windows.
    warmup = min(warmup, duration / 4)
    result = measure_throughput(
        [Stage("chain", chain_cost.total)], frame_bytes=frame_bytes,
        duration=duration, warmup=warmup, cores=cores)
    return IperfResult(
        throughput_mbps=result.throughput_mbps,
        packets=result.packets,
        mean_latency_us=result.mean_latency_seconds * 1e6,
        probe_delivered=delivered,
        breakdown=dict(chain_cost.components))
