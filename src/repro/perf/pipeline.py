"""Discrete-event packet pipeline.

The measured system is CPU-bound (one CPE core runs switch + kernel +
NF in softirq context), so the pipeline is a queueing model: packets
claim the CPU for their chain's total service time.  A closed-loop
source (fixed number of in-flight packets, like a TCP window) keeps the
server saturated, and the sink meters goodput over the measurement
window — the same methodology as running iPerf through the NF.

Multiple concurrent flows (e.g. several service graphs on one node)
are modelled as several sources sharing the same CPU resource, which
gives the expected contention behaviour in the scaling benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim import RateMeter, Resource, Simulator
from repro.sim.stats import WelfordStat

__all__ = ["FlowResult", "PacketPipeline", "Stage", "measure_throughput"]


@dataclass(frozen=True)
class Stage:
    """One element of the chain with its per-packet service time."""

    name: str
    service_seconds: float

    def __post_init__(self) -> None:
        if self.service_seconds < 0:
            raise ValueError(f"stage {self.name}: negative service time")


@dataclass
class FlowResult:
    """Measured output of one flow."""

    name: str
    throughput_mbps: float
    packets: int
    mean_latency_seconds: float


class PacketPipeline:
    """N closed-loop flows over one CPU pool."""

    def __init__(self, sim: Simulator, cores: int = 1) -> None:
        self.sim = sim
        self.cpu = Resource(sim, capacity=cores)
        self._flows: list[dict] = []

    def add_flow(self, name: str, stages: list[Stage],
                 frame_bytes: int = 1500, window: int = 8,
                 weight: float = 1.0) -> None:
        """Register one traffic flow crossing ``stages``.

        ``window`` bounds in-flight packets (closed loop); ``weight``
        scales the flow's share of offered load by replicating its
        windows.
        """
        if not stages:
            raise ValueError("flow needs at least one stage")
        if frame_bytes <= 0 or window <= 0:
            raise ValueError("frame size and window must be positive")
        self._flows.append({
            "name": name,
            "stages": list(stages),
            "frame_bytes": frame_bytes,
            "window": max(1, int(window * weight)),
        })

    def run(self, duration: float = 0.2,
            warmup: float = 0.02) -> list[FlowResult]:
        """Run the model; meters only count after ``warmup``."""
        if duration <= warmup:
            raise ValueError("duration must exceed warmup")
        results: list[tuple[dict, RateMeter, WelfordStat]] = []
        for flow in self._flows:
            meter = RateMeter(self.sim, name=flow["name"])
            latency = WelfordStat()
            results.append((flow, meter, latency))
            service = sum(stage.service_seconds
                          for stage in flow["stages"])
            self.sim.process(self._arm_meter(meter, warmup),
                             name=f"arm-{flow['name']}")
            for _ in range(flow["window"]):
                self.sim.process(self._packet_loop(
                    flow, service, meter, latency, warmup),
                    name=f"flow-{flow['name']}")
        self.sim.run(until=duration)
        rows = []
        for flow, meter, latency in results:
            rows.append(FlowResult(
                name=flow["name"],
                throughput_mbps=meter.rate_bps / 1e6,
                packets=meter.packets_total,
                mean_latency_seconds=latency.mean))
        return rows

    def _arm_meter(self, meter: RateMeter, warmup: float):
        """Zero the meter exactly once, at the end of the warmup."""
        yield self.sim.timeout(warmup)
        meter.reset()

    def _packet_loop(self, flow: dict, service: float, meter: RateMeter,
                     latency: WelfordStat, warmup: float):
        """One window slot: send a packet, wait, send the next."""
        sim = self.sim
        while True:
            entered = sim.now
            request = self.cpu.request()
            yield request
            yield sim.timeout(service)
            self.cpu.release(request)
            if sim.now >= warmup:
                meter.record(flow["frame_bytes"])
                latency.add(sim.now - entered)


def measure_throughput(stages: list[Stage], frame_bytes: int = 1500,
                       duration: float = 0.2, warmup: float = 0.02,
                       cores: int = 1, window: int = 8) -> FlowResult:
    """Single-flow convenience wrapper."""
    sim = Simulator()
    pipeline = PacketPipeline(sim, cores=cores)
    pipeline.add_flow("flow0", stages, frame_bytes=frame_bytes,
                      window=window)
    (result,) = pipeline.run(duration=duration, warmup=warmup)
    return result
