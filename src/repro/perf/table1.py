"""The Table 1 experiment: strongSwan as VM vs Docker vs Native NF.

For each flavor the driver deploys the paper's use case on a fresh CPE
node (an IPsec endpoint between the LAN and WAN), probes the live
dataplane with a real frame (the ESP tunnel must actually encrypt), and
then measures iPerf-style throughput from the calibrated cost model.
RAM comes from the memory decomposition, image size from the image
registry composition — nothing in this module hard-codes a Table 1
cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.templates import Technology
from repro.core.node import ComputeNode
from repro.nffg.model import Nffg
from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.iperf import run_iperf
from repro.perf.memory import MemoryModel
from repro.resources.images import ImageRegistry

__all__ = ["PAPER_TABLE1", "Table1Row", "ipsec_cpe_graph", "render_table",
           "run_table1"]

#: The paper's reported numbers, for side-by-side printing.
PAPER_TABLE1 = {
    "vm": {"throughput_mbps": 796.0, "ram_mb": 390.6, "image_mb": 522.0},
    "docker": {"throughput_mbps": 1095.0, "ram_mb": 24.2,
               "image_mb": 240.0},
    "native": {"throughput_mbps": 1094.0, "ram_mb": 19.4, "image_mb": 5.0},
}

#: strongSwan charon+starter resident set (MB) — the per-NF input of
#: the memory decomposition, equal to the paper's native RAM figure.
STRONGSWAN_RSS_MB = 19.4

_FLAVORS = (Technology.VM, Technology.DOCKER, Technology.NATIVE)

_IMAGES = {Technology.VM: "strongswan-vm",
           Technology.DOCKER: "strongswan-docker",
           Technology.NATIVE: "strongswan-native"}


@dataclass
class Table1Row:
    flavor: str
    throughput_mbps: float
    ram_mb: float
    image_mb: float
    probe_delivered: bool
    esp_on_wire: bool
    breakdown: dict[str, float]


def ipsec_cpe_graph(graph_id: str, technology: str) -> Nffg:
    """The paper's use case: a customer activates an IPsec endpoint VNF
    on his domestic CPE (ESP, tunnel mode)."""
    graph = Nffg(graph_id=graph_id, name="IPsec endpoint on CPE")
    graph.add_nf("vpn", "ipsec-endpoint", technology=technology, config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1",
        "ipsec.local": "203.0.113.2",
        "ipsec.peer": "198.51.100.9",
        "ipsec.local_subnet": "192.168.1.0/24",
        "ipsec.remote_subnet": "10.8.0.0/24",
        "ipsec.psk": "table1-psk",
    })
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:vpn:lan")
    graph.add_flow_rule("r2", "vnf:vpn:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:vpn:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:vpn:wan",
                        ip_dst="203.0.113.2/32")
    return graph


def _probe_esp(node: ComputeNode) -> tuple[bool, bool]:
    """Send a LAN frame; check it leaves the WAN as ESP ciphertext."""
    from repro.net import MacAddress, make_udp_frame, parse_frame
    captured = []
    wire = node.wire("wan0")
    wire.attach_handler(lambda dev, frame: captured.append(frame))
    try:
        node.wire("lan0").transmit(make_udp_frame(
            MacAddress("02:be:ef:00:00:01"),
            MacAddress("02:be:ef:00:00:02"),
            "192.168.1.50", "10.8.0.7", 40000, 5001,
            b"table1 secret payload"))
    finally:
        wire.detach_handler()
    if not captured:
        return False, False
    parsed = parse_frame(captured[0])
    esp = (parsed.ipv4 is not None and parsed.ipv4.proto == 50
           and b"table1 secret payload" not in parsed.ipv4.payload)
    return True, esp


def run_table1(frame_bytes: int = 1500, duration: float = 0.2,
               cost_model: "CostModel | None" = None) -> list[Table1Row]:
    """Run the full experiment; one row per flavor."""
    model = cost_model if cost_model is not None else CostModel()
    memory = MemoryModel()
    images = ImageRegistry.stock()
    workload = NfWorkload.ipsec_esp()
    rows = []
    for technology in _FLAVORS:
        node = ComputeNode(f"cpe-{technology.value}")
        node.add_physical_interface("lan0")
        node.add_physical_interface("wan0")
        node.deploy(ipsec_cpe_graph(f"t1-{technology.value}",
                                    technology.value))
        delivered, esp = _probe_esp(node)
        impl = node.repository.get("ipsec-endpoint").implementation_for(
            technology)
        nf_cost = model.nf_seconds(
            technology, workload, frame_bytes,
            uses_kernel_datapath=impl.uses_kernel_datapath)
        chain = model.chain_seconds([nf_cost], lsi_crossings=1)
        measured = run_iperf(chain, frame_bytes=frame_bytes,
                             duration=duration)
        rows.append(Table1Row(
            flavor=technology.value,
            throughput_mbps=measured.throughput_mbps,
            ram_mb=memory.runtime_mb(technology, STRONGSWAN_RSS_MB),
            image_mb=images.get(_IMAGES[technology]).size_mb,
            probe_delivered=delivered,
            esp_on_wire=esp,
            breakdown=measured.breakdown))
    return rows


def render_table(rows: list[Table1Row]) -> str:
    """Paper-style table with paper numbers alongside."""
    header = (f"{'Platform':<12} {'Through.':>12} {'(paper)':>9} "
              f"{'RAM':>10} {'(paper)':>9} {'Image':>10} {'(paper)':>9}")
    names = {"vm": "KVM/QEMU", "docker": "Docker", "native": "Native NF"}
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = PAPER_TABLE1[row.flavor]
        lines.append(
            f"{names[row.flavor]:<12} "
            f"{row.throughput_mbps:>8.0f}Mbps {paper['throughput_mbps']:>8.0f} "
            f"{row.ram_mb:>8.1f}MB {paper['ram_mb']:>8.1f} "
            f"{row.image_mb:>8.0f}MB {paper['image_mb']:>8.0f}")
    return "\n".join(lines)
