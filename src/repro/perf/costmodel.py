"""Per-packet cost model, calibrated against the paper's Table 1.

Targets (1500-byte frames, one CPE core):

=========  ==================  ==========================
flavor     paper throughput    implied per-packet budget
=========  ==================  ==========================
KVM/QEMU   796 Mbps            1500·8 / 796e6  = 15.08 µs
Docker     1095 Mbps           1500·8 / 1095e6 = 10.96 µs
Native     1094 Mbps           1500·8 / 1094e6 = 10.97 µs
=========  ==================  ==========================

Decomposition (values chosen from public micro-benchmarks of the era,
then nudged within their plausible ranges so the totals land on the
budgets above; each constant documents its source range):

* switch path (LSI-0 lookup + virtual link + graph-LSI lookup):
  software OpenFlow switches forwarded 1-3 Mpps/core in 2016, so
  0.3-1 µs/packet; we use 1.0 µs total for the three hops.
* kernel stack traversal (netfilter hooks, routing, XFRM lookup):
  1.8 µs — classic ~1-2 µs figure for a forwarding path with conntrack.
* kernel AES-SHA ESP: ~5.4 ns/B (AESNI + SHA-NI at CPE clocks: the
  paper's 1.1 Gbps ceiling implies exactly this order).
* VM exits: ~1 µs each (kvm-unit-tests vmexit latencies: 0.7-1.5 µs);
  two per packet (in + out) on the virtio path without fancy offloads.
* guest/host copies: 0.3 ns/B each way (memcpy at ~3 GB/s effective).
* user-space crypto in the VM ("executing in user space ... within the
  hypervisor"): 6.3 ns/B — slower than the kernel path because the
  paper's guest lacked AES-NI passthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.templates import Technology

__all__ = ["CostModel", "NfWorkload", "PacketCostBreakdown"]


@dataclass(frozen=True)
class NfWorkload:
    """Per-packet work an NF performs, split fixed + per-byte.

    ``kernel_bytes_coeff`` applies when the flavor processes packets in
    (host or guest) kernel space; ``user_bytes_coeff`` when in user
    space (the VM flavor's strongSwan, DPI engines, ...).
    """

    name: str
    fixed_seconds: float = 0.0
    kernel_bytes_coeff: float = 0.0
    user_bytes_coeff: float = 0.0

    @staticmethod
    def ipsec_esp() -> "NfWorkload":
        return NfWorkload(name="ipsec-esp", fixed_seconds=0.2e-6,
                          kernel_bytes_coeff=5.316e-9,
                          user_bytes_coeff=6.12e-9)

    @staticmethod
    def nat() -> "NfWorkload":
        # conntrack lookup + header rewrite: flat per-packet cost
        return NfWorkload(name="nat", fixed_seconds=0.55e-6,
                          kernel_bytes_coeff=0.0,
                          user_bytes_coeff=0.12e-9)

    @staticmethod
    def firewall(rules: int = 10) -> "NfWorkload":
        # linear rule scan at ~25 ns/rule plus fixed hook cost
        return NfWorkload(name="firewall",
                          fixed_seconds=0.25e-6 + 25e-9 * rules)

    @staticmethod
    def bridge() -> "NfWorkload":
        return NfWorkload(name="bridge", fixed_seconds=0.18e-6)

    @staticmethod
    def dpi() -> "NfWorkload":
        return NfWorkload(name="dpi", fixed_seconds=0.8e-6,
                          user_bytes_coeff=18e-9,
                          kernel_bytes_coeff=18e-9)


@dataclass
class PacketCostBreakdown:
    """Named components of one packet's service time (seconds)."""

    components: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.components.values())


@dataclass
class CostModel:
    """Calibrated constants + composition rules."""

    # switch path, per traversal of LSI-0 -> vlink -> graph LSI
    switch_path_seconds: float = 1.0e-6
    # extra flow-table lookup when a rule chain adds another LSI hop
    extra_lookup_seconds: float = 0.35e-6
    # kernel stack traversal inside an NF namespace
    kernel_stack_seconds: float = 1.8e-6
    # one veth/bridge hop (Docker's extra indirection)
    veth_hop_seconds: float = 0.02e-6
    # one VLAN tag push or pop (adaptation-layer marking): a handful of
    # memmove'd bytes, ~20 ns on CPE-class cores
    vlan_op_seconds: float = 0.02e-6
    # one iptables mark/classify rule evaluation (~25 ns/rule linear
    # scan in the mangle table; the sharability tax grows with graphs)
    mark_rule_seconds: float = 0.025e-6
    # one vm-exit on the virtio path
    vmexit_seconds: float = 1.0e-6
    vmexits_per_packet: int = 2
    # guest<->host copy, per byte per direction
    copy_bytes_coeff: float = 0.30e-9
    # DPDK poll-mode forwarder: no kernel, tiny per-packet budget
    dpdk_packet_seconds: float = 0.25e-6

    def nf_seconds(self, technology: Technology, workload: NfWorkload,
                   frame_bytes: int,
                   uses_kernel_datapath: bool = True,
                   marking_rules: int = 0,
                   tagged_port: bool = False) -> PacketCostBreakdown:
        """Service time for one packet crossing one NF.

        ``marking_rules`` counts the extra mangle-table rules evaluated
        in a *shared* NNF (one mark rule per attached graph is scanned
        until the packet's own rule hits — we charge the average);
        ``tagged_port`` adds the push+pop pair the adaptation layer
        costs on the trunk port.
        """
        cost = PacketCostBreakdown()
        if technology is Technology.DPDK:
            cost.add("dpdk-poll", self.dpdk_packet_seconds)
            cost.add("nf-fixed", workload.fixed_seconds)
            cost.add("nf-bytes", workload.user_bytes_coeff * frame_bytes)
            return cost
        cost.add("kernel-stack", self.kernel_stack_seconds)
        if technology is Technology.DOCKER:
            cost.add("veth-hop", self.veth_hop_seconds)
        if technology is Technology.VM:
            cost.add("vm-exits",
                     self.vmexit_seconds * self.vmexits_per_packet)
            cost.add("guest-copies",
                     2 * self.copy_bytes_coeff * frame_bytes)
        cost.add("nf-fixed", workload.fixed_seconds)
        in_kernel = uses_kernel_datapath and technology is not Technology.VM
        coeff = (workload.kernel_bytes_coeff if in_kernel
                 else workload.user_bytes_coeff)
        cost.add("nf-bytes", coeff * frame_bytes)
        if marking_rules:
            cost.add("marking", self.mark_rule_seconds * marking_rules)
        if tagged_port:
            cost.add("vlan-ops", 2 * self.vlan_op_seconds)
        return cost

    def chain_seconds(self, hops: list[PacketCostBreakdown],
                      lsi_crossings: int = 1) -> PacketCostBreakdown:
        """Total service time for a chain: switch path + NF hops."""
        cost = PacketCostBreakdown()
        cost.add("switch-path", self.switch_path_seconds * lsi_crossings)
        if len(hops) > 1:
            cost.add("extra-lookups",
                     self.extra_lookup_seconds * (len(hops) - 1))
        for hop in hops:
            for name, seconds in hop.components.items():
                cost.add(name, seconds)
        return cost

    @staticmethod
    def throughput_mbps(per_packet_seconds: float,
                        frame_bytes: int) -> float:
        """Closed-form throughput of one saturated core."""
        if per_packet_seconds <= 0:
            raise ValueError("per-packet time must be positive")
        return frame_bytes * 8.0 / per_packet_seconds / 1e6
