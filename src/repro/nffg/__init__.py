"""Network Functions Forwarding Graph (NF-FG) model.

The NF-FG is the deployment request the local orchestrator receives:
a set of NFs (by template name), a set of endpoints (node interfaces,
optionally VLAN-qualified) and "big-switch" flow rules steering traffic
between NF ports and endpoints.  The JSON schema mirrors the
un-orchestrator's, trimmed to the fields this reproduction uses.
"""

from repro.nffg.model import Endpoint, FlowRule, NfInstanceSpec, Nffg, PortRef
from repro.nffg.json_codec import nffg_from_dict, nffg_from_json, nffg_to_dict, nffg_to_json
from repro.nffg.validate import NffgValidationError, validate_nffg
from repro.nffg.diff import GraphDiff, diff_nffg
from repro.nffg.replicas import expand_replicas, replica_base

__all__ = [
    "Endpoint",
    "FlowRule",
    "GraphDiff",
    "Nffg",
    "NffgValidationError",
    "NfInstanceSpec",
    "PortRef",
    "diff_nffg",
    "expand_replicas",
    "replica_base",
    "nffg_from_dict",
    "nffg_from_json",
    "nffg_to_dict",
    "nffg_to_json",
    "validate_nffg",
]
