"""Graph diffing for in-place updates.

The NNF plugins expose an *update* lifecycle step (paper §2: "create,
update, etc."); the orchestrator realises a graph update by computing
this edit script and applying it without tearing the graph down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nffg.model import FlowRule, Nffg, NfInstanceSpec

__all__ = ["GraphDiff", "diff_nffg"]


@dataclass
class GraphDiff:
    """Edit script turning ``old`` into ``new``."""

    added_nfs: list[NfInstanceSpec] = field(default_factory=list)
    removed_nfs: list[NfInstanceSpec] = field(default_factory=list)
    reconfigured_nfs: list[NfInstanceSpec] = field(default_factory=list)
    added_rules: list[FlowRule] = field(default_factory=list)
    removed_rules: list[FlowRule] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.added_nfs or self.removed_nfs
                    or self.reconfigured_nfs or self.added_rules
                    or self.removed_rules)

    def summary(self) -> str:
        return (f"+{len(self.added_nfs)}/-{len(self.removed_nfs)} NFs, "
                f"~{len(self.reconfigured_nfs)} reconfigured, "
                f"+{len(self.added_rules)}/-{len(self.removed_rules)} rules")


def diff_nffg(old: Nffg, new: Nffg) -> GraphDiff:
    """Compute the edit script between two versions of the same graph."""
    if old.graph_id != new.graph_id:
        raise ValueError(
            f"diff across different graphs: {old.graph_id!r} vs "
            f"{new.graph_id!r}")
    diff = GraphDiff()
    old_nfs = {spec.nf_id: spec for spec in old.nfs}
    new_nfs = {spec.nf_id: spec for spec in new.nfs}
    for nf_id, spec in new_nfs.items():
        if nf_id not in old_nfs:
            diff.added_nfs.append(spec)
        elif spec != old_nfs[nf_id]:
            if (spec.template != old_nfs[nf_id].template
                    or spec.technology != old_nfs[nf_id].technology):
                # Template/technology change = replace, not reconfigure.
                diff.removed_nfs.append(old_nfs[nf_id])
                diff.added_nfs.append(spec)
            else:
                diff.reconfigured_nfs.append(spec)
    for nf_id, spec in old_nfs.items():
        if nf_id not in new_nfs:
            diff.removed_nfs.append(spec)

    old_rules = {rule.rule_id: rule for rule in old.flow_rules}
    new_rules = {rule.rule_id: rule for rule in new.flow_rules}
    for rule_id, rule in new_rules.items():
        if rule_id not in old_rules:
            diff.added_rules.append(rule)
        elif rule != old_rules[rule_id]:
            diff.removed_rules.append(old_rules[rule_id])
            diff.added_rules.append(rule)
    for rule_id, rule in old_rules.items():
        if rule_id not in new_rules:
            diff.removed_rules.append(rule)
    return diff
