"""NF-FG data model."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

__all__ = ["Endpoint", "FlowRule", "MAX_REPLICAS", "NfInstanceSpec",
           "Nffg", "PortRef", "ScalingPolicy"]

#: Per-NF replica ceiling: a hash spread wider than this on one node
#: says "shard the graph", not "add another replica".  (Re-exported by
#: :mod:`repro.nffg.validate` for historical imports.)
MAX_REPLICAS = 64


@dataclass(frozen=True)
class PortRef:
    """Reference to a traffic attachment point inside a graph.

    ``kind`` is ``"vnf"`` (then ``element`` is the NF id and ``port``
    the logical port name) or ``"endpoint"`` (then ``element`` is the
    endpoint id and ``port`` is empty).
    """

    kind: str
    element: str
    port: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("vnf", "endpoint"):
            raise ValueError(f"bad port-ref kind {self.kind!r}")
        if not self.element:
            raise ValueError("port ref needs a non-empty element id")
        if self.kind == "vnf" and not self.port:
            raise ValueError("vnf port refs need a port name")

    @classmethod
    def parse(cls, text: str) -> "PortRef":
        """Parse ``vnf:fw1:lan`` / ``endpoint:wan`` forms."""
        parts = text.split(":")
        if parts[0] == "vnf" and len(parts) == 3:
            return cls(kind="vnf", element=parts[1], port=parts[2])
        if parts[0] == "endpoint" and len(parts) == 2:
            return cls(kind="endpoint", element=parts[1])
        raise ValueError(f"malformed port ref {text!r}")

    def __str__(self) -> str:
        if self.kind == "vnf":
            return f"vnf:{self.element}:{self.port}"
        return f"endpoint:{self.element}"


@dataclass(frozen=True)
class NfInstanceSpec:
    """One NF requested by the graph.

    ``template`` names an :class:`~repro.catalog.templates.NfTemplate`
    in the repository.  ``technology`` optionally pins the packaging
    ("vm", "docker", "dpdk", "native"); ``None`` delegates the VNF/NNF
    choice to the orchestrator — the paper's default.  ``config`` is the
    NF-specific configuration handed to the driver (and translated by
    the NNF config layer for native components).

    ``replicas`` asks for a horizontally scaled NF: ``N > 1`` makes the
    reconciler realize N identical instances and the steering layer
    hash-balance traffic across them with 5-tuple flow affinity (see
    :mod:`repro.nffg.replicas`).  The default of 1 is the paper's
    single-instance semantics, byte-for-byte unchanged.
    """

    nf_id: str
    template: str
    technology: Optional[str] = None
    config: tuple[tuple[str, str], ...] = ()
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(
                f"NF {self.nf_id!r}: replicas must be >= 1, "
                f"got {self.replicas}")

    def config_dict(self) -> dict[str, str]:
        return dict(self.config)

    @classmethod
    def with_config(cls, nf_id: str, template: str,
                    config: Optional[dict[str, str]] = None,
                    technology: Optional[str] = None,
                    replicas: int = 1) -> "NfInstanceSpec":
        return cls(nf_id=nf_id, template=template, technology=technology,
                   config=tuple(sorted((config or {}).items())),
                   replicas=replicas)


@dataclass(frozen=True)
class Endpoint:
    """Graph attachment to the outside world.

    ``ep_type`` is ``"interface"`` (a node NIC such as ``wan0``) or
    ``"vlan"`` (an 802.1Q subset of a NIC).
    """

    ep_id: str
    ep_type: str = "interface"
    interface: str = ""
    vlan_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ep_type not in ("interface", "vlan"):
            raise ValueError(f"bad endpoint type {self.ep_type!r}")
        if self.ep_type == "vlan" and self.vlan_id is None:
            raise ValueError(f"vlan endpoint {self.ep_id} needs vlan_id")
        if not self.interface:
            raise ValueError(f"endpoint {self.ep_id} needs an interface")


@dataclass(frozen=True)
class ScalingPolicy:
    """How one NF scales: target load per replica plus guard rails.

    Part of the *graph*, not of any driver process: policies serialize
    with the NF-FG (``"scaling-policies"`` in the JSON document, or
    ``PUT /graphs/{id}/policies`` on a live graph), live in the
    reconciler's durable desired state, and are honored by any node's
    control loop — ``repro serve`` autoscales a policy-carrying graph
    with no Python driver script attached (the RDCL-style
    service-description model: everything needed to *run* the service
    rides in its description).
    """

    nf_id: str
    target_pps: float
    min_replicas: int = 1
    max_replicas: int = 4
    #: scale in only if the load would use at most this fraction of the
    #: reduced group's capacity (hysteresis gap against flapping)
    scale_in_headroom: float = 0.7
    #: minimum seconds between replica-count changes for this NF
    cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if not self.nf_id:
            raise ValueError("scaling policy needs a non-empty nf id")
        if self.target_pps <= 0:
            raise ValueError(f"{self.nf_id}: target_pps must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"{self.nf_id}: need 1 <= min_replicas <= max_replicas")
        if self.max_replicas > MAX_REPLICAS:
            raise ValueError(
                f"{self.nf_id}: max_replicas exceeds the graph cap "
                f"of {MAX_REPLICAS}")
        if not 0 < self.scale_in_headroom <= 1:
            raise ValueError(
                f"{self.nf_id}: scale_in_headroom must be in (0, 1]")
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"{self.nf_id}: cooldown_seconds must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return {"nf": self.nf_id, "target-pps": self.target_pps,
                "min-replicas": self.min_replicas,
                "max-replicas": self.max_replicas,
                "scale-in-headroom": self.scale_in_headroom,
                "cooldown-seconds": self.cooldown_seconds}

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "ScalingPolicy":
        if not isinstance(entry, dict):
            raise ValueError("scaling policy must be an object")
        if "nf" not in entry or "target-pps" not in entry:
            raise ValueError(
                "scaling policy needs at least 'nf' and 'target-pps'")
        known = {"nf", "target-pps", "min-replicas", "max-replicas",
                 "scale-in-headroom", "cooldown-seconds"}
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ValueError(
                f"scaling policy has unknown keys: {', '.join(unknown)}")
        try:
            return cls(
                nf_id=str(entry["nf"]),
                target_pps=float(entry["target-pps"]),
                min_replicas=int(entry.get("min-replicas", 1)),
                max_replicas=int(entry.get("max-replicas", 4)),
                scale_in_headroom=float(
                    entry.get("scale-in-headroom", 0.7)),
                cooldown_seconds=float(
                    entry.get("cooldown-seconds", 5.0)))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad scaling policy: {exc}") from exc


@dataclass(frozen=True)
class FlowMatchSpec:
    """Match half of a big-switch flow rule (port_in plus optional L2-L4)."""

    port_in: PortRef
    eth_type: Optional[int] = None
    vlan_id: Optional[int] = None
    ip_src: Optional[str] = None
    ip_dst: Optional[str] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None


@dataclass(frozen=True)
class FlowRule:
    """One big-switch steering rule: match on a port, output to a port."""

    rule_id: str
    match: FlowMatchSpec
    output: PortRef
    priority: int = 100

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 65535:
            raise ValueError(f"priority out of range in rule {self.rule_id}")


@dataclass
class Nffg:
    """A complete forwarding graph."""

    graph_id: str
    name: str = ""
    nfs: list[NfInstanceSpec] = field(default_factory=list)
    endpoints: list[Endpoint] = field(default_factory=list)
    flow_rules: list[FlowRule] = field(default_factory=list)
    #: scaling policies persisted with the graph (durable state the
    #: autoscaler reads — no driver process needed to keep them alive)
    policies: list[ScalingPolicy] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------
    def add_nf(self, nf_id: str, template: str,
               technology: Optional[str] = None,
               config: Optional[dict[str, str]] = None,
               replicas: int = 1) -> NfInstanceSpec:
        spec = NfInstanceSpec.with_config(nf_id, template, config,
                                          technology, replicas=replicas)
        self.nfs.append(spec)
        return spec

    def add_endpoint(self, ep_id: str, interface: str,
                     vlan_id: Optional[int] = None) -> Endpoint:
        endpoint = Endpoint(ep_id=ep_id,
                            ep_type="vlan" if vlan_id is not None
                            else "interface",
                            interface=interface, vlan_id=vlan_id)
        self.endpoints.append(endpoint)
        return endpoint

    def add_policy(self, nf_id: str, target_pps: float,
                   **fields_) -> ScalingPolicy:
        policy = ScalingPolicy(nf_id=nf_id, target_pps=target_pps,
                               **fields_)
        self.policies.append(policy)
        return policy

    def add_flow_rule(self, rule_id: str, port_in: str, output: str,
                      priority: int = 100, **match_fields) -> FlowRule:
        rule = FlowRule(
            rule_id=rule_id,
            match=FlowMatchSpec(port_in=PortRef.parse(port_in),
                                **match_fields),
            output=PortRef.parse(output),
            priority=priority)
        self.flow_rules.append(rule)
        return rule

    def connect(self, a: str, b: str, rule_prefix: str = "",
                priority: int = 100) -> tuple[FlowRule, FlowRule]:
        """Install the symmetric rule pair for a bidirectional hop."""
        prefix = rule_prefix or f"{a}->{b}"
        forward = self.add_flow_rule(f"{prefix}:fwd", a, b,
                                     priority=priority)
        backward = self.add_flow_rule(f"{prefix}:rev", b, a,
                                      priority=priority)
        return forward, backward

    # -- lookups ------------------------------------------------------------------
    def nf(self, nf_id: str) -> NfInstanceSpec:
        for spec in self.nfs:
            if spec.nf_id == nf_id:
                return spec
        raise KeyError(f"graph {self.graph_id} has no NF {nf_id!r}")

    def endpoint(self, ep_id: str) -> Endpoint:
        for endpoint in self.endpoints:
            if endpoint.ep_id == ep_id:
                return endpoint
        raise KeyError(f"graph {self.graph_id} has no endpoint {ep_id!r}")

    def chain_of(self) -> list[str]:
        """NF ids in rule order — handy for examples and logging."""
        seen: list[str] = []
        for rule in self.flow_rules:
            for ref in (rule.match.port_in, rule.output):
                if ref.kind == "vnf" and ref.element not in seen:
                    seen.append(ref.element)
        return seen
