"""Semantic validation of NF-FGs before deployment."""

from __future__ import annotations

from repro.nffg.model import MAX_REPLICAS, Nffg, PortRef

__all__ = ["MAX_REPLICAS", "NffgValidationError", "validate_nffg"]


class NffgValidationError(Exception):
    """The graph is internally inconsistent; carries every finding."""

    def __init__(self, problems: list[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def validate_nffg(graph: Nffg,
                  known_templates: "set[str] | None" = None) -> None:
    """Raise :class:`NffgValidationError` listing every problem found.

    ``known_templates`` (when given) cross-checks template names against
    the repository — the orchestrator passes its repository contents.
    """
    problems: list[str] = []
    nf_ids = [spec.nf_id for spec in graph.nfs]
    if len(set(nf_ids)) != len(nf_ids):
        problems.append("duplicate NF ids")
    ep_ids = [endpoint.ep_id for endpoint in graph.endpoints]
    if len(set(ep_ids)) != len(ep_ids):
        problems.append("duplicate endpoint ids")
    rule_ids = [rule.rule_id for rule in graph.flow_rules]
    if len(set(rule_ids)) != len(rule_ids):
        problems.append("duplicate flow-rule ids")
    if not graph.graph_id:
        problems.append("empty graph id")

    if known_templates is not None:
        for spec in graph.nfs:
            if spec.template not in known_templates:
                problems.append(
                    f"NF {spec.nf_id!r}: unknown template "
                    f"{spec.template!r}")
    for spec in graph.nfs:
        if spec.technology is not None and spec.technology not in (
                "vm", "docker", "dpdk", "native"):
            problems.append(f"NF {spec.nf_id!r}: unknown technology "
                            f"{spec.technology!r}")
        # "@" is the replica-expansion namespace (nf@1, rule@lb2 — see
        # repro.nffg.replicas); user graphs may not claim it.
        if "@" in spec.nf_id:
            problems.append(
                f"NF {spec.nf_id!r}: '@' is reserved for replica ids")
        if spec.replicas > MAX_REPLICAS:
            problems.append(
                f"NF {spec.nf_id!r}: replicas={spec.replicas} exceeds "
                f"the per-NF cap of {MAX_REPLICAS}")
    for rule in graph.flow_rules:
        if "@" in rule.rule_id:
            problems.append(f"rule {rule.rule_id!r}: '@' is reserved "
                            "for replica-expanded rule ids")

    nf_set = set(nf_ids)
    ep_set = set(ep_ids)

    def check_ref(ref: PortRef, where: str) -> None:
        if ref.kind == "vnf" and ref.element not in nf_set:
            problems.append(f"{where}: unknown NF {ref.element!r}")
        if ref.kind == "endpoint" and ref.element not in ep_set:
            problems.append(f"{where}: unknown endpoint {ref.element!r}")

    referenced: set[str] = set()
    for rule in graph.flow_rules:
        check_ref(rule.match.port_in, f"rule {rule.rule_id} match")
        check_ref(rule.output, f"rule {rule.rule_id} action")
        if (rule.match.port_in == rule.output
                and rule.match.port_in.kind == "vnf"):
            problems.append(
                f"rule {rule.rule_id}: output loops back to its input port")
        for ref in (rule.match.port_in, rule.output):
            if ref.kind == "vnf":
                referenced.add(ref.element)

    for spec in graph.nfs:
        if spec.nf_id not in referenced:
            problems.append(
                f"NF {spec.nf_id!r} is not referenced by any flow rule")

    policy_nfs = [policy.nf_id for policy in graph.policies]
    if len(set(policy_nfs)) != len(policy_nfs):
        problems.append("duplicate scaling policies for one NF")
    for policy in graph.policies:
        if policy.nf_id not in nf_set:
            problems.append(
                f"scaling policy targets unknown NF {policy.nf_id!r}")

    for endpoint in graph.endpoints:
        if endpoint.vlan_id is not None and not (
                0 <= endpoint.vlan_id <= 4095):
            problems.append(
                f"endpoint {endpoint.ep_id!r}: VLAN id out of range")

    if problems:
        raise NffgValidationError(problems)
