"""Replica expansion: one scaled NF becomes N steering-visible NFs.

An :class:`~repro.nffg.model.NfInstanceSpec` with ``replicas = N``
(N > 1) is a *graph-level* instruction — the reconciler and the
steering layer only ever see the **expanded** graph this module
produces:

* **Replica identity.**  Replica 0 keeps the base ``nf_id`` (so
  scaling an existing single-instance NF out and back never touches
  the original instance, its flow entries or its counters); replicas
  1..N-1 are named ``{nf_id}@{k}``.  The ``@`` namespace is reserved
  by validation, so replica ids can never collide with user NFs.

* **Rules out of the NF** (``match.port_in`` names it) are cloned per
  replica: replica 0 keeps the original rule untouched, replica k gets
  ``{rule_id}@{k}`` with the port ref rewritten.

* **Rules into the NF** (``output`` names it) become a single
  *load-balancer* rule, renamed ``{rule_id}@lb{N}`` with the output
  ref left on the base id.  The steering layer resolves that base ref
  to the whole replica group and installs a hash select-output action
  (5-tuple flow affinity — see
  :class:`repro.switch.actions.SelectOutput`).  Embedding N in the
  rule id is what makes scaling *visible to the graph diff*: changing
  the replica count changes the rule id, so the reconciler deletes the
  old spread and installs the new one while every per-replica rule
  that did not change stays installed.

Expansion is pure and deterministic: ``expand_replicas`` never mutates
its input, and expanding a graph with all-1 replica counts returns an
equivalent graph (same NF ids, same rule ids).
"""

from __future__ import annotations

from dataclasses import replace

from repro.nffg.model import FlowRule, Nffg, PortRef

__all__ = ["expand_replicas", "is_lb_rule_id", "lb_state_group",
           "replica_base", "replica_group", "replica_id"]

_LB_MARK = "@lb"


def lb_state_group(graph_id: str, nf_id: str, port: str) -> str:
    """The flow-state group id of one load-balanced destination.

    Derived from what stays *constant* across scale events — the
    graph, the base NF and the logical port — and deliberately not
    from the rule id (which embeds the replica count and changes with
    every scale decision).  The steering layer stamps this on the
    ``SelectOutput`` it installs; the datapath keys its per-flow state
    table on it, so established-flow ownership survives the LB rule
    being deleted and reinstalled at the new count.
    """
    return f"{graph_id}/{replica_base(nf_id)}:{port}"


def replica_id(nf_id: str, index: int) -> str:
    """The expanded nf_id of replica ``index`` (0 keeps the base id)."""
    return nf_id if index == 0 else f"{nf_id}@{index}"


def replica_base(nf_id: str) -> str:
    """The base nf_id an (expanded or plain) instance id belongs to."""
    return nf_id.split("@", 1)[0]


def is_lb_rule_id(rule_id: str) -> bool:
    """Whether a rule id marks an expansion-generated load-balancer rule."""
    return _LB_MARK in rule_id


def replica_group(nf_ids, base: str) -> list[str]:
    """The replica ids of ``base`` present in ``nf_ids``, replica order.

    Replica order is (base, base@1, base@2, ...) — the order the hash
    spread indexes, so a stable sort by replica index keeps affinity
    deterministic across installs.
    """
    members = [nf_id for nf_id in nf_ids if replica_base(nf_id) == base]

    def index(nf_id: str) -> int:
        return 0 if nf_id == base else int(nf_id.split("@", 1)[1])

    return sorted(members, key=index)


def expand_replicas(graph: Nffg) -> Nffg:
    """The steering-visible graph: every ``replicas=N`` NF spread out.

    Returns ``graph``-equivalent output when nothing is replicated
    (fresh Nffg object, same specs/rules), so callers can expand
    unconditionally.
    """
    scaled = {spec.nf_id: spec.replicas
              for spec in graph.nfs if spec.replicas > 1}
    expanded = Nffg(graph_id=graph.graph_id, name=graph.name,
                    endpoints=list(graph.endpoints),
                    policies=list(graph.policies))
    for spec in graph.nfs:
        if spec.nf_id not in scaled:
            expanded.nfs.append(spec)
            continue
        for k in range(spec.replicas):
            expanded.nfs.append(replace(spec, nf_id=replica_id(spec.nf_id, k),
                                        replicas=1))
    if not scaled:
        expanded.flow_rules = list(graph.flow_rules)
        return expanded

    for rule in graph.flow_rules:
        src = rule.match.port_in
        fan_out = (src.kind == "vnf" and src.element in scaled)
        variants: list[FlowRule] = []
        if fan_out:
            for k in range(scaled[src.element]):
                nf_id = replica_id(src.element, k)
                variants.append(replace(
                    rule,
                    rule_id=rule.rule_id if k == 0
                    else f"{rule.rule_id}@{k}",
                    match=replace(rule.match,
                                  port_in=PortRef(kind="vnf",
                                                  element=nf_id,
                                                  port=src.port))))
        else:
            variants.append(rule)
        dst = rule.output
        if dst.kind == "vnf" and dst.element in scaled:
            count = scaled[dst.element]
            variants = [replace(variant,
                                rule_id=f"{variant.rule_id}{_LB_MARK}{count}")
                        for variant in variants]
        expanded.flow_rules.extend(variants)
    return expanded
