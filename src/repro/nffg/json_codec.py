"""JSON (de)serialisation of NF-FGs, un-orchestrator style.

Document shape::

    {"forwarding-graph": {
        "id": "g1", "name": "...",
        "VNFs": [{"id": "fw", "template": "firewall",
                  "technology": "native",               # optional
                  "replicas": 2,                        # optional (default 1)
                  "configuration": {"key": "value"}}],  # optional
        "end-points": [{"id": "wan", "type": "interface",
                        "interface": "wan0", "vlan-id": 101}],
        "big-switch": {"flow-rules": [
            {"id": "r1", "priority": 100,
             "match": {"port_in": "endpoint:wan", "ip_dst": "10.0.0.0/24"},
             "action": {"output": "vnf:fw:wan"}}]},
        "scaling-policies": [                       # optional
            {"nf": "fw", "target-pps": 50000.0,
             "min-replicas": 1, "max-replicas": 4}]}}
"""

from __future__ import annotations

import json
from typing import Any

from repro.nffg.model import (
    Endpoint,
    FlowMatchSpec,
    FlowRule,
    Nffg,
    NfInstanceSpec,
    PortRef,
    ScalingPolicy,
)

__all__ = ["nffg_from_dict", "nffg_from_json", "nffg_to_dict",
           "nffg_to_json"]

_MATCH_FIELDS = ("eth_type", "vlan_id", "ip_src", "ip_dst", "ip_proto",
                 "tp_src", "tp_dst")


def nffg_to_dict(graph: Nffg) -> dict[str, Any]:
    vnfs = []
    for spec in graph.nfs:
        entry: dict[str, Any] = {"id": spec.nf_id, "template": spec.template}
        if spec.technology is not None:
            entry["technology"] = spec.technology
        if spec.config:
            entry["configuration"] = spec.config_dict()
        if spec.replicas != 1:
            entry["replicas"] = spec.replicas
        vnfs.append(entry)
    endpoints = []
    for endpoint in graph.endpoints:
        entry = {"id": endpoint.ep_id, "type": endpoint.ep_type,
                 "interface": endpoint.interface}
        if endpoint.vlan_id is not None:
            entry["vlan-id"] = endpoint.vlan_id
        endpoints.append(entry)
    rules = []
    for rule in graph.flow_rules:
        match: dict[str, Any] = {"port_in": str(rule.match.port_in)}
        for field_name in _MATCH_FIELDS:
            value = getattr(rule.match, field_name)
            if value is not None:
                match[field_name] = value
        rules.append({"id": rule.rule_id, "priority": rule.priority,
                      "match": match,
                      "action": {"output": str(rule.output)}})
    body: dict[str, Any] = {
        "id": graph.graph_id,
        "name": graph.name,
        "VNFs": vnfs,
        "end-points": endpoints,
        "big-switch": {"flow-rules": rules},
    }
    if graph.policies:
        body["scaling-policies"] = [p.to_dict() for p in graph.policies]
    return {"forwarding-graph": body}


def nffg_to_json(graph: Nffg, indent: int = 2) -> str:
    return json.dumps(nffg_to_dict(graph), indent=indent, sort_keys=True)


def _require(mapping: dict, key: str, context: str) -> Any:
    if key not in mapping:
        raise ValueError(f"NF-FG JSON: missing {key!r} in {context}")
    return mapping[key]


def nffg_from_dict(document: dict[str, Any]) -> Nffg:
    body = _require(document, "forwarding-graph", "document root")
    graph = Nffg(graph_id=str(_require(body, "id", "forwarding-graph")),
                 name=str(body.get("name", "")))
    for entry in body.get("VNFs", []):
        config = entry.get("configuration", {})
        if not isinstance(config, dict):
            raise ValueError("NF-FG JSON: configuration must be an object")
        replicas = entry.get("replicas", 1)
        if not isinstance(replicas, int) or replicas < 1:
            raise ValueError("NF-FG JSON: replicas must be a positive "
                             f"integer, got {replicas!r}")
        graph.nfs.append(NfInstanceSpec.with_config(
            nf_id=str(_require(entry, "id", "VNF")),
            template=str(_require(entry, "template", "VNF")),
            technology=entry.get("technology"),
            config={str(k): str(v) for k, v in config.items()},
            replicas=replicas))
    for entry in body.get("end-points", []):
        graph.endpoints.append(Endpoint(
            ep_id=str(_require(entry, "id", "end-point")),
            ep_type=str(entry.get("type", "interface")),
            interface=str(_require(entry, "interface", "end-point")),
            vlan_id=entry.get("vlan-id")))
    big_switch = body.get("big-switch", {})
    for entry in big_switch.get("flow-rules", []):
        raw_match = _require(entry, "match", "flow-rule")
        kwargs = {name: raw_match[name] for name in _MATCH_FIELDS
                  if name in raw_match}
        match = FlowMatchSpec(
            port_in=PortRef.parse(str(_require(raw_match, "port_in",
                                               "flow-rule match"))),
            **kwargs)
        action = _require(entry, "action", "flow-rule")
        graph.flow_rules.append(FlowRule(
            rule_id=str(_require(entry, "id", "flow-rule")),
            priority=int(entry.get("priority", 100)),
            match=match,
            output=PortRef.parse(str(_require(action, "output",
                                              "flow-rule action")))))
    policies = body.get("scaling-policies", [])
    if not isinstance(policies, list):
        raise ValueError("NF-FG JSON: scaling-policies must be an array")
    for entry in policies:
        graph.policies.append(ScalingPolicy.from_dict(entry))
    return graph


def nffg_from_json(text: str) -> Nffg:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"NF-FG JSON: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise ValueError("NF-FG JSON: top level must be an object")
    return nffg_from_dict(document)
