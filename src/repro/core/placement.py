"""Per-NF placement: the VNF-vs-NNF decision of paper §2.

"For each NF in a NF-FG, the orchestrator decides whether to deploy it
as VNF or NNF based on its knowledge of the node capability set, the
available NNFs and their characteristics (e.g., whether they are
sharable), and their status (e.g., already used in another chain)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import ResolutionPolicy, VnfResolver
from repro.catalog.templates import NfImplementation, Technology
from repro.nffg.model import Nffg, NfInstanceSpec
from repro.nnf.registry import NnfRegistry
from repro.resources.capabilities import NodeCapabilities

__all__ = ["PlacementDecision", "PlacementPolicy"]


@dataclass(frozen=True)
class PlacementDecision:
    """The choice for one NF of a graph."""

    nf_id: str
    template_name: str
    implementation: NfImplementation
    forced: bool    # graph pinned the technology explicitly

    @property
    def is_native(self) -> bool:
        return self.implementation.technology is Technology.NATIVE


class PlacementPolicy:
    """Binds the resolver to this node's NNF registry status."""

    def __init__(self, capabilities: NodeCapabilities,
                 repository: VnfRepository,
                 nnf_registry: NnfRegistry,
                 resolution: ResolutionPolicy =
                 ResolutionPolicy.PREFER_NATIVE) -> None:
        self.repository = repository
        self.nnf_registry = nnf_registry
        self.resolver = VnfResolver(
            capabilities,
            nnf_status=nnf_registry.availability,
            policy=resolution)

    def decide(self, graph: Nffg) -> list[PlacementDecision]:
        """Placement for every NF in the graph, in declaration order."""
        decisions = []
        for spec in graph.nfs:
            decisions.append(self.decide_one(spec))
        return decisions

    def decide_one(self, spec: NfInstanceSpec) -> PlacementDecision:
        template = self.repository.get(spec.template)
        forced = None
        if spec.technology is not None:
            forced = Technology(spec.technology)
        implementation = self.resolver.resolve(template, forced=forced)
        return PlacementDecision(nf_id=spec.nf_id,
                                 template_name=template.name,
                                 implementation=implementation,
                                 forced=forced is not None)
