"""The assembled NFV compute node (Figure 1 in one object).

Construction wires: a Linux host (kernel substrate), LSI-0 with node
NICs attached, image + template repositories, the NNF plugin registry,
the four management drivers behind a compute manager, the resource
manager, the traffic-steering manager, and the local orchestrator.  A
REST application (``repro.rest``) is bound on top by the CLI/examples.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import ResolutionPolicy
from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.dpdk import DpdkDriver
from repro.compute.drivers.native import NativeDriver
from repro.compute.drivers.vm_kvm import KvmDriver
from repro.compute.manager import ComputeManager
from repro.core.orchestrator import DeployedGraph, LocalOrchestrator
from repro.core.placement import PlacementPolicy
from repro.core.steering import TrafficSteeringManager
from repro.linuxnet.devices import NetDevice, VethPair
from repro.linuxnet.host import LinuxHost
from repro.nffg.model import Nffg
from repro.nnf.plugins import stock_registry
from repro.nnf.registry import NnfRegistry
from repro.nnf.sharing import SharedNnfManager
from repro.resources.accounting import ResourceAccountant
from repro.resources.capabilities import NodeCapabilities
from repro.resources.images import ImageRegistry

__all__ = ["ComputeNode"]


class ComputeNode:
    """One NFV-enabled node (CPE or server)."""

    def __init__(self, name: str = "cpe",
                 capabilities: Optional[NodeCapabilities] = None,
                 repository: Optional[VnfRepository] = None,
                 images: Optional[ImageRegistry] = None,
                 nnf_registry: Optional[NnfRegistry] = None,
                 resolution: ResolutionPolicy =
                 ResolutionPolicy.PREFER_NATIVE) -> None:
        self.name = name
        self.capabilities = (capabilities if capabilities is not None
                             else NodeCapabilities.residential_cpe_with_kvm())
        self.host = LinuxHost(hostname=name)
        self.images = images if images is not None else ImageRegistry.stock()
        self.repository = (repository if repository is not None
                           else VnfRepository.stock())
        self.nnf_registry = (nnf_registry if nnf_registry is not None
                             else stock_registry())
        self.accountant = ResourceAccountant(self.capabilities)
        self.steering = TrafficSteeringManager()

        self.shared_nnfs = SharedNnfManager()
        self.compute = ComputeManager()
        features = self.capabilities.features
        if "kvm" in features:
            self.compute.register_driver(
                KvmDriver(self.host, behaviors=self.nnf_registry))
        if "docker" in features:
            self.compute.register_driver(
                DockerDriver(self.host, behaviors=self.nnf_registry))
        if "dpdk" in features:
            self.compute.register_driver(
                DpdkDriver(self.host, behaviors=self.nnf_registry))
        if "native" in features:
            self.compute.register_driver(
                NativeDriver(self.host, self.nnf_registry,
                             shared=self.shared_nnfs))

        self.placement = PlacementPolicy(self.capabilities, self.repository,
                                         self.nnf_registry,
                                         resolution=resolution)
        self.orchestrator = LocalOrchestrator(
            placement=self.placement, compute=self.compute,
            steering=self.steering, accountant=self.accountant,
            images=self.images)
        # Telemetry rides on the counters the dataplane and journal
        # already maintain; constructing the registry costs nothing
        # until someone samples it (control loop, REST, `repro top`).
        from repro.telemetry.metrics import MetricsRegistry
        self.telemetry = MetricsRegistry(self.steering,
                                         self.orchestrator.reconciler)
        # Tracing + flight recorder: the sampler keeps the dataplane
        # cost at one counter compare per unsampled batch, so it is on
        # by default on a full node.  The journal is resolved through a
        # callable because the control loop may swap it (sharding) or
        # rebind its clock (sim mode) later.
        from repro.telemetry.tracing import Tracer
        self.tracer = Tracer(
            journal=lambda: self.orchestrator.reconciler.journal)
        self.orchestrator.reconciler.tracer = self.tracer
        self.orchestrator.reconciler.journal.on_drop = \
            self.tracer.on_journal_drop
        self.steering.set_tracer(self.tracer)
        self._wires: dict[str, NetDevice] = {}

    # -- physical interfaces -----------------------------------------------------
    def add_physical_interface(self, name: str) -> NetDevice:
        """Create a node NIC attached to LSI-0.

        Returns the *wire side* device — the far end of the cable — so
        tests and traffic generators can inject/receive frames exactly
        where the paper's iPerf boxes sat.
        """
        pair = VethPair(name, f"{name}-wire")
        self.host.root.add_device(pair.a)
        pair.a.set_up()
        pair.b.set_up()
        self.steering.register_physical(pair.a)
        self._wires[name] = pair.b
        return pair.b

    def wire(self, interface: str) -> NetDevice:
        try:
            return self._wires[interface]
        except KeyError:
            raise KeyError(
                f"no physical interface {interface!r} on {self.name}"
            ) from None

    # -- orchestration passthroughs --------------------------------------------------
    def deploy(self, graph: Nffg) -> DeployedGraph:
        return self.orchestrator.deploy(graph)

    def undeploy(self, graph_id: str) -> DeployedGraph:
        return self.orchestrator.undeploy(graph_id)

    def update(self, graph: Nffg) -> DeployedGraph:
        return self.orchestrator.update(graph)

    def apply(self, graph: Nffg) -> "tuple[DeployedGraph, bool]":
        """Deploy-or-update atomically; returns ``(record, created)``."""
        return self.orchestrator.apply(graph)

    # -- description (REST: "node description, capabilities, resources") ---------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "class": self.capabilities.node_class.value,
            "cpu-cores": self.capabilities.cpu_cores,
            "cpu-mhz": self.capabilities.cpu_mhz,
            "ram-mb": self.capabilities.ram_mb,
            "disk-mb": self.capabilities.disk_mb,
            "features": sorted(self.capabilities.features),
            "technologies": [t.value for t in self.compute.technologies],
            "utilisation": self.accountant.utilisation(),
            "deployed-graphs": self.orchestrator.list_graphs(),
            "nnfs": self.nnf_registry.describe(),
            "flow-counts": self.steering.flow_counts(),
        }
