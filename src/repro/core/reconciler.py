"""Desired-state reconciliation: the engine under the orchestrator.

The paper's un-orchestrator keeps NF-FGs *running* — create, update,
heal — which an imperative verb pipeline cannot do: a driver failure
halfway through an update strands allocations with no path back.  This
module replaces the verbs with a control loop:

* **Desired vs. observed.**  ``Reconciler.desired`` holds what each
  graph *should* look like (set by deploy/update, cleared by
  undeploy); ``Reconciler.observed`` holds per-graph
  :class:`DeployedGraph` records tracking what is actually realized —
  which instances exist (and in which lifecycle state), which
  placements were decided, and (via the steering layer's per-rule
  registry) which big-switch rules are installed.

* **Plans.**  Every tick compiles the :func:`~repro.nffg.diff.diff_nffg`
  edit script between the observed graph and the desired graph into an
  explicit, inspectable list of :class:`PlanStep` objects — delete-rule
  / stop / destroy / place / create / configure / reconfigure /
  install-rule / start / restart, plus the graph-network bookends —
  and executes them in order.

* **Per-step checkpointing.**  Each completed step immediately updates
  the observed record, so a mid-plan failure aborts the tick with the
  observed state exactly describing what was applied.  The next tick
  recompiles a *fresh* plan from that state: updates are retryable and
  nothing is ever torn down wholesale to get back to consistency.

* **Health-probed healing.**  The tick loop probes every RUNNING
  instance through its driver's ``health`` verb; an unhealthy instance
  transitions to FAILED and is healed — restarted in place first, and
  recreated (destroy + create + configure + reinstall *only its own
  rules* + start) if the restart does not stick.  Untouched NFs keep
  their flow entries and counters throughout.

* **Journal.**  Every transition lands in an append-only
  :class:`EventJournal`, exposed over REST
  (``GET /graphs/{id}/events``) and the CLI (``repro graph events``) —
  the repair/convergence record availability models need.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compute.instances import InstanceSpec, InstanceState, NfInstance
from repro.compute.manager import ComputeManager
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.core.steering import TrafficSteeringManager
from repro.nffg.diff import diff_nffg
from repro.nffg.model import FlowRule, Nffg, NfInstanceSpec
from repro.nffg.replicas import expand_replicas, is_lb_rule_id, replica_base
from repro.resources.accounting import ResourceAccountant
from repro.resources.images import ImageRegistry

__all__ = ["DeployedGraph", "EventJournal", "GraphEvent", "GraphLockRegistry",
           "Plan", "PlanStep", "ReconcileError", "ReconcileResult",
           "Reconciler", "ShardedEventJournal", "shard_of_graph"]


class ReconcileError(Exception):
    """The engine could not make progress towards the desired state."""


def shard_of_graph(graph_id: str, shards: int) -> int:
    """Stable graph_id -> shard mapping shared by the control loop and
    the sharded journal.

    CRC32, not :func:`hash`: the built-in string hash is randomized per
    process (``PYTHONHASHSEED``), and a shard assignment that moved
    between runs would make sharded sim traces non-reproducible and
    per-shard journal exports impossible to correlate across restarts.
    """
    if shards <= 1:
        return 0
    return zlib.crc32(graph_id.encode()) % shards


class GraphLockRegistry:
    """Per-graph reentrant locks, created on demand.

    The control plane's concurrency unit is the graph: REST handler
    threads (deploy/update/undeploy/reconcile), the control loop's tick
    workers and the fleet layer all serialize *per graph_id* — two
    callers touching different graphs never contend, two touching the
    same graph never interleave.  Locks are reentrant because the call
    graph nests (``deploy`` -> ``reconcile`` -> ``tick`` all take the
    same graph's lock), and they are never discarded: a lock object per
    distinct graph_id ever seen is bounded and cheap, while deleting one
    under a waiter would hand two threads "the" lock for one graph.
    """

    def __init__(self) -> None:
        self._locks: dict[str, threading.RLock] = {}
        self._registry_lock = threading.Lock()

    def get(self, graph_id: str) -> threading.RLock:
        lock = self._locks.get(graph_id)
        if lock is None:
            with self._registry_lock:
                lock = self._locks.setdefault(graph_id, threading.RLock())
        return lock

    def __len__(self) -> int:
        return len(self._locks)


# -- journal ---------------------------------------------------------------------

@dataclass(frozen=True)
class GraphEvent:
    """One append-only journal entry.

    ``time`` is the journal clock's reading at append — wall-monotonic
    by default, the virtual sim clock under a
    :class:`~repro.telemetry.loop.ControlLoop` in sim mode — and is
    what the telemetry layer derives MTTR and convergence times from.
    """

    seq: int
    kind: str
    graph_id: str
    nf_id: str = ""
    rule_id: str = ""
    detail: str = ""
    time: float = 0.0

    def to_dict(self) -> dict:
        row = {"seq": self.seq, "kind": self.kind,
               "graph-id": self.graph_id, "time": self.time}
        if self.nf_id:
            row["nf-id"] = self.nf_id
        if self.rule_id:
            row["rule-id"] = self.rule_id
        if self.detail:
            row["detail"] = self.detail
        return row


class EventJournal:
    """Append-only, per-graph *ring-buffered* event log.

    The journal outlives the graphs it describes (post-mortems after an
    undeploy are the point), but each graph's log is a ring of at most
    ``max_events`` entries so a continuous control loop driving ticks
    forever cannot grow memory without bound.  Evictions are counted
    per graph (:meth:`dropped_count`) and reported by the REST/CLI
    event queries, so a truncated history is never mistaken for a
    complete one.

    ``clock`` stamps every event (:attr:`GraphEvent.time`); it defaults
    to ``time.monotonic`` and is rebound to the virtual clock by the
    sim-mode control loop, which is what makes journal-derived
    availability metrics (MTTR) deterministic under test.

    Appends are thread-safe: REST handler threads, control-loop shard
    workers and the fleet layer all journal concurrently, and the
    ring-full check (``len(log) == max_events``) racing the append used
    to undercount drops.  One mutex per journal covers the
    check-then-append and the dropped-counter increment as a unit; the
    read side snapshots under the same mutex so an export never sees a
    half-applied eviction.  ``seq`` may be a shared counter so several
    shard journals allocate from one sequence.
    """

    def __init__(self, max_events: int = 1000,
                 clock: Optional[Callable[[], float]] = None,
                 seq: "Optional[itertools.count]" = None) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.clock: Callable[[], float] = (clock if clock is not None
                                           else time.monotonic)
        self._events: dict[str, deque[GraphEvent]] = {}
        self._dropped: dict[str, int] = {}
        self._seq = seq if seq is not None else itertools.count(1)
        self._lock = threading.Lock()
        #: Optional ``callback(graph_id, event)`` fired *after* an
        #: append that evicted the ring's oldest event (the flight
        #: recorder's journal-drop anomaly trigger).  Invoked outside
        #: the journal lock — the callback may itself read the journal.
        self.on_drop: Optional[Callable[[str, GraphEvent], None]] = None

    def append(self, graph_id: str, kind: str, nf_id: str = "",
               rule_id: str = "", detail: str = "") -> GraphEvent:
        evicted = False
        with self._lock:
            event = GraphEvent(seq=next(self._seq), kind=kind,
                               graph_id=graph_id, nf_id=nf_id,
                               rule_id=rule_id, detail=detail,
                               time=self.clock())
            log = self._events.get(graph_id)
            if log is None:
                log = self._events[graph_id] = deque(maxlen=self.max_events)
            if len(log) == self.max_events:
                self._dropped[graph_id] = self._dropped.get(graph_id, 0) + 1
                evicted = True
            log.append(event)
        if evicted:
            on_drop = self.on_drop
            if on_drop is not None:
                on_drop(graph_id, event)
        return event

    def events(self, graph_id: str) -> list[GraphEvent]:
        with self._lock:
            return list(self._events.get(graph_id, ()))

    def dropped_count(self, graph_id: str) -> int:
        """Events evicted from the graph's ring since it was created."""
        with self._lock:
            return self._dropped.get(graph_id, 0)

    def last_kind(self, graph_id: str) -> str:
        with self._lock:
            log = self._events.get(graph_id)
            return log[-1].kind if log else ""

    def graphs(self) -> list[str]:
        with self._lock:
            return sorted(self._events)

    def forget(self, graph_id: str) -> None:
        with self._lock:
            self._events.pop(graph_id, None)
            self._dropped.pop(graph_id, None)


class ShardedEventJournal:
    """N per-shard :class:`EventJournal` rings behind one interface.

    Scaling the reconcile loop out puts every shard worker on the
    journal at once; even a thread-safe single ring then serializes all
    workers on one mutex.  This variant routes each graph to the shard
    :func:`shard_of_graph` names — the *same* mapping the sharded
    control loop uses for tick workers, so within a shard the journal
    is effectively single-writer again and cross-shard appends never
    contend.  Sequence numbers come from one shared counter, so merged
    exports still interleave in global append order.

    The public surface mirrors :class:`EventJournal` exactly (append /
    events / dropped_count / last_kind / graphs / forget /
    ``max_events`` / ``clock``) — the reconciler, REST export, CLI and
    telemetry layers cannot tell the difference.  Reads route to the
    owning shard; :meth:`graphs` and :meth:`merged_events` merge across
    shards for fleet-wide export.
    """

    def __init__(self, shards: int = 2, max_events: int = 1000,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.max_events = max_events
        self._clock: Callable[[], float] = (clock if clock is not None
                                            else time.monotonic)
        seq = itertools.count(1)
        self.shards: list[EventJournal] = [
            EventJournal(max_events=max_events, clock=self._clock, seq=seq)
            for _ in range(shards)]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @clock.setter
    def clock(self, clock: Callable[[], float]) -> None:
        # Rebinding (sim mode) must reach every shard ring, or merged
        # exports would mix virtual and wall timestamps.
        self._clock = clock
        for shard in self.shards:
            shard.clock = clock

    @property
    def on_drop(self) -> Optional[Callable[[str, GraphEvent], None]]:
        return self.shards[0].on_drop

    @on_drop.setter
    def on_drop(self,
                callback: Optional[Callable[[str, GraphEvent], None]]) \
            -> None:
        # Like the clock: a drop on any shard ring is a drop.
        for shard in self.shards:
            shard.on_drop = callback

    def shard_for(self, graph_id: str) -> EventJournal:
        return self.shards[shard_of_graph(graph_id, len(self.shards))]

    def adopt(self, journal: EventJournal) -> None:
        """Migrate an existing single-ring journal's history in.

        Used when a sharded control loop takes over a node that already
        journaled deploys through the default ring — post-mortems must
        not lose the pre-sharding prefix.  Events keep their original
        seq/time stamps; drop counters carry over.
        """
        with journal._lock:
            entries = {graph_id: list(log)
                       for graph_id, log in journal._events.items()}
            dropped = dict(journal._dropped)
        for graph_id, events in entries.items():
            shard = self.shard_for(graph_id)
            with shard._lock:
                log = shard._events.setdefault(
                    graph_id, deque(maxlen=shard.max_events))
                log.extend(events)
                if dropped.get(graph_id):
                    shard._dropped[graph_id] = \
                        shard._dropped.get(graph_id, 0) + dropped[graph_id]

    # -- EventJournal surface (routed) --------------------------------------------
    def append(self, graph_id: str, kind: str, nf_id: str = "",
               rule_id: str = "", detail: str = "") -> GraphEvent:
        return self.shard_for(graph_id).append(graph_id, kind, nf_id=nf_id,
                                               rule_id=rule_id, detail=detail)

    def events(self, graph_id: str) -> list[GraphEvent]:
        return self.shard_for(graph_id).events(graph_id)

    def dropped_count(self, graph_id: str) -> int:
        return self.shard_for(graph_id).dropped_count(graph_id)

    def last_kind(self, graph_id: str) -> str:
        return self.shard_for(graph_id).last_kind(graph_id)

    def graphs(self) -> list[str]:
        merged: set[str] = set()
        for shard in self.shards:
            merged.update(shard.graphs())
        return sorted(merged)

    def forget(self, graph_id: str) -> None:
        self.shard_for(graph_id).forget(graph_id)

    # -- merged export -------------------------------------------------------------
    def merged_events(self) -> list[GraphEvent]:
        """Every shard's events in one list, global append (seq) order."""
        merged: list[GraphEvent] = []
        for shard in self.shards:
            for graph_id in shard.graphs():
                merged.extend(shard.events(graph_id))
        merged.sort(key=lambda event: event.seq)
        return merged


# -- plans -----------------------------------------------------------------------

#: Step kinds in canonical execution order within a plan.
STEP_KINDS = ("create-network", "delete-rule", "stop", "destroy-network",
              "destroy", "place", "create", "configure", "reconfigure",
              "restart", "install-rule", "start")


@dataclass
class PlanStep:
    """One reconciliation action; ``status`` is its checkpoint."""

    kind: str
    nf_id: str = ""
    rule_id: str = ""
    detail: str = ""
    status: str = "pending"   # pending -> done | failed
    error: str = ""

    @property
    def target(self) -> str:
        return self.nf_id or self.rule_id

    def describe(self) -> str:
        text = self.kind
        if self.target:
            text += f" {self.target}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> dict:
        row = {"kind": self.kind, "status": self.status}
        if self.nf_id:
            row["nf-id"] = self.nf_id
        if self.rule_id:
            row["rule-id"] = self.rule_id
        if self.detail:
            row["detail"] = self.detail
        if self.error:
            row["error"] = self.error
        return row


@dataclass
class Plan:
    """The compiled edit script of one tick."""

    graph_id: str
    steps: list[PlanStep] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return not self.steps

    @property
    def done_count(self) -> int:
        return sum(1 for step in self.steps if step.status == "done")

    @property
    def failed_step(self) -> Optional[PlanStep]:
        for step in self.steps:
            if step.status == "failed":
                return step
        return None

    def summary(self) -> str:
        if not self.steps:
            return "converged (empty plan)"
        kinds: dict[str, int] = {}
        for step in self.steps:
            kinds[step.kind] = kinds.get(step.kind, 0) + 1
        return ", ".join(f"{count}x {kind}" for kind, count in
                         sorted(kinds.items(),
                                key=lambda item: STEP_KINDS.index(item[0])))


@dataclass
class ReconcileResult:
    """Outcome of one :meth:`Reconciler.reconcile` convergence run."""

    graph_id: str
    converged: bool
    ticks: int
    steps_executed: int

    def to_dict(self) -> dict:
        return {"graph-id": self.graph_id, "converged": self.converged,
                "ticks": self.ticks, "steps-executed": self.steps_executed}


# -- observed records -------------------------------------------------------------

@dataclass
class DeployedGraph:
    """Observed state of one live NF-FG (the reconciler's record)."""

    graph: Nffg
    placements: dict[str, PlacementDecision] = field(default_factory=dict)
    instances: dict[str, NfInstance] = field(default_factory=dict)
    #: desired spec each live instance was realized from (configure /
    #: reconfigure checkpoints update it) — the observed-graph NF set
    realized_nfs: dict[str, NfInstanceSpec] = field(default_factory=dict)
    rules_installed: int = 0
    modeled_deploy_seconds: float = 0.0
    wall_deploy_seconds: float = 0.0

    @property
    def graph_id(self) -> str:
        return self.graph.graph_id

    def technologies(self) -> dict[str, str]:
        return {nf_id: decision.implementation.technology.value
                for nf_id, decision in self.placements.items()}


def _rule_touches(rule: FlowRule, nf_ids: set[str]) -> bool:
    for ref in (rule.match.port_in, rule.output):
        if ref.kind != "vnf":
            continue
        if ref.element in nf_ids:
            return True
        # A load-balancer rule's output names the replica *base* id;
        # tearing down any replica (nf@k) invalidates the whole hash
        # spread, so the rule must be reinstalled over the new group.
        if ref is rule.output and is_lb_rule_id(rule.rule_id) \
                and any(replica_base(nf_id) == ref.element
                        for nf_id in nf_ids):
            return True
    return False


class Reconciler:
    """Drives every graph's observed state towards its desired state."""

    def __init__(self, placement: PlacementPolicy,
                 compute: ComputeManager,
                 steering: TrafficSteeringManager,
                 accountant: ResourceAccountant,
                 images: ImageRegistry,
                 journal: Optional[EventJournal] = None) -> None:
        self.placement = placement
        self.compute = compute
        self.steering = steering
        self.accountant = accountant
        self.images = images
        self.journal = journal if journal is not None else EventJournal()
        #: per-graph reentrant locks — REST handler threads, control-loop
        #: shard workers and the fleet layer all serialize through these
        #: (see :meth:`lock`); no global lock on the *read/plan* path.
        self.locks = GraphLockRegistry()
        #: node-wide mutex for plan *execution* only: structural steps
        #: mutate shared node layers (accountant, LSI-0 ports, steering
        #: registries, drivers) that per-graph locks cannot cover.
        #: Empty-plan ticks — the steady-state majority — never take it.
        self.execution_lock = threading.Lock()
        #: steering-visible desired graphs (replicas expanded)
        self.desired: dict[str, Nffg] = {}
        #: desired graphs exactly as the caller handed them in —
        #: replica counts intact; the autoscaler edits *these*.
        self.desired_raw: dict[str, Nffg] = {}
        self.observed: dict[str, DeployedGraph] = {}
        self.last_plans: dict[str, Plan] = {}
        #: per-(graph, nf) failed heal attempts; escalates restart->recreate
        self._heal_attempts: dict[tuple[str, str], int] = {}
        self.max_ticks = 16
        self.ticks_run = 0
        self.failures_detected = 0
        self.heals = 0
        #: node-local heal-failure ceiling: once an NF's failed heal
        #: attempts reach this, the engine calls :attr:`escalation`
        #: (the fleet layer's hook) so the whole graph can be re-placed
        #: on another node — one level above restart -> recreate.
        self.escalate_after = 3
        #: ``escalation(graph_id, nf_id, detail)`` — set by
        #: :meth:`repro.core.multinode.MultiNodeOrchestrator.add_node`.
        self.escalation: Optional[Callable[[str, str, str], None]] = None
        #: Optional :class:`repro.telemetry.tracing.Tracer` (wired by
        #: :class:`~repro.core.node.ComputeNode`).  Plan/step latency
        #: histograms, step spans carrying their journal seq, and the
        #: heal / heal-escalated anomaly triggers all hang off it; every
        #: hook is ``if tracer is not None``-guarded so bare reconciler
        #: tests and the control-plane bench pay nothing.
        self.tracer = None

    # -- locking -----------------------------------------------------------------
    def lock(self, graph_id: str) -> threading.RLock:
        """The graph's control-plane lock (``with reconciler.lock(id):``).

        Reentrant, so the natural call nesting — orchestrator verb ->
        :meth:`reconcile` -> :meth:`tick` — takes it once per thread.
        Every mutation path through the engine (tick, reconcile,
        set/clear desired, forget) acquires it; REST handlers and the
        autoscaler take it around their own check-then-act sequences so
        decisions and the state they were decided on cannot be torn
        apart by a concurrent tick.
        """
        return self.locks.get(graph_id)

    # -- desired state -----------------------------------------------------------
    def set_desired(self, graph: Nffg) -> None:
        with self.lock(graph.graph_id):
            self.desired_raw[graph.graph_id] = graph
            expanded = expand_replicas(graph)
            self.desired[graph.graph_id] = expanded
            detail = (f"{len(graph.nfs)} NFs, "
                      f"{len(expanded.flow_rules)} rules")
            if len(expanded.nfs) != len(graph.nfs):
                detail = (f"{len(graph.nfs)} NFs "
                          f"({len(expanded.nfs)} replica-expanded), "
                          f"{len(expanded.flow_rules)} rules")
            if graph.policies:
                detail += f", {len(graph.policies)} scaling policies"
            self.journal.append(graph.graph_id, "desired-set", detail=detail)

    def clear_desired(self, graph_id: str) -> None:
        with self.lock(graph_id):
            self.desired_raw.pop(graph_id, None)
            if self.desired.pop(graph_id, None) is not None:
                self.journal.append(graph_id, "desired-cleared")

    # -- observed state ----------------------------------------------------------
    def _observed_graph(self, record: DeployedGraph) -> Nffg:
        """The graph that is *actually realized* right now: every NF
        with a live instance, every rule the steering registry holds."""
        graph = Nffg(graph_id=record.graph.graph_id,
                     name=record.graph.name)
        graph.nfs = [record.realized_nfs[nf_id]
                     for nf_id in record.instances
                     if nf_id in record.realized_nfs]
        desired = self.desired.get(record.graph_id)
        if desired is not None:
            graph.endpoints = list(desired.endpoints)
        if record.graph_id in self.steering.graphs:
            graph.flow_rules = list(
                self.steering.installed_rules(record.graph_id).values())
        return graph

    # -- health ------------------------------------------------------------------
    def check_health(self, graph_id: str) -> list[str]:
        """Probe every RUNNING instance; mark unhealthy ones FAILED.

        Returns the nf_ids that newly failed (detection only — healing
        is planned by the next :meth:`plan` compilation).
        """
        record = self.observed.get(graph_id)
        if record is None:
            return []
        failed: list[str] = []
        for nf_id, instance in record.instances.items():
            if not instance.is_running:
                continue
            verdict = self.compute.health(instance.instance_id)
            if not verdict.healthy:
                instance.transition("fail")
                self.failures_detected += 1
                failed.append(nf_id)
                self.journal.append(graph_id, "health-failed", nf_id=nf_id,
                                    detail=verdict.detail)
        return failed

    # -- plan compilation --------------------------------------------------------
    def plan(self, graph_id: str) -> Plan:
        """Compile the current desired/observed divergence into steps."""
        desired = self.desired.get(graph_id)
        record = self.observed.get(graph_id)
        plan = Plan(graph_id=graph_id)
        if record is None and desired is None:
            return plan
        steps = plan.steps
        teardown = desired is None
        network_exists = graph_id in self.steering.graphs

        if record is None:
            record_graph_name = desired.name
            observed = Nffg(graph_id=graph_id, name=record_graph_name)
            instances: dict[str, NfInstance] = {}
        else:
            observed = self._observed_graph(record)
            instances = record.instances
        target = desired if desired is not None \
            else Nffg(graph_id=graph_id, name=observed.name)
        diff = diff_nffg(observed, target)

        removed = {spec.nf_id for spec in diff.removed_nfs}
        added = [spec.nf_id for spec in diff.added_nfs]

        # Heal decisions for FAILED instances that stay in the graph.
        heal_restart: list[str] = []
        heal_recreate: list[str] = []
        if not teardown:
            for nf_id, instance in instances.items():
                if instance.is_failed and nf_id not in removed:
                    if self._heal_attempts.get((graph_id, nf_id), 0) == 0:
                        heal_restart.append(nf_id)
                    else:
                        heal_recreate.append(nf_id)
        torn = removed | set(heal_recreate)

        # Rules to delete: explicitly removed/changed ones, plus every
        # installed rule touching an NF about to lose its ports.
        installed = (self.steering.installed_rules(graph_id)
                     if network_exists else {})
        doomed: list[str] = [rule.rule_id for rule in diff.removed_rules]
        reinstall: list[FlowRule] = []
        if torn:
            desired_rules = ({rule.rule_id: rule
                              for rule in target.flow_rules})
            for rule_id, rule in installed.items():
                if rule_id in doomed or not _rule_touches(rule, torn):
                    continue
                doomed.append(rule_id)
                kept = desired_rules.get(rule_id)
                if kept is not None:
                    reinstall.append(kept)

        if not network_exists and not teardown:
            steps.append(PlanStep("create-network"))
        for rule_id in doomed:
            steps.append(PlanStep("delete-rule", rule_id=rule_id))
        if teardown:
            for nf_id in instances:
                if instances[nf_id].is_running:
                    steps.append(PlanStep("stop", nf_id=nf_id))
            if network_exists:
                steps.append(PlanStep("destroy-network"))
            for nf_id in list(instances):
                steps.append(PlanStep("destroy", nf_id=nf_id))
            return plan
        for nf_id in sorted(removed):
            if nf_id in instances and instances[nf_id].is_running:
                steps.append(PlanStep("stop", nf_id=nf_id))
        for nf_id in sorted(removed):
            if nf_id in instances:
                steps.append(PlanStep("destroy", nf_id=nf_id))
        for nf_id in heal_recreate:
            steps.append(PlanStep("destroy", nf_id=nf_id,
                                  detail="heal: recreate"))

        # Bring-up: new NFs, recreated NFs, and resumed partial ones.
        for nf_id in added:
            if record is None or nf_id not in record.placements:
                steps.append(PlanStep("place", nf_id=nf_id))
            steps.append(PlanStep("create", nf_id=nf_id))
            steps.append(PlanStep("configure", nf_id=nf_id))
        for nf_id in heal_recreate:
            steps.append(PlanStep("place", nf_id=nf_id,
                                  detail="heal: recreate"))
            steps.append(PlanStep("create", nf_id=nf_id,
                                  detail="heal: recreate"))
            steps.append(PlanStep("configure", nf_id=nf_id,
                                  detail="heal: recreate"))
        resumed: list[str] = []
        for nf_id, instance in instances.items():
            if nf_id in torn:
                continue
            if instance.state is InstanceState.CREATED:
                steps.append(PlanStep("configure", nf_id=nf_id,
                                      detail="resume"))
                resumed.append(nf_id)
        reconfigured = {spec.nf_id for spec in diff.reconfigured_nfs}
        for nf_id in sorted(reconfigured - set(resumed) - torn):
            if nf_id in instances and instances[nf_id].is_running:
                steps.append(PlanStep("reconfigure", nf_id=nf_id))
        for nf_id in heal_restart:
            steps.append(PlanStep("restart", nf_id=nf_id,
                                  detail="heal: restart in place"))

        # Rules before starts (deploy semantics: an NF never comes up
        # without its steering in place).
        for rule in diff.added_rules:
            steps.append(PlanStep("install-rule", rule_id=rule.rule_id))
        for rule in reinstall:
            steps.append(PlanStep("install-rule", rule_id=rule.rule_id,
                                  detail="reinstall"))
        for nf_id in added:
            steps.append(PlanStep("start", nf_id=nf_id))
        for nf_id in heal_recreate:
            steps.append(PlanStep("start", nf_id=nf_id,
                                  detail="heal: recreate"))
        for nf_id, instance in instances.items():
            if nf_id in torn or nf_id in added:
                continue
            if instance.state in (InstanceState.CONFIGURED,
                                  InstanceState.STOPPED) \
                    or nf_id in resumed:
                steps.append(PlanStep("start", nf_id=nf_id,
                                      detail="resume"))
        return plan

    # -- step execution ----------------------------------------------------------
    def _instantiate(self, graph_id: str, spec: NfInstanceSpec,
                     decision: PlacementDecision) -> NfInstance:
        template = self.placement.repository.get(decision.template_name)
        impl = decision.implementation
        if impl.image not in self.images:
            raise ReconcileError(
                f"{spec.nf_id}: image {impl.image!r} missing from "
                f"repository")
        allocation = self.accountant.allocate(
            owner=f"{graph_id}/{spec.nf_id}", cpu_cores=impl.cpu_cores,
            ram_mb=impl.ram_mb, disk_mb=impl.disk_mb)
        instance_spec = InstanceSpec(
            instance_id=f"{graph_id}-{spec.nf_id}",
            graph_id=graph_id,
            nf_id=spec.nf_id,
            template_name=template.name,
            functional_type=template.functional_type,
            logical_ports=template.ports,
            implementation=impl,
            config=spec.config_dict())
        try:
            instance = self.compute.create(instance_spec)
        except Exception:
            self.accountant.release(allocation)
            raise
        instance.allocation = allocation
        try:
            self.steering.attach_instances(graph_id,
                                           {spec.nf_id: instance})
        except Exception:
            self.compute.destroy(instance.instance_id)
            if instance.allocation is not None \
                    and not instance.allocation.released:
                self.accountant.release(instance.allocation)
            raise
        return instance

    def _destroy_instance(self, record: DeployedGraph, nf_id: str) -> None:
        # The record is only updated after the driver verbs succeed, so
        # a failing destroy leaves the observed state still owning the
        # instance and the next tick retries it.
        instance = record.instances[nf_id]
        if instance.is_running:
            self.compute.stop(instance.instance_id)
        if record.graph_id in self.steering.graphs:
            self.steering.detach_instance(record.graph_id, nf_id, instance)
        self.compute.destroy(instance.instance_id)
        if instance.allocation is not None \
                and not instance.allocation.released:
            self.accountant.release(instance.allocation)
        record.instances.pop(nf_id, None)
        record.placements.pop(nf_id, None)
        record.realized_nfs.pop(nf_id, None)
        if instance.shared:
            self.steering.prune_dead_trunks()

    def _sync_rule_count(self, record: DeployedGraph) -> None:
        if record.graph_id in self.steering.graphs:
            record.rules_installed = len(
                self.steering.installed_rules(record.graph_id))
        else:
            record.rules_installed = 0

    def _execute(self, record: DeployedGraph, step: PlanStep) -> None:
        graph_id = record.graph_id
        desired = self.desired.get(graph_id)
        kind = step.kind
        if kind == "create-network":
            self.steering.create_graph_network(graph_id)
        elif kind == "delete-rule":
            self.steering.uninstall_rule(graph_id, step.rule_id)
            self._sync_rule_count(record)
        elif kind == "stop":
            instance = record.instances[step.nf_id]
            if instance.is_running:
                self.compute.stop(instance.instance_id)
        elif kind == "destroy-network":
            self.steering.remove_graph_network(graph_id)
            record.rules_installed = 0
        elif kind == "destroy":
            self._destroy_instance(record, step.nf_id)
        elif kind == "place":
            spec = desired.nf(step.nf_id)
            record.placements[step.nf_id] = \
                self.placement.decide_one(spec)
        elif kind == "create":
            spec = desired.nf(step.nf_id)
            decision = record.placements[step.nf_id]
            instance = self._instantiate(graph_id, spec, decision)
            record.instances[step.nf_id] = instance
            record.realized_nfs[step.nf_id] = spec
        elif kind == "configure":
            spec = desired.nf(step.nf_id)
            instance = record.instances[step.nf_id]
            instance.spec.config.clear()
            instance.spec.config.update(spec.config_dict())
            self.compute.configure(instance.instance_id)
            record.realized_nfs[step.nf_id] = spec
        elif kind == "reconfigure":
            spec = desired.nf(step.nf_id)
            instance = record.instances[step.nf_id]
            self.compute.update(instance.instance_id, spec.config_dict())
            record.realized_nfs[step.nf_id] = spec
        elif kind == "restart":
            instance = record.instances[step.nf_id]
            self.compute.restart(instance.instance_id)
            verdict = self.compute.health(instance.instance_id)
            if not verdict.healthy:
                raise ReconcileError(
                    f"{step.nf_id}: restart did not recover "
                    f"({verdict.detail})")
            self.heals += 1
            event = self.journal.append(graph_id, "healed",
                                        nf_id=step.nf_id,
                                        detail="restarted in place")
            if self.tracer is not None:
                self.tracer.anomaly("heal",
                                    detail=f"{step.nf_id} restarted "
                                           f"in place",
                                    seq=event.seq, graph_id=graph_id)
        elif kind == "install-rule":
            rule = next(r for r in desired.flow_rules
                        if r.rule_id == step.rule_id)
            self.steering.install_rules(desired, record.instances, [rule])
            self._sync_rule_count(record)
        elif kind == "start":
            instance = record.instances[step.nf_id]
            if not instance.is_running:
                self.compute.start(instance.instance_id)
            if step.detail.startswith("heal"):
                self.heals += 1
                event = self.journal.append(graph_id, "healed",
                                            nf_id=step.nf_id,
                                            detail="recreated")
                if self.tracer is not None:
                    self.tracer.anomaly("heal",
                                        detail=f"{step.nf_id} recreated",
                                        seq=event.seq, graph_id=graph_id)
        else:  # pragma: no cover - kind union is closed
            raise ReconcileError(f"unknown plan step kind {kind!r}")

    # -- the loop ----------------------------------------------------------------
    def tick(self, graph_id: str) -> Plan:
        """One detect-plan-execute pass; returns the (annotated) plan.

        Serialized per graph: a REST deploy, the control loop's shard
        worker and a manual ``repro graph reconcile`` can all tick the
        same graph_id, and interleaved plan executions would double-run
        steps compiled against a state another thread already changed.
        """
        with self.lock(graph_id):
            return self._tick_locked(graph_id)

    def _tick_locked(self, graph_id: str) -> Plan:
        self.ticks_run += 1
        record = self.observed.get(graph_id)
        if record is not None:
            self.check_health(graph_id)
        desired = self.desired.get(graph_id)
        if record is None and desired is not None:
            record = DeployedGraph(graph=desired)
            self.observed[graph_id] = record
        tracer = self.tracer
        if tracer is not None:
            plan_started = time.perf_counter()
            plan = self.plan(graph_id)
            tracer.histograms.observe("reconcile_plan", (),
                                      time.perf_counter() - plan_started)
        else:
            plan = self.plan(graph_id)
        self.last_plans[graph_id] = plan
        if plan.steps:
            plan_event = self.journal.append(graph_id, "plan",
                                             detail=plan.summary())
            # Executing steps touches *node-shared* layers — the
            # resource accountant, LSI-0's port table, the steering
            # registries, the drivers — which per-graph locks do not
            # cover when two shard workers execute structural steps for
            # different graphs at once.  One node-wide mutex around
            # execution closes that; the common steady-state tick (all
            # converged, empty plan) never takes it, so a sharded fleet
            # still probes and plans in parallel.
            with self.execution_lock:
                self._execute_steps(graph_id, record, plan,
                                    plan_seq=plan_event.seq)
        else:
            self._execute_steps(graph_id, record, plan)
        desired = self.desired.get(graph_id)
        if record is not None and desired is not None:
            record.graph = desired
        if plan.converged and record is not None:
            # All instances passed this tick's health probe: forget the
            # escalation counters (a RUNNING state alone is not enough —
            # a half-successful restart leaves RUNNING but unhealthy).
            for nf_id in record.instances:
                self._heal_attempts.pop((graph_id, nf_id), None)
        if desired is None and record is not None \
                and not record.instances \
                and graph_id not in self.steering.graphs \
                and plan.failed_step is None:
            del self.observed[graph_id]
            self._drop_heal_attempts(graph_id)
            self.journal.append(graph_id, "removed")
        if plan.converged and self.journal.last_kind(graph_id) \
                not in ("", "converged"):
            # A re-probe of an already-converged graph is not news.
            self.journal.append(graph_id, "converged")
        return plan

    def _execute_steps(self, graph_id: str,
                       record: "Optional[DeployedGraph]",
                       plan: Plan,
                       plan_seq: Optional[int] = None) -> None:
        tracer = self.tracer
        plan_span = None
        if tracer is not None and plan.steps:
            plan_span = tracer.start_span("reconcile.plan", seq=plan_seq,
                                          graph=graph_id,
                                          steps=len(plan.steps))
        for step in plan.steps:
            step_span = None
            if tracer is not None:
                step_span = tracer.start_span(f"step.{step.kind}",
                                              parent=plan_span,
                                              graph=graph_id,
                                              nf=step.nf_id,
                                              rule=step.rule_id)
            try:
                self._execute(record, step)
            except Exception as exc:
                step.status = "failed"
                step.error = str(exc)
                event = self.journal.append(graph_id, "step-failed",
                                            nf_id=step.nf_id,
                                            rule_id=step.rule_id,
                                            detail=f"{step.kind}: {exc}")
                if step_span is not None:
                    tracer.histograms.observe(
                        "reconcile_step", (step.kind,),
                        time.perf_counter() - step_span.start_wall)
                    tracer.end_span(step_span, seq=event.seq,
                                    error=str(exc))
                key = (graph_id, step.nf_id)
                if step.nf_id and (
                        step.detail.startswith("heal")
                        or step.kind == "restart"
                        # A failed recreate leaves the NF looking like a
                        # plain bring-up next tick; while its heal
                        # counter is live, those failures are still
                        # heal failures.
                        or key in self._heal_attempts):
                    attempts = self._heal_attempts.get(key, 0) + 1
                    self._heal_attempts[key] = attempts
                    if attempts == self.escalate_after \
                            and self.escalation is not None:
                        event = self.journal.append(
                            graph_id, "heal-escalated", nf_id=step.nf_id,
                            detail=f"{attempts} failed heal attempts; "
                                   f"deferring to the fleet layer")
                        if tracer is not None:
                            tracer.anomaly(
                                "heal-escalated",
                                detail=f"{step.nf_id}: {attempts} failed "
                                       f"heal attempts",
                                seq=event.seq, graph_id=graph_id)
                        self.escalation(graph_id, step.nf_id, str(exc))
                break
            step.status = "done"
            event = self.journal.append(graph_id, "step-ok",
                                        nf_id=step.nf_id,
                                        rule_id=step.rule_id,
                                        detail=step.describe())
            if step_span is not None:
                tracer.histograms.observe(
                    "reconcile_step", (step.kind,),
                    time.perf_counter() - step_span.start_wall)
                tracer.end_span(step_span, seq=event.seq)
        if plan_span is not None:
            tracer.end_span(plan_span)

    def reconcile(self, graph_id: str,
                  max_ticks: Optional[int] = None) -> ReconcileResult:
        """Tick until converged; raises :class:`ReconcileError` when a
        tick makes no progress or the budget runs out.

        Holds the graph lock across the whole convergence run, so a
        caller that was promised "converged" cannot have the goalposts
        moved mid-run by a concurrent desired-state write.
        """
        with self.lock(graph_id):
            return self._reconcile_locked(graph_id, max_ticks)

    def _reconcile_locked(self, graph_id: str,
                          max_ticks: Optional[int]) -> ReconcileResult:
        budget = max_ticks if max_ticks is not None else self.max_ticks
        executed = 0
        last_failure: Optional[tuple] = None
        for tick_no in range(1, budget + 1):
            plan = self.tick(graph_id)
            if plan.converged:
                return ReconcileResult(graph_id=graph_id, converged=True,
                                       ticks=tick_no,
                                       steps_executed=executed)
            executed += plan.done_count
            failed = plan.failed_step
            if failed is not None and plan.done_count == 0:
                # A failed step can still be progress — a failed
                # restart escalates the next plan to a recreate — so
                # only the *same* failure twice in a row is "stuck".
                signature = (failed.kind, failed.target, failed.error)
                if signature == last_failure:
                    raise ReconcileError(
                        f"graph {graph_id!r} stuck at step "
                        f"'{failed.describe()}': {failed.error}")
                last_failure = signature
            else:
                last_failure = None
        raise ReconcileError(
            f"graph {graph_id!r} did not converge within {budget} ticks")

    def _drop_heal_attempts(self, graph_id: str) -> None:
        for key in [key for key in self._heal_attempts
                    if key[0] == graph_id]:
            del self._heal_attempts[key]

    def forget(self, graph_id: str, teardown: bool = True) -> bool:
        """Drop a graph's desired state and clean up its remains.

        With ``teardown`` (the default) the engine first converges to
        empty; if that teardown *fails*, the observed record is kept —
        its instances and allocations are real, and silently dropping
        the record would leak them with nothing left to retry — and a
        later :meth:`reconcile` resumes the cleanup.  ``teardown=False``
        is the explicit abandon-as-is escape hatch (no verbs executed,
        record dropped regardless).  Returns True once the record is
        gone.
        """
        with self.lock(graph_id):
            return self._forget_locked(graph_id, teardown)

    def _forget_locked(self, graph_id: str, teardown: bool) -> bool:
        self.clear_desired(graph_id)
        if teardown:
            try:
                self.reconcile(graph_id)
            except ReconcileError as exc:
                self.journal.append(graph_id, "abandon-failed",
                                    detail=str(exc))
                return graph_id not in self.observed
        if self.observed.pop(graph_id, None) is not None:
            self.journal.append(graph_id, "abandoned")
        self._drop_heal_attempts(graph_id)
        return True
