"""Multi-node orchestration: a fleet of compute nodes under one roof.

The paper's setting is "a distributed infrastructure consisting of
heterogeneous devices" (§1): many CPEs at subscribers' homes plus NSP
data-center servers.  This module adds the thin overarching layer the
un-orchestrator ecosystem (FROG/UNIFY) placed above per-node local
orchestrators:

* a registry of :class:`~repro.core.node.ComputeNode` instances;
* graph-level placement: each NF-FG is deployed onto the best node
  that can host *all* of its NFs (graphs that must span CPE + DC are
  expressed as one graph per domain, linked by endpoints — the same
  convention the UNIFY demos used);
* fleet-wide status aggregation;
* node-level failure handling: a node marked down is excluded from
  placement, and :meth:`MultiNodeOrchestrator.reconcile` re-places its
  graphs onto another feasible node, selected through the
  :class:`~repro.catalog.scheduler.VnfScheduler` over per-node
  :class:`~repro.catalog.scheduler.NodeDescriptor` views of the live
  headroom.  Every fleet-level transition lands in the same kind of
  append-only journal the per-node reconciler keeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.resolver import ResolutionError
from repro.catalog.scheduler import NodeDescriptor, PlacementError, \
    VnfScheduler
from repro.core.node import ComputeNode
from repro.core.orchestrator import DeployedGraph, OrchestrationError
from repro.core.reconciler import EventJournal
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeClass

__all__ = ["MultiNodeOrchestrator"]


@dataclass
class _GraphLocation:
    node_name: str
    record: DeployedGraph
    #: the *raw* (unexpanded) graph as last deployed — the re-place
    #: fallback when the node's ``desired_raw`` is unreachable.  The
    #: record's own ``graph`` is rebound to the replica-expanded form
    #: by reconciler ticks and would fail validation on redeploy.
    graph: Nffg = None  # type: ignore[assignment]


class MultiNodeOrchestrator:
    """Places whole NF-FGs onto the cheapest feasible node."""

    def __init__(self) -> None:
        self._nodes: dict[str, ComputeNode] = {}
        self._graphs: dict[str, _GraphLocation] = {}
        self._down: set[str] = set()
        #: graphs whose node-local reconciler gave up healing an NF
        #: (restart and recreate kept failing) and asked the fleet to
        #: re-place the whole graph elsewhere; drained by
        #: :meth:`reconcile`.
        self._escalated: set[str] = set()
        self.journal = EventJournal()
        self.replacements = 0
        self.escalations_received = 0

    # -- fleet management ----------------------------------------------------------
    def add_node(self, node: ComputeNode) -> None:
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node
        # Node-local heal escalation: the node's reconciler calls back
        # here when in-place healing keeps failing, so the next fleet
        # reconcile can re-place the graph without anyone marking the
        # whole node down.
        node.orchestrator.reconciler.escalation = \
            lambda graph_id, nf_id, detail, _name=node.name: \
            self._record_escalation(_name, graph_id, nf_id, detail)

    def _record_escalation(self, node_name: str, graph_id: str,
                           nf_id: str, detail: str) -> None:
        location = self._graphs.get(graph_id)
        if location is None or location.node_name != node_name:
            return  # not a fleet-managed graph (or already moved)
        self.escalations_received += 1
        self._escalated.add(graph_id)
        self.journal.append(graph_id, "heal-escalated", nf_id=nf_id,
                            detail=f"node {node_name}: {detail}")

    def node(self, name: str) -> ComputeNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node {name!r} in the fleet") from None

    def nodes(self) -> list[ComputeNode]:
        return list(self._nodes.values())

    # -- node health ---------------------------------------------------------------
    def mark_node_down(self, name: str) -> None:
        """Declare a whole node failed (power loss, link cut, ...).

        The node stops receiving placements immediately; its graphs are
        re-placed on the next :meth:`reconcile`.
        """
        self.node(name)  # raises on unknown
        if name in self._down:
            return
        self._down.add(name)
        for graph_id, location in self._graphs.items():
            if location.node_name == name:
                self.journal.append(graph_id, "node-down",
                                    detail=f"node {name} marked down")

    def mark_node_up(self, name: str) -> None:
        """Bring a node back into rotation.

        Graphs that were re-placed elsewhere while the node was down
        are cleaned off it (modelling the reboot wiping their crashed
        remains) so the returning node's capacity is schedulable again;
        a cleanup that cannot complete keeps its record visible on the
        node for a later reconcile rather than silently leaking.
        """
        node = self.node(name)
        self._down.discard(name)
        for graph_id in list(node.orchestrator.list_graphs()):
            location = self._graphs.get(graph_id)
            if location is None or location.node_name != name:
                node.orchestrator.reconciler.forget(graph_id)

    def node_is_up(self, name: str) -> bool:
        self.node(name)
        return name not in self._down

    # -- placement ---------------------------------------------------------------------
    def _feasible(self, node: ComputeNode, graph: Nffg) -> bool:
        """Can the node's resolver satisfy every NF of the graph, and do
        the aggregate resources fit its current headroom?"""
        cpu = ram = disk = 0.0
        for spec in graph.nfs:
            if spec.template not in node.repository:
                return False
            try:
                decision = node.placement.decide_one(spec)
            except ResolutionError:
                return False
            impl = decision.implementation
            cpu += impl.cpu_cores * spec.replicas
            ram += impl.ram_mb * spec.replicas
            disk += impl.disk_mb * spec.replicas
        for endpoint in graph.endpoints:
            if not node.steering.has_physical_interface(endpoint.interface):
                return False
        return node.accountant.fits(cpu, ram, disk)

    def _rank(self, node: ComputeNode) -> tuple:
        # Edge first (no WAN hairpin), then the emptiest node.
        edge = 0 if node.capabilities.node_class is NodeClass.CPE else 1
        return (edge, node.accountant.ram_used_mb)

    def _descriptor(self, node: ComputeNode) -> NodeDescriptor:
        """A scheduler view of the node with its *live* headroom."""
        descriptor = NodeDescriptor(name=node.name,
                                    capabilities=node.capabilities,
                                    resolver=node.placement.resolver)
        descriptor.cpu_free = node.accountant.cpu_free
        descriptor.ram_free_mb = node.accountant.ram_free_mb
        return descriptor

    def _schedule_target(self, graph: Nffg,
                         exclude: set[str]) -> Optional[ComputeNode]:
        """Pick a node that can host the *whole* graph right now.

        Each candidate is probed through a single-node
        :class:`VnfScheduler` over its live-headroom descriptor — the
        same feasibility logic (resolver + capacity, pinned-first
        greedy order) that splits graphs across CPE and DC.
        """
        candidates = sorted(
            (node for name, node in self._nodes.items()
             if name not in exclude and name not in self._down),
            key=self._rank)
        for node in candidates:
            if any(not node.steering.has_physical_interface(ep.interface)
                   for ep in graph.endpoints):
                continue
            try:
                templates = [node.repository.get(spec.template)
                             for spec in graph.nfs
                             for _ in range(spec.replicas)]
            except KeyError:
                continue
            try:
                VnfScheduler([self._descriptor(node)]).schedule(templates)
            except (PlacementError, ResolutionError):
                continue
            return node
        return None

    def deploy(self, graph: Nffg,
               node_name: Optional[str] = None) -> DeployedGraph:
        """Deploy on ``node_name`` or on the best feasible node."""
        if graph.graph_id in self._graphs:
            raise OrchestrationError(
                f"graph {graph.graph_id!r} is already deployed on "
                f"{self._graphs[graph.graph_id].node_name}")
        if node_name is not None:
            if node_name in self._down:
                raise OrchestrationError(
                    f"node {node_name!r} is marked down")
            candidates = [self.node(node_name)]
        else:
            candidates = sorted(
                (node for name, node in self._nodes.items()
                 if name not in self._down),
                key=self._rank)
            candidates = [node for node in candidates
                          if self._feasible(node, graph)]
            if not candidates:
                raise OrchestrationError(
                    f"no node in the fleet can host graph "
                    f"{graph.graph_id!r}")
        record = candidates[0].deploy(graph)
        self._graphs[graph.graph_id] = _GraphLocation(
            node_name=candidates[0].name, record=record, graph=graph)
        return record

    def undeploy(self, graph_id: str) -> DeployedGraph:
        location = self._graphs.pop(graph_id, None)
        self._escalated.discard(graph_id)
        if location is None:
            raise OrchestrationError(f"no deployed graph {graph_id!r}")
        if location.node_name in self._down:
            # The hosting node is dead: nothing to execute there, just
            # drop the fleet-level booking.
            self.journal.append(graph_id, "abandoned",
                                detail=f"host {location.node_name} down")
            return location.record
        return self.node(location.node_name).undeploy(graph_id)

    def locate(self, graph_id: str) -> str:
        location = self._graphs.get(graph_id)
        if location is None:
            raise OrchestrationError(f"no deployed graph {graph_id!r}")
        return location.node_name

    # -- fleet reconciliation ------------------------------------------------------------
    def _desired_for(self, graph_id: str,
                     location: _GraphLocation) -> Nffg:
        """The *raw* graph to redeploy elsewhere.

        The hosting node's ``desired_raw`` is freshest (the autoscaler
        edits it); the fleet's own copy from deploy time is the
        fallback.  Never the observed record's graph — ticks rebind it
        to the replica-expanded form, whose ``@``-ids would fail
        validation on redeploy.
        """
        desired = self.node(location.node_name).orchestrator \
            .reconciler.desired_raw.get(graph_id)
        if desired is not None:
            return desired
        return (location.graph if location.graph is not None
                else location.record.graph)

    def _commit_replacement(self, graph_id: str, old_node: str,
                            target: ComputeNode, record: DeployedGraph,
                            desired: Nffg, detail: str) -> None:
        """Book a completed re-placement (both rescue paths share it)."""
        self._graphs[graph_id] = _GraphLocation(
            node_name=target.name, record=record, graph=desired)
        self._escalated.discard(graph_id)
        self.replacements += 1
        self.journal.append(graph_id, "re-placed",
                            detail=f"{old_node} -> {target.name}{detail}")

    def reconcile(self) -> list[str]:
        """Re-place every graph stranded on a down node; heal the rest.

        Returns the graph_ids that were moved.  Graphs whose desired
        state cannot be hosted anywhere stay booked on the dead node
        (and journaled) so a later tick — after capacity returns — can
        still rescue them.
        """
        moved: list[str] = []
        for graph_id, location in list(self._graphs.items()):
            if location.node_name not in self._down:
                continue
            desired = self._desired_for(graph_id, location)
            target = self._schedule_target(
                desired, exclude={location.node_name})
            if target is None:
                self.journal.append(
                    graph_id, "re-place-failed",
                    detail=f"no feasible node (host "
                           f"{location.node_name} down)")
                continue
            record = target.deploy(desired)
            # Committing also clears any standing node-local
            # escalation: the rescued copy is healthy.
            self._commit_replacement(graph_id, location.node_name,
                                     target, record, desired, "")
            moved.append(graph_id)
        # Per-node healing for the nodes that are up.  A node whose
        # heals keep failing escalates into self._escalated here.
        for name, node in self._nodes.items():
            if name in self._down:
                continue
            for graph_id in node.orchestrator.list_graphs():
                try:
                    node.orchestrator.reconcile(graph_id)
                except OrchestrationError:
                    pass  # journaled by the node's reconciler
        moved.extend(self._replace_escalated())
        return moved

    def _replace_escalated(self) -> list[str]:
        """Re-place graphs whose node-local healing gave up.

        The target copy is deployed *first*; only once it is live is
        the sick node's copy retired (best-effort teardown — whatever
        the broken driver cannot release stays as an observed record
        with no desired state, which the node's own later ticks keep
        retrying, so nothing leaks silently).  A failed target deploy
        therefore never costs the existing copy, and never aborts the
        re-placement of other escalated graphs.  Graphs with no
        feasible target stay escalated and are retried on the next
        fleet reconcile.
        """
        moved: list[str] = []
        for graph_id in sorted(self._escalated):
            location = self._graphs.get(graph_id)
            if location is None:
                self._escalated.discard(graph_id)
                continue
            if location.node_name in self._down:
                # The down-node rescue path owns (and already
                # attempted) this graph's re-placement.
                continue
            source = self.node(location.node_name)
            desired = self._desired_for(graph_id, location)
            target = self._schedule_target(
                desired, exclude={location.node_name})
            if target is None:
                self.journal.append(
                    graph_id, "re-place-failed",
                    detail=f"no feasible node (escalated off "
                           f"{location.node_name})")
                continue
            try:
                record = target.deploy(desired)
            except OrchestrationError as exc:
                self.journal.append(
                    graph_id, "re-place-failed",
                    detail=f"deploy on {target.name} failed: {exc}")
                continue
            try:
                source.orchestrator.reconciler.forget(graph_id)
            except Exception as exc:  # teardown is best-effort
                self.journal.append(
                    graph_id, "abandon-failed",
                    detail=f"teardown on {location.node_name}: {exc}")
            self._commit_replacement(graph_id, location.node_name,
                                     target, record, desired,
                                     " (heal escalation)")
            moved.append(graph_id)
        return moved

    # -- status ------------------------------------------------------------------------
    def fleet_status(self) -> dict:
        return {
            "nodes": {
                name: {
                    "class": node.capabilities.node_class.value,
                    "up": name not in self._down,
                    "graphs": node.orchestrator.list_graphs(),
                    "utilisation": node.accountant.utilisation(),
                }
                for name, node in self._nodes.items()
            },
            "graphs": {graph_id: location.node_name
                       for graph_id, location in self._graphs.items()},
        }
