"""Multi-node orchestration: a fleet of compute nodes under one roof.

The paper's setting is "a distributed infrastructure consisting of
heterogeneous devices" (§1): many CPEs at subscribers' homes plus NSP
data-center servers.  This module adds the thin overarching layer the
un-orchestrator ecosystem (FROG/UNIFY) placed above per-node local
orchestrators:

* a registry of :class:`~repro.core.node.ComputeNode` instances;
* graph-level placement: each NF-FG is deployed onto the best node
  that can host *all* of its NFs (graphs that must span CPE + DC are
  expressed as one graph per domain, linked by endpoints — the same
  convention the UNIFY demos used);
* fleet-wide status aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.resolver import ResolutionError
from repro.core.node import ComputeNode
from repro.core.orchestrator import DeployedGraph, OrchestrationError
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeClass

__all__ = ["MultiNodeOrchestrator"]


@dataclass
class _GraphLocation:
    node_name: str
    record: DeployedGraph


class MultiNodeOrchestrator:
    """Places whole NF-FGs onto the cheapest feasible node."""

    def __init__(self) -> None:
        self._nodes: dict[str, ComputeNode] = {}
        self._graphs: dict[str, _GraphLocation] = {}

    # -- fleet management ----------------------------------------------------------
    def add_node(self, node: ComputeNode) -> None:
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node

    def node(self, name: str) -> ComputeNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node {name!r} in the fleet") from None

    def nodes(self) -> list[ComputeNode]:
        return list(self._nodes.values())

    # -- placement ---------------------------------------------------------------------
    def _feasible(self, node: ComputeNode, graph: Nffg) -> bool:
        """Can the node's resolver satisfy every NF of the graph, and do
        the aggregate resources fit its current headroom?"""
        cpu = ram = disk = 0.0
        for spec in graph.nfs:
            if spec.template not in node.repository:
                return False
            try:
                decision = node.placement.decide_one(spec)
            except ResolutionError:
                return False
            impl = decision.implementation
            cpu += impl.cpu_cores
            ram += impl.ram_mb
            disk += impl.disk_mb
        for endpoint in graph.endpoints:
            if endpoint.interface not in \
                    node.steering._physical_ports:  # noqa: SLF001
                return False
        return node.accountant.fits(cpu, ram, disk)

    def _rank(self, node: ComputeNode) -> tuple:
        # Edge first (no WAN hairpin), then the emptiest node.
        edge = 0 if node.capabilities.node_class is NodeClass.CPE else 1
        return (edge, node.accountant.ram_used_mb)

    def deploy(self, graph: Nffg,
               node_name: Optional[str] = None) -> DeployedGraph:
        """Deploy on ``node_name`` or on the best feasible node."""
        if graph.graph_id in self._graphs:
            raise OrchestrationError(
                f"graph {graph.graph_id!r} is already deployed on "
                f"{self._graphs[graph.graph_id].node_name}")
        if node_name is not None:
            candidates = [self.node(node_name)]
        else:
            candidates = sorted(self._nodes.values(), key=self._rank)
            candidates = [node for node in candidates
                          if self._feasible(node, graph)]
            if not candidates:
                raise OrchestrationError(
                    f"no node in the fleet can host graph "
                    f"{graph.graph_id!r}")
        record = candidates[0].deploy(graph)
        self._graphs[graph.graph_id] = _GraphLocation(
            node_name=candidates[0].name, record=record)
        return record

    def undeploy(self, graph_id: str) -> DeployedGraph:
        location = self._graphs.pop(graph_id, None)
        if location is None:
            raise OrchestrationError(f"no deployed graph {graph_id!r}")
        return self.node(location.node_name).undeploy(graph_id)

    def locate(self, graph_id: str) -> str:
        location = self._graphs.get(graph_id)
        if location is None:
            raise OrchestrationError(f"no deployed graph {graph_id!r}")
        return location.node_name

    # -- status ------------------------------------------------------------------------
    def fleet_status(self) -> dict:
        return {
            "nodes": {
                name: {
                    "class": node.capabilities.node_class.value,
                    "graphs": node.orchestrator.list_graphs(),
                    "utilisation": node.accountant.utilisation(),
                }
                for name, node in self._nodes.items()
            },
            "graphs": {graph_id: location.node_name
                       for graph_id, location in self._graphs.items()},
        }
