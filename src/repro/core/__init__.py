"""Orchestration core: the local orchestrator of the NFV compute node.

This package wires the reproduction together into the node of Figure 1:

* :mod:`repro.core.placement` — per-NF VNF-vs-NNF decision;
* :mod:`repro.core.steering` — the traffic-steering manager: LSI-0
  classification, per-graph LSIs, virtual links, OpenFlow rule
  translation (including VLAN marking for shared NNFs);
* :mod:`repro.core.reconciler` — the desired-state engine: plan
  compilation, checkpointed execution, health-probed healing, and the
  append-only event journal;
* :mod:`repro.core.orchestrator` — deploy / update / undeploy of
  NF-FGs as thin wrappers over the reconciler;
* :mod:`repro.core.node` — the assembled compute node.
"""

from repro.core.node import ComputeNode
from repro.core.orchestrator import DeployedGraph, LocalOrchestrator, OrchestrationError
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.core.reconciler import (
    EventJournal,
    GraphEvent,
    Plan,
    PlanStep,
    ReconcileError,
    ReconcileResult,
    Reconciler,
)
from repro.core.steering import SteeringError, TrafficSteeringManager

__all__ = [
    "ComputeNode",
    "DeployedGraph",
    "EventJournal",
    "GraphEvent",
    "LocalOrchestrator",
    "OrchestrationError",
    "Plan",
    "PlanStep",
    "PlacementDecision",
    "PlacementPolicy",
    "ReconcileError",
    "ReconcileResult",
    "Reconciler",
    "SteeringError",
    "TrafficSteeringManager",
]
