"""Traffic steering: LSI-0, per-graph LSIs, virtual links, rule split.

Figure 1: "For each NF-FG a new software switch, called Logical Switch
Instance (LSI), is created in order to steer traffic among the
corresponding VNFs in the right order, while a base LSI is in charge of
classifying the traffic received by the node and delivering it to the
proper NF-FG-specific LSI."

Rule translation.  Every NF-FG big-switch rule names an input port and
an output port; each resolves to a *location* — (LSI, port number,
optional VLAN id).  Endpoints and shared-NNF trunks live on LSI-0,
dedicated NF ports on the graph's LSI:

* same LSI: one flow entry;
* across LSIs: the first segment pushes a per-rule *internal tag*
  before the virtual link, the second matches the tag on the far side
  and pops it — this is how LSI-0 "classifies" node traffic into the
  right graph LSI without re-parsing user headers twice.

Shared NNFs (paper §2): the adaptation layer assigned each
(graph, logical-port) a VLAN id; steering pushes that id right before
the trunk port and matches+pops it on traffic coming back.

Every action list this module emits is one of the fused shapes that
:func:`repro.switch.actions.compile_actions` specializes (``Output``,
``PushVlan+Output``, ``PopVlan+Output``, ``PopVlan+PushVlan+Output``,
and for replica groups ``SelectOutput`` / ``PopVlan+SelectOutput``),
so installed rules execute as straight-line closures with at most one
frame copy per hop — the per-hop switching cost the paper's model
charges stays flat no matter how many segments a rule spans.

Replicated NFs (``replicas=N`` in the graph, expanded by
:mod:`repro.nffg.replicas`): a rule whose destination is the replica
group installs a hash select-output over the group's ports in replica
order — 5-tuple flow affinity via the carried
:class:`~repro.net.builder.ParsedFrame` (zero extra parsing on the
batched path).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.compute.instances import NfInstance
from repro.linuxnet.devices import NetDevice
from repro.nffg.model import FlowRule, Nffg, PortRef
from repro.nffg.replicas import is_lb_rule_id, lb_state_group, replica_group
from repro.openflow.agent import SwitchAgent
from repro.openflow.channel import ControlChannel
from repro.openflow.controller import LsiController
from repro.switch.actions import Action, Output, PopVlan, PushVlan, \
    SelectOutput
from repro.switch.datapath import SwitchPort
from repro.switch.flowtable import FlowMatch
from repro.switch.lsi import LogicalSwitchInstance, VirtualLink

__all__ = ["GraphNetwork", "SteeringError", "TrafficSteeringManager"]

_INTERNAL_TAG_BASE = 3000
_INTERNAL_TAG_LIMIT = 4094


class SteeringError(Exception):
    """Unresolvable port reference or exhausted tag space."""


@dataclass
class Location:
    """Where a graph-level port ref physically attaches."""

    lsi: LogicalSwitchInstance
    port_no: int
    vid: Optional[int] = None   # tag expected on ingress / pushed on egress


@dataclass
class InstalledRule:
    """Book-keeping for one realized big-switch rule.

    ``segments`` lists every flow-mod the rule translated into —
    ``(controller, match, priority)`` triples — so the rule can later
    be removed *individually* with strict deletes instead of nuking the
    whole cookie.  This is what lets updates and healing touch only the
    rules that actually changed.
    """

    rule: FlowRule
    segments: list[tuple[LsiController, FlowMatch, int]] = \
        field(default_factory=list)
    #: internal vlink tag held by this rule (cross-LSI rules only);
    #: released back to the graph's pool on uninstall
    tag: Optional[int] = None


@dataclass
class GraphNetwork:
    """Steering state of one deployed graph."""

    graph_id: str
    lsi: LogicalSwitchInstance
    controller: LsiController
    link: VirtualLink
    cookie: int
    nf_ports: dict[tuple[str, str], SwitchPort] = field(default_factory=dict)
    base_link_port: Optional[SwitchPort] = None
    #: rule_id -> realized segments, the per-rule install registry
    installed: dict[str, InstalledRule] = field(default_factory=dict)
    #: internal tags currently marking frames on *this graph's* vlink.
    #: Tags only need to be unique per link (each graph has its own),
    #: so the pool is per-network — a global allocator capped the node
    #: at ~500 deployed graphs, which is exactly the fleet scale the
    #: control plane is meant to handle.
    used_tags: set[int] = field(default_factory=set)

    def allocate_tag(self) -> int:
        for tag in range(_INTERNAL_TAG_BASE, _INTERNAL_TAG_LIMIT + 1):
            if tag not in self.used_tags:
                self.used_tags.add(tag)
                return tag
        raise SteeringError("internal steering tag space exhausted")

    def release_tag(self, tag: Optional[int]) -> None:
        if tag is not None:
            self.used_tags.discard(tag)

    @property
    def rules_installed(self) -> int:
        """Number of currently realized rules (registry-derived, so it
        can never drift from the actual install state)."""
        return len(self.installed)


class TrafficSteeringManager:
    """Owns LSI-0, the graph LSIs and every OpenFlow controller."""

    def __init__(self) -> None:
        self.base = LogicalSwitchInstance("LSI-0")
        self.base_controller = self._wire_controller(self.base, "ctrl-lsi0")
        self.graphs: dict[str, GraphNetwork] = {}
        self._physical_ports: dict[str, SwitchPort] = {}
        self._trunk_ports: dict[str, SwitchPort] = {}
        self._cookies = itertools.count(1)
        #: Telemetry tracer propagated onto every LSI datapath (node
        #: ingress and per-graph) by :meth:`set_tracer`; graph LSIs
        #: created later inherit it in :meth:`create_graph_network`.
        self.tracer = None
        # Per-cookie fusion attribution on the node-ingress LSI: when
        # whole chains fuse at LSI-0, the owning graph's share of the
        # fused/dispatch counters is recovered from the flow cookie.
        self.base.datapath.fusion.track_cookies = True

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to LSI-0 and every existing graph LSI."""
        self.tracer = tracer
        self.base.datapath.tracer = tracer
        for network in self.graphs.values():
            network.lsi.datapath.tracer = tracer

    # -- wiring helpers ---------------------------------------------------------
    @staticmethod
    def _wire_controller(lsi: LogicalSwitchInstance,
                         name: str) -> LsiController:
        channel = ControlChannel(name=f"{name}-channel")
        SwitchAgent(lsi.datapath, channel)
        controller = LsiController(channel, name=name)
        lsi.controller = controller
        return controller

    def register_physical(self, device: NetDevice) -> SwitchPort:
        """Attach a node NIC to LSI-0 (done once at node bring-up)."""
        if device.name in self._physical_ports:
            raise SteeringError(f"interface {device.name} already on LSI-0")
        port = self.base.datapath.add_port(device.name, device=device)
        self._physical_ports[device.name] = port
        return port

    def _trunk_port(self, device: NetDevice) -> SwitchPort:
        """LSI-0 port for a shared-NNF trunk (idempotent)."""
        port = self._trunk_ports.get(device.name)
        if port is None:
            port = self.base.datapath.add_port(device.name, device=device)
            self._trunk_ports[device.name] = port
        return port

    # -- graph lifecycle -----------------------------------------------------------
    def create_graph_network(self, graph_id: str) -> GraphNetwork:
        if graph_id in self.graphs:
            raise SteeringError(f"graph {graph_id!r} already has an LSI")
        lsi = LogicalSwitchInstance(f"LSI-{graph_id}", graph_id=graph_id)
        lsi.datapath.tracer = self.tracer
        lsi.datapath.fusion.track_cookies = True
        controller = self._wire_controller(lsi, f"ctrl-{graph_id}")
        link = VirtualLink.connect(self.base.datapath, lsi.datapath,
                                   name=f"vl-{graph_id}")
        network = GraphNetwork(graph_id=graph_id, lsi=lsi,
                               controller=controller, link=link,
                               cookie=next(self._cookies),
                               base_link_port=link.far_port(
                                   self.base.datapath))
        self.graphs[graph_id] = network
        controller.handshake()
        if not self.base_controller.connected:
            self.base_controller.handshake()
        return network

    def attach_instances(self, graph_id: str,
                         instances: dict[str, NfInstance]) -> None:
        """Create LSI ports for every NF port of the graph."""
        network = self._network(graph_id)
        for nf_id, instance in instances.items():
            if instance.shared:
                # Trunk lives on LSI-0 and is shared across graphs.
                for logical in instance.spec.logical_ports:
                    device = instance.switch_devices[logical]
                    self._trunk_port(device)
                continue
            for logical in instance.spec.logical_ports:
                device = instance.switch_devices[logical]
                port = network.lsi.datapath.add_port(
                    f"{nf_id}:{logical}", device=device)
                network.nf_ports[(nf_id, logical)] = port

    def detach_instance(self, graph_id: str, nf_id: str,
                        instance: NfInstance) -> None:
        """Remove the graph-LSI ports of one NF (recreate/remove path).

        Shared NNFs keep their LSI-0 trunk here — it may serve other
        graphs; :meth:`prune_dead_trunks` reclaims it once the driver
        has actually torn the component down.
        """
        network = self._network(graph_id)
        if instance.shared:
            return
        for key in [key for key in network.nf_ports if key[0] == nf_id]:
            port = network.nf_ports.pop(key)
            if port.port_no in network.lsi.datapath.ports:
                network.lsi.datapath.remove_port(port.port_no)

    def prune_dead_trunks(self) -> int:
        """Drop LSI-0 trunk ports whose device was torn down.

        Called after destroying shared instances: when the native
        driver released the component, the trunk veth left the root
        namespace — keeping its port would silently blackhole a later
        re-share under the same name.  Returns how many went.
        """
        pruned = 0
        for name, port in list(self._trunk_ports.items()):
            device = port.device
            if device is not None and device.namespace is None:
                if port.port_no in self.base.datapath.ports:
                    self.base.datapath.remove_port(port.port_no)
                del self._trunk_ports[name]
                pruned += 1
        return pruned

    def remove_graph_network(self, graph_id: str) -> None:
        network = self._network(graph_id)
        # Fused programs first: nothing stale may run while the graph's
        # rules, ports and link are being torn down underneath it.
        self.invalidate_fusion()
        network.controller.flow_delete_by_cookie(network.cookie)
        self.base_controller.flow_delete_by_cookie(network.cookie)
        network.installed.clear()
        for port in list(network.lsi.datapath.ports.values()):
            network.lsi.datapath.remove_port(port.port_no)
        network.link.detach()
        # The base-side vlink port must go too.
        if network.base_link_port is not None:
            self.base.datapath.remove_port(network.base_link_port.port_no)
        self.base.datapath.fusion.cookie_stats.pop(network.cookie, None)
        del self.graphs[graph_id]

    def graph_network(self, graph_id: str) -> GraphNetwork:
        """Public per-graph steering state accessor.

        The reconciler (and anything else outside this module) goes
        through here — reaching for ``_network`` from other layers was
        a private-API leak.
        """
        return self._network(graph_id)

    def has_physical_interface(self, name: str) -> bool:
        """Whether ``name`` is a node NIC attached to LSI-0."""
        return name in self._physical_ports

    def _network(self, graph_id: str) -> GraphNetwork:
        try:
            return self.graphs[graph_id]
        except KeyError:
            raise SteeringError(f"no deployed graph {graph_id!r}") from None

    # -- rule translation ------------------------------------------------------------
    def install_graph_rules(self, graph: Nffg,
                            instances: dict[str, NfInstance]) -> int:
        """Translate and install every big-switch rule; returns count."""
        return self.install_rules(graph, instances, graph.flow_rules)

    def install_rules(self, graph: Nffg, instances: dict[str, NfInstance],
                      rules) -> int:
        """Install a *subset* of the graph's rules (targeted path).

        Reinstalling a rule_id that is already realized first removes
        its old segments, so the call is idempotent.  This is the
        primitive the reconciler uses to touch only added/changed rules
        and only a healed NF's rules — never the whole graph.
        """
        network = self._network(graph.graph_id)
        installed = 0
        for rule in rules:
            if rule.rule_id in network.installed:
                self.uninstall_rule(graph.graph_id, rule.rule_id)
            self._install_rule(network, graph, instances, rule)
            installed += 1
        if installed:
            # New segments may extend chains that previously dead-ended
            # (negative-cached traces): bump the engines so ingress
            # entries re-trace against the post-install rule set.
            self.invalidate_fusion()
        return installed

    def uninstall_rule(self, graph_id: str, rule_id: str) -> bool:
        """Strict-delete every segment of one realized rule.

        Fused-chain programs are dropped *before* the first strict
        delete reaches any table: a chain compiled through this rule's
        segments must never run again once any part of the rule is
        gone, even if a batch is mid-flight when the flow-mod lands
        (the remaining frames fall back to the per-hop path).
        """
        network = self._network(graph_id)
        realized = network.installed.pop(rule_id, None)
        if realized is None:
            return False
        self.invalidate_fusion()
        for controller, match, priority in realized.segments:
            controller.flow_delete(match, cookie=network.cookie,
                                   strict=True, priority=priority)
        network.release_tag(realized.tag)
        return True

    def installed_rules(self, graph_id: str) -> dict[str, FlowRule]:
        """rule_id -> realized FlowRule, the observed-rule view."""
        network = self._network(graph_id)
        return {rule_id: realized.rule
                for rule_id, realized in network.installed.items()}

    def _resolve(self, network: GraphNetwork, graph: Nffg,
                 instances: dict[str, NfInstance],
                 ref: PortRef) -> Location:
        if ref.kind == "endpoint":
            endpoint = graph.endpoint(ref.element)
            port = self._physical_ports.get(endpoint.interface)
            if port is None:
                raise SteeringError(
                    f"endpoint {ref.element!r}: interface "
                    f"{endpoint.interface!r} is not attached to LSI-0")
            return Location(lsi=self.base, port_no=port.port_no,
                            vid=endpoint.vlan_id)
        instance = instances.get(ref.element)
        if instance is None:
            raise SteeringError(f"no instance for NF {ref.element!r}")
        if instance.shared:
            device = instance.switch_devices[ref.port]
            port = self._trunk_port(device)
            return Location(lsi=self.base, port_no=port.port_no,
                            vid=instance.port_vlans[ref.port])
        port = network.nf_ports.get((ref.element, ref.port))
        if port is None:
            raise SteeringError(
                f"NF {ref.element!r} has no port {ref.port!r} on "
                f"{network.lsi.name}")
        return Location(lsi=network.lsi, port_no=port.port_no)

    def _resolve_lb_group(self, network: GraphNetwork,
                          instances: dict[str, NfInstance],
                          ref: PortRef) -> list[Location]:
        """Locations of every replica of ``ref.element``, replica order.

        The expansion layer leaves a load-balancer rule's output on the
        *base* nf_id; the realized destination is the whole replica
        group (``nf``, ``nf@1``, ...).  Replicas must be dedicated
        (non-shared) NFs on the graph's own LSI — a shared-NNF trunk
        multiplexes graphs by VLAN and cannot take a per-frame hash
        spread.
        """
        members = replica_group(instances, ref.element)
        if not members:
            raise SteeringError(f"no replica instances for NF "
                                f"{ref.element!r}")
        locations: list[Location] = []
        for nf_id in members:
            if instances[nf_id].shared:
                raise SteeringError(
                    f"replicated NF {ref.element!r} resolved to a shared "
                    f"NNF ({nf_id}); replicas must be dedicated instances")
            port = network.nf_ports.get((nf_id, ref.port))
            if port is None:
                raise SteeringError(
                    f"replica {nf_id!r} has no port {ref.port!r} on "
                    f"{network.lsi.name}")
            locations.append(Location(lsi=network.lsi,
                                      port_no=port.port_no))
        return locations

    @staticmethod
    def _match_fields(rule: FlowRule) -> dict:
        spec = rule.match
        fields: dict = {}
        if spec.eth_type is not None:
            fields["eth_type"] = spec.eth_type
        if spec.ip_src is not None:
            fields["ip_src"] = spec.ip_src
        if spec.ip_dst is not None:
            fields["ip_dst"] = spec.ip_dst
        if spec.ip_proto is not None:
            fields["ip_proto"] = spec.ip_proto
        if spec.tp_src is not None:
            fields["tp_src"] = spec.tp_src
        if spec.tp_dst is not None:
            fields["tp_dst"] = spec.tp_dst
        return fields

    def _controller_for(self, lsi: LogicalSwitchInstance) -> LsiController:
        if lsi is self.base:
            return self.base_controller
        return lsi.controller

    def _install_rule(self, network: GraphNetwork, graph: Nffg,
                      instances: dict[str, NfInstance],
                      rule: FlowRule) -> None:
        src = self._resolve(network, graph, instances, rule.match.port_in)
        # A load-balancer rule (replica expansion marked its id) spreads
        # its output over the whole replica group with 5-tuple-hash
        # affinity; everything else is the single-destination path.
        if is_lb_rule_id(rule.rule_id) and rule.output.kind == "vnf":
            group = self._resolve_lb_group(network, instances, rule.output)
            dst = group[0]
            spread: "Optional[tuple[int, ...]]" = tuple(
                location.port_no for location in group)
            # Stateful spread: the select consults a per-flow state
            # table keyed on what stays constant across scale events,
            # so established flows keep their owning replica when the
            # count changes.  Flows that predate the first scale-out
            # (no entry, but provably established) belong to replica 0
            # — the member that kept the base identity and the
            # pre-spread connection state.
            state_group = lb_state_group(network.graph_id,
                                         rule.output.element,
                                         rule.output.port)
            table = network.lsi.datapath.flow_state.table(state_group)
            table.default_owner = spread[0]
        else:
            dst = self._resolve(network, graph, instances, rule.output)
            spread = None
            state_group = None
        fields = self._match_fields(rule)
        ingress_vid = src.vid if src.vid is not None else rule.match.vlan_id
        realized = InstalledRule(rule=rule)

        def add_segment(controller: LsiController, match: FlowMatch,
                        actions: list[Action]) -> None:
            controller.flow_add(match, actions, priority=rule.priority,
                                cookie=network.cookie)
            realized.segments.append((controller, match, rule.priority))

        try:
            if src.lsi is dst.lsi:
                actions: list[Action] = []
                if ingress_vid is not None:
                    actions.append(PopVlan())
                if spread is not None:
                    actions.append(SelectOutput(spread, group=state_group))
                else:
                    if dst.vid is not None:
                        actions.append(PushVlan(dst.vid))
                    actions.append(Output(dst.port_no))
                add_segment(self._controller_for(src.lsi),
                            FlowMatch(in_port=src.port_no,
                                      vlan_vid=ingress_vid, **fields),
                            actions)
            else:
                # Two segments across the graph's virtual link.
                tag = network.allocate_tag()
                realized.tag = tag
                src_link_port = network.link.far_port(src.lsi.datapath)
                dst_link_port = network.link.far_port(dst.lsi.datapath)

                first_actions: list[Action] = []
                if ingress_vid is not None:
                    first_actions.append(PopVlan())
                first_actions.append(PushVlan(tag))
                first_actions.append(Output(src_link_port.port_no))
                add_segment(self._controller_for(src.lsi),
                            FlowMatch(in_port=src.port_no,
                                      vlan_vid=ingress_vid, **fields),
                            first_actions)

                second_actions: list[Action] = [PopVlan()]
                if spread is not None:
                    second_actions.append(SelectOutput(spread,
                                                       group=state_group))
                else:
                    if dst.vid is not None:
                        second_actions.append(PushVlan(dst.vid))
                    second_actions.append(Output(dst.port_no))
                add_segment(self._controller_for(dst.lsi),
                            FlowMatch(in_port=dst_link_port.port_no,
                                      vlan_vid=tag),
                            second_actions)
        except Exception:
            # Half-installed rules may never linger: strict-delete what
            # made it in, so a retry starts from a clean slate.
            for controller, match, priority in realized.segments:
                controller.flow_delete(match, cookie=network.cookie,
                                       strict=True, priority=priority)
            network.release_tag(realized.tag)
            raise
        network.installed[rule.rule_id] = realized

    # -- traffic injection ---------------------------------------------------------
    def inject_batch(self, interface: str, frames) -> None:
        """Drive a batch of frames into LSI-0 as if received on ``interface``.

        The frames enter through the registered physical port and
        traverse the whole LSI chain batch-at-a-time via
        :meth:`~repro.switch.datapath.Datapath.process_batch_from` —
        every hop runs compiled actions, carries the
        :class:`~repro.net.builder.ParsedFrame` forward (zero re-parse
        for untouched frames) and flushes flow *and* port counters once
        per batch.  ``frames`` may be :class:`EthernetFrame` objects or
        raw frame bytes (decoded on entry) — the same path real
        NetDevice ingress takes through the batch handler protocol.
        """
        port = self._physical_ports.get(interface)
        if port is None:
            raise SteeringError(
                f"interface {interface!r} is not attached to LSI-0")
        self.base.datapath.process_batch_from(port.port_no, frames)

    def replay_pcap(self, interface: str, stream,
                    batch_size: int = 256) -> int:
        """Replay a pcap capture into LSI-0 batch-at-a-time.

        Reads Ethernet records from ``stream`` (any binary file object
        in libpcap format), groups them into batches of at most
        ``batch_size`` and injects each through :meth:`inject_batch`,
        so even multi-gigabyte capture replays run the batched
        zero-reparse pipeline end to end.  Returns the number of frames
        replayed.  Record timestamps are ignored — replay is
        back-to-back, which is what the pps benchmarks want.
        """
        from repro.net.pcap import PcapReader

        if batch_size < 1:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        total = 0
        batch: list = []
        for _timestamp, frame_bytes in PcapReader(stream):
            batch.append(frame_bytes)
            if len(batch) >= batch_size:
                self.inject_batch(interface, batch)
                total += len(batch)
                batch = []
        if batch:
            self.inject_batch(interface, batch)
            total += len(batch)
        return total

    # -- chain fusion -------------------------------------------------------------
    def invalidate_fusion(self) -> int:
        """Drop every fused-chain program — and every per-port
        dispatch table — on every LSI of this node; returns how many
        live programs were dropped.

        This is the steering-level half of the fusion-invalidation
        contract (:mod:`repro.switch.fusion`): any rule install/
        uninstall, replica change (which goes through install/
        uninstall) or graph teardown calls it *before* the change
        reaches the tables, so no program compiled against the old
        rule set — and no dispatch slot still pointing at one — can
        run afterwards.  The flush-time validity check and the
        per-frame dispatch version stamp remain as the backstop for
        direct table writes.
        """
        dropped = self.base.datapath.fusion.invalidate()
        for network in self.graphs.values():
            dropped += network.lsi.datapath.fusion.invalidate()
        return dropped

    def fusion_stats(self) -> dict[str, dict]:
        """Per-LSI fused-chain counters (telemetry view)."""
        stats = {"LSI-0": self.base.datapath.fusion.stats()}
        for network in self.graphs.values():
            stats[network.lsi.name] = network.lsi.datapath.fusion.stats()
        return stats

    # -- per-flow state ------------------------------------------------------------
    def flow_state_stats(self) -> dict[str, dict]:
        """Per-LSI flow-state counters (telemetry view).

        Pinned / remapped / churned speak for replica affinity the way
        fusion hits speak for the fast path: a scale event that broke
        affinity shows up as remapped flows here before any NF notices.
        """
        stats = {"LSI-0": self.base.datapath.flow_state.stats()}
        for network in self.graphs.values():
            stats[network.lsi.name] = \
                network.lsi.datapath.flow_state.stats()
        return stats

    def set_state_clock(self, clock) -> None:
        """Rebind every LSI's flow-state aging clock (sim drivers).

        The same contract as the journal clock: a sim-driven control
        loop moves state aging onto virtual time so entry lifetimes in
        scale-cycle scenarios are deterministic.  Applies to existing
        registries and, because graph LSIs created later copy nothing
        from here, callers driving long simulations should invoke this
        after deploying new graphs too (ControlLoop.run_sim does).
        """
        self.base.datapath.flow_state.clock = clock
        for network in self.graphs.values():
            network.lsi.datapath.flow_state.clock = clock

    # -- inspection ---------------------------------------------------------------
    def flow_counts(self) -> dict[str, int]:
        counts = {"LSI-0": len(self.base.datapath.table)}
        for graph_id, network in self.graphs.items():
            counts[network.lsi.name] = len(network.lsi.datapath.table)
        return counts

    def describe(self) -> str:
        lines = [self.base.datapath.describe()]
        for network in self.graphs.values():
            lines.append(network.lsi.datapath.describe())
        return "\n".join(lines)
