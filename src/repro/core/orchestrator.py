"""The local orchestrator: NF-FG in, running service out.

Deployment pipeline (paper §2): validate the graph, decide VNF-vs-NNF
per NF, admit resources, create instances through the right management
drivers, build the graph's LSI + virtual link, install steering rules
through the per-LSI OpenFlow controllers, start the NFs.

Since the reconciliation refactor, ``deploy``/``update``/``undeploy``
are thin wrappers that record *desired* state and run the
:class:`~repro.core.reconciler.Reconciler` to convergence — every
caller (REST, CLI, tests) therefore exercises the same plan-compile /
checkpointed-execute engine, and a mid-operation driver failure leaves
the node in a consistent, retryable state instead of a half-applied
one.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.compute.manager import ComputeManager
from repro.core.placement import PlacementPolicy
from repro.core.reconciler import (
    DeployedGraph,
    EventJournal,
    GraphEvent,
    Plan,
    ReconcileError,
    ReconcileResult,
    Reconciler,
)
from repro.core.steering import TrafficSteeringManager
from repro.nffg.model import Nffg
from repro.nffg.validate import NffgValidationError, validate_nffg
from repro.resources.accounting import ResourceAccountant
from repro.resources.images import ImageRegistry

__all__ = ["DeployedGraph", "LocalOrchestrator", "OrchestrationError"]


class OrchestrationError(Exception):
    """Deployment failed; the orchestrator rolled back what it could."""


class LocalOrchestrator:
    """Receives NF-FGs (from REST or Python callers) and realises them."""

    def __init__(self, placement: PlacementPolicy,
                 compute: ComputeManager,
                 steering: TrafficSteeringManager,
                 accountant: ResourceAccountant,
                 images: ImageRegistry) -> None:
        self.placement = placement
        self.compute = compute
        self.steering = steering
        self.accountant = accountant
        self.images = images
        self.reconciler = Reconciler(placement=placement, compute=compute,
                                     steering=steering,
                                     accountant=accountant, images=images)
        #: observed per-graph records (shared with the reconciler)
        self.deployed: dict[str, DeployedGraph] = self.reconciler.observed
        self.deploys = 0
        self.deploy_failures = 0

    @property
    def journal(self) -> EventJournal:
        return self.reconciler.journal

    def events(self, graph_id: str) -> list[GraphEvent]:
        """The graph's reconciliation journal (survives undeploy)."""
        return self.reconciler.journal.events(graph_id)

    def _validate(self, graph: Nffg) -> None:
        try:
            validate_nffg(
                graph,
                known_templates=set(self.placement.repository.names()))
        except NffgValidationError as exc:
            raise OrchestrationError(f"invalid NF-FG: {exc}") from exc

    # -- deploy -----------------------------------------------------------------
    def deploy(self, graph: Nffg) -> DeployedGraph:
        with self.reconciler.lock(graph.graph_id):
            return self._deploy_locked(graph)

    def _deploy_locked(self, graph: Nffg) -> DeployedGraph:
        started = time.perf_counter()
        if graph.graph_id in self.reconciler.desired:
            raise OrchestrationError(
                f"graph {graph.graph_id!r} is already deployed "
                "(use update)")
        try:
            self._validate(graph)
        except OrchestrationError:
            self.deploy_failures += 1
            raise
        self.reconciler.set_desired(graph)
        try:
            self.reconciler.reconcile(graph.graph_id)
        except ReconcileError as exc:
            # Initial deploys are all-or-nothing: converge back to
            # empty so no allocations, namespaces or rules linger.
            self.reconciler.clear_desired(graph.graph_id)
            try:
                self.reconciler.reconcile(graph.graph_id)
            except ReconcileError:
                pass
            self.deploy_failures += 1
            raise OrchestrationError(
                f"deploying {graph.graph_id!r} failed: {exc}") from exc
        record = self.deployed[graph.graph_id]
        record.modeled_deploy_seconds = (
            sum(i.boot_seconds for i in record.instances.values())
            + 0.001 * record.rules_installed)
        record.wall_deploy_seconds = time.perf_counter() - started
        self.deploys += 1
        return record

    # -- undeploy ------------------------------------------------------------------
    def undeploy(self, graph_id: str) -> DeployedGraph:
        with self.reconciler.lock(graph_id):
            record = self._record(graph_id)
            self.reconciler.clear_desired(graph_id)
            try:
                self.reconciler.reconcile(graph_id)
            except ReconcileError as exc:
                raise OrchestrationError(
                    f"undeploying {graph_id!r} failed: {exc}") from exc
            return record

    # -- update --------------------------------------------------------------------
    def update(self, new_graph: Nffg) -> DeployedGraph:
        """In-place update: record the new desired graph and converge.

        Only the diff is touched — steering rules of unchanged NFs are
        never reinstalled.  On a mid-plan failure the applied prefix is
        kept (checkpointed), the error is raised, and the same update
        can simply be retried (or driven via :meth:`reconcile`).

        An update document without scaling policies keeps the graph's
        persisted ones: policies are durable graph state edited through
        ``PUT /graphs/{id}/policies``, and a plain NF-FG re-PUT must
        not silently disable autoscaling.  A document that *does* carry
        policies replaces them wholesale.
        """
        with self.reconciler.lock(new_graph.graph_id):
            record = self._record(new_graph.graph_id)
            previous = self.reconciler.desired_raw.get(new_graph.graph_id)
            if not new_graph.policies and previous is not None \
                    and previous.policies:
                new_graph.policies = list(previous.policies)
            self._validate(new_graph)
            self.reconciler.set_desired(new_graph)
            try:
                self.reconciler.reconcile(new_graph.graph_id)
            except ReconcileError as exc:
                raise OrchestrationError(
                    f"updating {new_graph.graph_id!r} failed: {exc} "
                    "(desired state kept; retry with update or reconcile)"
                ) from exc
            return record

    # -- apply (upsert) --------------------------------------------------------------
    def apply(self, graph: Nffg) -> "tuple[DeployedGraph, bool]":
        """Deploy-or-update under the graph lock; returns (record, created).

        The REST ``PUT /nffg/{id}`` handler used to check ``deployed``
        and then call deploy or update *outside* any lock — two
        concurrent PUTs could both see "not deployed", race into
        ``deploy``, and the loser surfaced a spurious 409 (a lost
        update).  Holding the graph lock across the check and the verb
        makes the decision and its execution one atomic step.
        """
        with self.reconciler.lock(graph.graph_id):
            if graph.graph_id in self.reconciler.desired:
                return self.update(graph), False
            return self.deploy(graph), True

    # -- reconcile / heal ------------------------------------------------------------
    def reconcile(self, graph_id: str) -> ReconcileResult:
        """Run the engine to convergence for one graph (heals too)."""
        with self.reconciler.lock(graph_id):
            if graph_id not in self.reconciler.desired \
                    and graph_id not in self.deployed:
                raise OrchestrationError(f"no deployed graph {graph_id!r}")
            try:
                return self.reconciler.reconcile(graph_id)
            except ReconcileError as exc:
                raise OrchestrationError(
                    f"reconciling {graph_id!r} failed: {exc}") from exc

    def tick(self, graph_id: str) -> Plan:
        """One reconciliation pass (detect failures, execute one plan)."""
        return self.reconciler.tick(graph_id)

    # -- queries --------------------------------------------------------------------
    def _record(self, graph_id: str) -> DeployedGraph:
        try:
            return self.deployed[graph_id]
        except KeyError:
            raise OrchestrationError(
                f"no deployed graph {graph_id!r}") from None

    def status(self, graph_id: str) -> dict:
        record = self._record(graph_id)
        desired = self.reconciler.desired.get(graph_id)
        plan = self.reconciler.last_plans.get(graph_id)
        nfs = {}
        for nf_id, instance in record.instances.items():
            decision = record.placements.get(nf_id)
            nfs[nf_id] = {
                "technology": (decision.implementation.technology.value
                               if decision is not None
                               else instance.technology.value),
                "state": instance.state.value,
                "shared": instance.shared,
                "ram-mb": instance.runtime_ram_mb,
            }
        return {
            "graph-id": graph_id,
            "name": record.graph.name,
            "nfs": nfs,
            "flow-rules": record.rules_installed,
            "deploy-seconds": record.modeled_deploy_seconds,
            "desired-nfs": (len(desired.nfs) if desired is not None
                            else 0),
            "converged": plan.converged if plan is not None else False,
        }

    def list_graphs(self) -> list[str]:
        return sorted(self.deployed)
