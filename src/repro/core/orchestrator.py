"""The local orchestrator: NF-FG in, running service out.

Deployment pipeline (paper §2): validate the graph, decide VNF-vs-NNF
per NF, admit resources, create instances through the right management
drivers, build the graph's LSI + virtual link, install steering rules
through the per-LSI OpenFlow controllers, start the NFs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.templates import Technology
from repro.compute.instances import InstanceSpec, NfInstance
from repro.compute.manager import ComputeManager
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.core.steering import TrafficSteeringManager
from repro.nffg.diff import diff_nffg
from repro.nffg.model import Nffg
from repro.nffg.validate import NffgValidationError, validate_nffg
from repro.resources.accounting import AdmissionError, ResourceAccountant
from repro.resources.images import ImageRegistry

__all__ = ["DeployedGraph", "LocalOrchestrator", "OrchestrationError"]


class OrchestrationError(Exception):
    """Deployment failed; the orchestrator rolled back what it could."""


@dataclass
class DeployedGraph:
    """Book-keeping for one live NF-FG."""

    graph: Nffg
    placements: dict[str, PlacementDecision]
    instances: dict[str, NfInstance] = field(default_factory=dict)
    rules_installed: int = 0
    modeled_deploy_seconds: float = 0.0
    wall_deploy_seconds: float = 0.0

    @property
    def graph_id(self) -> str:
        return self.graph.graph_id

    def technologies(self) -> dict[str, str]:
        return {nf_id: decision.implementation.technology.value
                for nf_id, decision in self.placements.items()}


class LocalOrchestrator:
    """Receives NF-FGs (from REST or Python callers) and realises them."""

    def __init__(self, placement: PlacementPolicy,
                 compute: ComputeManager,
                 steering: TrafficSteeringManager,
                 accountant: ResourceAccountant,
                 images: ImageRegistry) -> None:
        self.placement = placement
        self.compute = compute
        self.steering = steering
        self.accountant = accountant
        self.images = images
        self.deployed: dict[str, DeployedGraph] = {}
        self.deploys = 0
        self.deploy_failures = 0

    # -- deploy -----------------------------------------------------------------
    def deploy(self, graph: Nffg) -> DeployedGraph:
        started = time.perf_counter()
        if graph.graph_id in self.deployed:
            raise OrchestrationError(
                f"graph {graph.graph_id!r} is already deployed "
                "(use update)")
        try:
            validate_nffg(
                graph,
                known_templates=set(self.placement.repository.names()))
        except NffgValidationError as exc:
            self.deploy_failures += 1
            raise OrchestrationError(f"invalid NF-FG: {exc}") from exc

        try:
            decisions = {d.nf_id: d for d in self.placement.decide(graph)}
        except Exception as exc:
            self.deploy_failures += 1
            raise OrchestrationError(
                f"placement for {graph.graph_id!r} failed: {exc}") from exc
        record = DeployedGraph(graph=graph, placements=decisions)

        created: list[NfInstance] = []
        network_created = False
        try:
            for spec in graph.nfs:
                decision = decisions[spec.nf_id]
                instance = self._instantiate(graph, spec.nf_id, decision,
                                             spec.config_dict())
                record.instances[spec.nf_id] = instance
                created.append(instance)
            self.steering.create_graph_network(graph.graph_id)
            network_created = True
            self.steering.attach_instances(graph.graph_id, record.instances)
            for spec in graph.nfs:
                self.compute.configure(record.instances[spec.nf_id]
                                       .instance_id)
            record.rules_installed = self.steering.install_graph_rules(
                graph, record.instances)
            for spec in graph.nfs:
                self.compute.start(record.instances[spec.nf_id].instance_id)
        except Exception as exc:
            self._rollback(graph.graph_id, created, network_created)
            self.deploy_failures += 1
            raise OrchestrationError(
                f"deploying {graph.graph_id!r} failed: {exc}") from exc

        record.modeled_deploy_seconds = (
            sum(i.boot_seconds for i in record.instances.values())
            + 0.001 * record.rules_installed)
        record.wall_deploy_seconds = time.perf_counter() - started
        self.deployed[graph.graph_id] = record
        self.deploys += 1
        return record

    def _instantiate(self, graph: Nffg, nf_id: str,
                     decision: PlacementDecision,
                     config: dict[str, str]) -> NfInstance:
        template = self.placement.repository.get(decision.template_name)
        impl = decision.implementation
        if impl.image not in self.images:
            raise OrchestrationError(
                f"{nf_id}: image {impl.image!r} missing from repository")
        allocation = self.accountant.allocate(
            owner=f"{graph.graph_id}/{nf_id}", cpu_cores=impl.cpu_cores,
            ram_mb=impl.ram_mb, disk_mb=impl.disk_mb)
        spec = InstanceSpec(
            instance_id=f"{graph.graph_id}-{nf_id}",
            graph_id=graph.graph_id,
            nf_id=nf_id,
            template_name=template.name,
            functional_type=template.functional_type,
            logical_ports=template.ports,
            implementation=impl,
            config=config)
        try:
            instance = self.compute.create(spec)
        except Exception:
            self.accountant.release(allocation)
            raise
        instance.allocation = allocation
        return instance

    def _rollback(self, graph_id: str, created: list[NfInstance],
                  network_created: bool) -> None:
        if network_created:
            try:
                self.steering.remove_graph_network(graph_id)
            except Exception:
                pass
        for instance in created:
            try:
                self.compute.destroy(instance.instance_id)
            except Exception:
                pass
            if instance.allocation is not None \
                    and not instance.allocation.released:
                self.accountant.release(instance.allocation)

    # -- undeploy ------------------------------------------------------------------
    def undeploy(self, graph_id: str) -> DeployedGraph:
        record = self._record(graph_id)
        for instance in record.instances.values():
            if instance.is_running:
                self.compute.stop(instance.instance_id)
        self.steering.remove_graph_network(graph_id)
        for instance in record.instances.values():
            self.compute.destroy(instance.instance_id)
            if instance.allocation is not None \
                    and not instance.allocation.released:
                self.accountant.release(instance.allocation)
        del self.deployed[graph_id]
        return record

    # -- update --------------------------------------------------------------------
    def update(self, new_graph: Nffg) -> DeployedGraph:
        """In-place update via graph diff (add/remove NFs and rules,
        re-configure changed NFs) without tearing down the graph."""
        record = self._record(new_graph.graph_id)
        diff = diff_nffg(record.graph, new_graph)
        if diff.empty:
            return record
        validate_nffg(new_graph, known_templates=set(
            self.placement.repository.names()))
        # Remove rules first so traffic stops hitting removed NFs,
        # then instances, then bring up the additions.
        network = self.steering._network(new_graph.graph_id)
        network.controller.flow_delete_by_cookie(network.cookie)
        self.steering.base_controller.flow_delete_by_cookie(network.cookie)
        for spec in diff.removed_nfs:
            instance = record.instances.pop(spec.nf_id)
            if instance.is_running:
                self.compute.stop(instance.instance_id)
            self.compute.destroy(instance.instance_id)
            if instance.allocation is not None \
                    and not instance.allocation.released:
                self.accountant.release(instance.allocation)
            del record.placements[spec.nf_id]
        for spec in diff.added_nfs:
            decision = self.placement.decide_one(spec)
            record.placements[spec.nf_id] = decision
            instance = self._instantiate(new_graph, spec.nf_id, decision,
                                         spec.config_dict())
            record.instances[spec.nf_id] = instance
            self.steering.attach_instances(new_graph.graph_id,
                                           {spec.nf_id: instance})
            self.compute.configure(instance.instance_id)
            self.compute.start(instance.instance_id)
        for spec in diff.reconfigured_nfs:
            self.compute.update(record.instances[spec.nf_id].instance_id,
                                spec.config_dict())
        record.rules_installed = self.steering.install_graph_rules(
            new_graph, record.instances)
        record.graph = new_graph
        return record

    # -- queries --------------------------------------------------------------------
    def _record(self, graph_id: str) -> DeployedGraph:
        try:
            return self.deployed[graph_id]
        except KeyError:
            raise OrchestrationError(
                f"no deployed graph {graph_id!r}") from None

    def status(self, graph_id: str) -> dict:
        record = self._record(graph_id)
        return {
            "graph-id": graph_id,
            "name": record.graph.name,
            "nfs": {
                nf_id: {
                    "technology": decision.implementation.technology.value,
                    "state": record.instances[nf_id].state.value,
                    "shared": record.instances[nf_id].shared,
                    "ram-mb": record.instances[nf_id].runtime_ram_mb,
                }
                for nf_id, decision in record.placements.items()
            },
            "flow-rules": record.rules_installed,
            "deploy-seconds": record.modeled_deploy_seconds,
        }

    def list_graphs(self) -> list[str]:
        return sorted(self.deployed)
