"""Learning Ethernet bridge (``linuxbridge``).

One of the paper's canonical NNF examples.  Enslaved devices hand their
frames to the bridge, which learns source MACs and forwards/floods.  An
optional per-VLAN filtering mode keeps service graphs isolated when the
bridge is shared — the marking requirement (ii) of the paper's
sharability definition ("multiple internal paths ... in isolation").
"""

from __future__ import annotations

from typing import Optional

from repro.linuxnet.devices import NetDevice
from repro.net.addresses import MacAddress
from repro.net.ethernet import EthernetFrame

__all__ = ["Bridge", "FdbEntry"]


class FdbEntry:
    """Forwarding-database entry: MAC (+VLAN) -> port."""

    __slots__ = ("mac", "vlan", "port", "packets")

    def __init__(self, mac: MacAddress, vlan: Optional[int],
                 port: NetDevice) -> None:
        self.mac = mac
        self.vlan = vlan
        self.port = port
        self.packets = 0


class Bridge:
    """MAC-learning bridge over enslaved :class:`NetDevice` ports."""

    def __init__(self, name: str, vlan_filtering: bool = False) -> None:
        self.name = name
        self.vlan_filtering = vlan_filtering
        self.ports: dict[str, NetDevice] = {}
        self._fdb: dict[tuple[int, Optional[int]], FdbEntry] = {}
        self.flooded = 0
        self.forwarded = 0
        self.dropped = 0

    # -- port management -----------------------------------------------------
    def add_port(self, device: NetDevice) -> None:
        if device.name in self.ports:
            raise ValueError(f"{device.name} already enslaved to {self.name}")
        if device.bridge is not None:
            raise ValueError(f"{device.name} already enslaved to "
                             f"{device.bridge.name}")
        self.ports[device.name] = device
        device.bridge = self

    def remove_port(self, name: str) -> NetDevice:
        try:
            device = self.ports.pop(name)
        except KeyError:
            raise KeyError(f"no port {name!r} on bridge {self.name}") from None
        device.bridge = None
        self._fdb = {key: entry for key, entry in self._fdb.items()
                     if entry.port is not device}
        return device

    # -- dataplane -------------------------------------------------------------
    def _fdb_key(self, mac: MacAddress,
                 vlan: Optional[int]) -> tuple[int, Optional[int]]:
        return (int(mac), vlan if self.vlan_filtering else None)

    def _bridge_input(self, ingress: NetDevice, frame: EthernetFrame) -> None:
        vlan = frame.vlan if self.vlan_filtering else None
        # Learn the source.
        key = self._fdb_key(frame.src, vlan)
        entry = self._fdb.get(key)
        if entry is None or entry.port is not ingress:
            self._fdb[key] = FdbEntry(frame.src, vlan, ingress)
        self._fdb[key].packets += 1

        if frame.dst.is_broadcast or frame.dst.is_multicast:
            self._flood(ingress, frame, vlan)
            return
        target = self._fdb.get(self._fdb_key(frame.dst, vlan))
        if target is None:
            self._flood(ingress, frame, vlan)
            return
        if target.port is ingress:
            self.dropped += 1  # hairpin off by default, as in Linux
            return
        self.forwarded += 1
        target.port.transmit(frame)

    def _flood(self, ingress: NetDevice, frame: EthernetFrame,
               vlan: Optional[int]) -> None:
        self.flooded += 1
        for device in self.ports.values():
            if device is ingress:
                continue
            device.transmit(frame)

    def _bridge_input_batch(self, ingress: NetDevice, frames) -> None:
        """Batch ingress: learn/forward a whole batch in one pass.

        Learning, counters and forwarding decisions are identical to
        per-frame :meth:`_bridge_input`; known-unicast egress is
        coalesced per target port and delivered through
        ``transmit_batch`` (per-port frame order preserved, same
        batch-coalescing contract as the switch datapath).  Floods and
        hairpin drops keep the per-frame path.
        """
        filtering = self.vlan_filtering
        fdb = self._fdb
        # target device id -> [device, frames]
        queues: dict[int, list] = {}

        def flush() -> None:
            for device, queued in queues.values():
                device.transmit_batch(queued)
            queues.clear()

        for frame in frames:
            vlan = frame.vlan if filtering else None
            key = (int(frame.src), vlan)
            entry = fdb.get(key)
            if entry is None or entry.port is not ingress:
                fdb[key] = entry = FdbEntry(frame.src, vlan, ingress)
            entry.packets += 1

            if frame.dst.is_broadcast or frame.dst.is_multicast:
                flush()  # a flood may not overtake queued unicast
                self._flood(ingress, frame, vlan)
                continue
            target = fdb.get((int(frame.dst), vlan))
            if target is None:
                flush()
                self._flood(ingress, frame, vlan)
                continue
            if target.port is ingress:
                self.dropped += 1  # hairpin off by default, as in Linux
                continue
            self.forwarded += 1
            acc = queues.get(id(target.port))
            if acc is None:
                queues[id(target.port)] = [target.port, [frame]]
            else:
                acc[1].append(frame)
        flush()

    # -- inspection ---------------------------------------------------------------
    def fdb_entries(self) -> list[FdbEntry]:
        return list(self._fdb.values())

    def __repr__(self) -> str:
        return (f"<Bridge {self.name} ports={sorted(self.ports)} "
                f"fdb={len(self._fdb)}>")
