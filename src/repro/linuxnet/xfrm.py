"""Kernel IPsec: XFRM states and policies.

strongSwan's performance trick — the one the paper calls out as "very
common among NFs" — is that the daemon only negotiates keys; per-packet
ESP work happens in the kernel via the XFRM framework.  The namespace
stack consults this database on output (policy direction OUT) and on
ESP input (state lookup by destination+SPI, then policy direction IN).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.ipsec.sa import SecurityAssociation
from repro.net.addresses import ip_to_int, parse_cidr
from repro.net.ipv4 import IPv4Packet

__all__ = ["XfrmDb", "XfrmDirection", "XfrmPolicy", "XfrmState"]


class XfrmDirection(Enum):
    IN = "in"
    OUT = "out"
    FWD = "fwd"


@dataclass(frozen=True)
class Selector:
    """Traffic selector: which inner packets the policy covers."""

    src_cidr: str
    dst_cidr: str
    proto: Optional[int] = None

    def covers(self, packet: IPv4Packet) -> bool:
        if self.proto is not None and packet.proto != self.proto:
            return False
        return (_cidr_contains(self.src_cidr, packet.src)
                and _cidr_contains(self.dst_cidr, packet.dst))


def _cidr_contains(cidr: str, address: str) -> bool:
    network, plen = parse_cidr(cidr)
    if plen == 0:
        return True
    shift = 32 - plen
    return (ip_to_int(address) >> shift) == (network >> shift)


@dataclass
class XfrmState:
    """One installed SA (``ip xfrm state`` entry)."""

    sa: SecurityAssociation

    @property
    def key(self) -> tuple[str, int]:
        return (self.sa.dst, self.sa.spi)


@dataclass
class XfrmPolicy:
    """One ``ip xfrm policy`` entry binding a selector to a tunnel.

    ``tmpl_src``/``tmpl_dst`` name the outer endpoints; the matching
    state supplies keys.  ``priority``: lower wins, mirroring the kernel.
    """

    selector: Selector
    direction: XfrmDirection
    tmpl_src: str
    tmpl_dst: str
    priority: int = 0


class XfrmDb:
    """Per-namespace security policy + association database."""

    def __init__(self) -> None:
        self._states: dict[tuple[str, int], XfrmState] = {}
        self._policies: list[XfrmPolicy] = []
        self.lookups = 0
        self.misses = 0

    # -- states ------------------------------------------------------------
    def add_state(self, state: XfrmState) -> None:
        if state.key in self._states:
            raise ValueError(
                f"xfrm state for dst={state.sa.dst} spi={state.sa.spi:#x} "
                "already installed")
        self._states[state.key] = state

    def delete_state(self, dst: str, spi: int) -> None:
        try:
            del self._states[(dst, spi)]
        except KeyError:
            raise KeyError(f"no xfrm state dst={dst} spi={spi:#x}") from None

    def find_state(self, dst: str, spi: int) -> Optional[XfrmState]:
        return self._states.get((dst, spi))

    def find_state_for_endpoints(self, src: str,
                                 dst: str) -> Optional[XfrmState]:
        """Outbound lookup: any state whose outer endpoints match."""
        for state in self._states.values():
            if state.sa.src == src and state.sa.dst == dst:
                return state
        return None

    def states(self) -> list[XfrmState]:
        return list(self._states.values())

    # -- policies ------------------------------------------------------------
    def add_policy(self, policy: XfrmPolicy) -> None:
        self._policies.append(policy)
        self._policies.sort(key=lambda p: p.priority)

    def delete_policies(self, direction: XfrmDirection) -> int:
        before = len(self._policies)
        self._policies = [p for p in self._policies
                          if p.direction != direction]
        return before - len(self._policies)

    def policies(self) -> list[XfrmPolicy]:
        return list(self._policies)

    def lookup_policy(self, packet: IPv4Packet,
                      direction: XfrmDirection) -> Optional[XfrmPolicy]:
        self.lookups += 1
        for policy in self._policies:
            if policy.direction is direction and policy.selector.covers(packet):
                return policy
        self.misses += 1
        return None

    def flush(self) -> None:
        self._states.clear()
        self._policies.clear()
