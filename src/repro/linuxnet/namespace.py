"""Network namespace: a complete (simulated) IPv4 stack.

The hook layout mirrors netfilter::

    receive -> mangle/nat PREROUTING -> route
        local:   mangle/filter INPUT -> [XFRM in] -> deliver
        forward: mangle/filter FORWARD -> POSTROUTING -> transmit
    local out -> mangle/nat/filter OUTPUT -> route
             -> [XFRM out] -> POSTROUTING -> transmit

ESP output wraps the packet and re-enters the output path so the outer
packet is routed and POSTROUTING-processed like any other, exactly as
the kernel does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ipsec.esp import EspError, esp_decapsulate, esp_encapsulate
from repro.ipsec.sa import ReplayError
from repro.linuxnet.conntrack import ConnState, ConnTrack, ConnTrackEntry, FlowTuple
from repro.linuxnet.devices import Loopback, NetDevice
from repro.linuxnet.iptables import Ruleset, Verdict
from repro.linuxnet.routing import RouteTable
from repro.linuxnet.xfrm import XfrmDb, XfrmDirection
from repro.net.addresses import BROADCAST_MAC, MacAddress
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.icmp import IcmpMessage
from repro.net.ipv4 import (
    IPPROTO_ESP,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Packet,
)
from repro.net.transport import TcpSegment, UdpDatagram

__all__ = ["NetworkNamespace", "SkBuff"]

UdpHandler = Callable[["NetworkNamespace", IPv4Packet, UdpDatagram], None]
RawHandler = Callable[["NetworkNamespace", IPv4Packet], None]

_ip_id = itertools.count(1)


@dataclass
class SkBuff:
    """Per-packet metadata travelling through the stack (cf. sk_buff)."""

    ipv4: IPv4Packet
    in_iface: Optional[str] = None
    out_iface: Optional[str] = None
    in_device: Optional[NetDevice] = None
    out_device: Optional[NetDevice] = None
    mark: int = 0
    ct_entry: Optional[ConnTrackEntry] = None
    ct_direction: str = "orig"
    ct_is_new: bool = False
    src_mac: Optional[MacAddress] = None
    vlan: Optional[int] = None

    @property
    def sport(self) -> Optional[int]:
        ports = _l4_ports(self.ipv4)
        return ports[0] if ports else None

    @property
    def dport(self) -> Optional[int]:
        ports = _l4_ports(self.ipv4)
        return ports[1] if ports else None


def _l4_ports(packet: IPv4Packet) -> Optional[tuple[int, int]]:
    try:
        if packet.proto == IPPROTO_UDP:
            dgram = UdpDatagram.from_bytes(packet.payload)
            return dgram.src_port, dgram.dst_port
        if packet.proto == IPPROTO_TCP:
            seg = TcpSegment.from_bytes(packet.payload)
            return seg.src_port, seg.dst_port
    except ValueError:
        return None
    return None


def _rewrite(packet: IPv4Packet, src: Optional[str] = None,
             dst: Optional[str] = None, sport: Optional[int] = None,
             dport: Optional[int] = None) -> IPv4Packet:
    """Return a copy with addresses/ports rewritten and checksums redone."""
    new_src = src if src is not None else packet.src
    new_dst = dst if dst is not None else packet.dst
    payload = packet.payload
    if packet.proto == IPPROTO_UDP and (sport or dport or src or dst):
        dgram = UdpDatagram.from_bytes(payload)
        if sport:
            dgram.src_port = sport
        if dport:
            dgram.dst_port = dport
        payload = dgram.to_bytes(new_src, new_dst)
    elif packet.proto == IPPROTO_TCP and (sport or dport or src or dst):
        seg = TcpSegment.from_bytes(payload)
        if sport:
            seg.src_port = sport
        if dport:
            seg.dst_port = dport
        payload = seg.to_bytes(new_src, new_dst)
    return IPv4Packet(src=new_src, dst=new_dst, proto=packet.proto,
                      payload=payload, ttl=packet.ttl,
                      identification=packet.identification,
                      dscp=packet.dscp, flags=packet.flags)


class NetworkNamespace:
    """One network namespace with devices, routes, netfilter and XFRM."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.devices: dict[str, NetDevice] = {}
        self.routes = RouteTable()  # the main table
        #: policy routing: extra tables + fwmark rules selecting them
        self.route_tables: dict[int, RouteTable] = {}
        self.policy_rules: list[tuple[int, int, int]] = []  # (mark,mask,table)
        self.iptables = Ruleset()
        self.conntrack = ConnTrack()
        self.xfrm = XfrmDb()
        self.neighbors: dict[str, MacAddress] = {}
        self.ip_forward = False
        self._udp_handlers: dict[int, UdpHandler] = {}
        self._raw_handlers: dict[int, RawHandler] = {}
        self.icmp_echo_enabled = True
        # counters (/proc/net/snmp flavored)
        self.rx_delivered = 0
        self.rx_forwarded = 0
        self.rx_dropped_filter = 0
        self.rx_no_route = 0
        self.rx_bad_packets = 0
        self.tx_sent = 0
        self.esp_in = 0
        self.esp_out = 0
        self.esp_errors = 0
        lo = Loopback()
        self.add_device(lo)
        lo.add_address("127.0.0.1", 8)
        lo.set_up()

    def __repr__(self) -> str:
        return f"<netns {self.name}: {len(self.devices)} devices>"

    # -- device management ---------------------------------------------------
    def add_device(self, device: NetDevice) -> NetDevice:
        if device.name in self.devices:
            raise ValueError(
                f"device {device.name!r} already in namespace {self.name}")
        if device.namespace is not None:
            raise ValueError(
                f"device {device.name!r} already in namespace "
                f"{device.namespace.name}")
        self.devices[device.name] = device
        device.namespace = self
        for ip, plen in device.addresses:
            self._on_address_added(device, ip, plen)
        return device

    def remove_device(self, name: str) -> NetDevice:
        try:
            device = self.devices.pop(name)
        except KeyError:
            raise KeyError(f"no device {name!r} in {self.name}") from None
        device.namespace = None
        self.routes.remove_device(name)
        return device

    def device(self, name: str) -> NetDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise KeyError(f"no device {name!r} in {self.name}") from None

    def _on_address_added(self, device: NetDevice, ip: str,
                          prefix_len: int) -> None:
        # Mirror Linux: adding an address installs the connected route.
        if prefix_len < 32 and device.name != "lo":
            cidr = f"{ip}/{prefix_len}"
            try:
                self.routes.add_cidr(cidr, device.name)
            except ValueError:
                pass  # second address in the same subnet

    def route_table(self, table_id: int) -> RouteTable:
        """Get-or-create a non-main routing table."""
        if table_id not in self.route_tables:
            self.route_tables[table_id] = RouteTable()
        return self.route_tables[table_id]

    def add_policy_rule(self, mark: int, table_id: int,
                        mask: int = 0xFFFFFFFF) -> None:
        """``ip rule add fwmark <mark> table <table_id>``."""
        self.policy_rules.append((mark, mask, table_id))

    def fib_lookup(self, dst: str, mark: int = 0):
        """Policy-aware route lookup: fwmark rules first, then main.

        Mirrors Linux: each matching policy rule's table is consulted;
        a miss there falls through to the next rule and finally the
        main table.
        """
        if mark:
            for rule_mark, mask, table_id in self.policy_rules:
                if (mark & mask) == (rule_mark & mask):
                    table = self.route_tables.get(table_id)
                    if table is not None:
                        hit = table.lookup(dst)
                        if hit is not None:
                            return hit
        return self.routes.lookup(dst)

    def local_addresses(self) -> set[str]:
        return {ip for dev in self.devices.values()
                for ip, _plen in dev.addresses}

    def is_local_address(self, ip: str) -> bool:
        if ip.startswith("127."):
            return True
        return ip in self.local_addresses()

    # -- socket-ish API --------------------------------------------------------
    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise ValueError(f"UDP port {port} already bound in {self.name}")
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def bind_raw(self, proto: int, handler: RawHandler) -> None:
        if proto in self._raw_handlers:
            raise ValueError(
                f"raw proto {proto} already bound in {self.name}")
        self._raw_handlers[proto] = handler

    def unbind_raw(self, proto: int) -> None:
        self._raw_handlers.pop(proto, None)

    def send_udp(self, src_ip: str, dst_ip: str, src_port: int,
                 dst_port: int, payload: bytes) -> None:
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                               payload=payload)
        packet = IPv4Packet(src=src_ip, dst=dst_ip, proto=IPPROTO_UDP,
                            payload=datagram.to_bytes(src_ip, dst_ip),
                            identification=next(_ip_id) & 0xFFFF)
        self.send_ip(packet)

    # -- stack: input ------------------------------------------------------------
    def _stack_input(self, device: NetDevice, frame: EthernetFrame) -> None:
        if frame.ethertype != ETHERTYPE_IPV4:
            self.rx_bad_packets += 1
            return
        try:
            packet = IPv4Packet.from_bytes(frame.payload)
        except ValueError:
            self.rx_bad_packets += 1
            return
        skb = SkBuff(ipv4=packet, in_iface=device.name, in_device=device,
                     src_mac=frame.src, vlan=frame.vlan)
        self._receive_skb(skb)

    def _stack_input_batch(self, device: NetDevice, frames) -> None:
        """Batch ingress into the IP stack (NF-bound egress hot path).

        Same per-frame semantics as :meth:`_stack_input`, with the
        header checks inlined, the method lookups hoisted out of the
        loop and the bad-packet counter flushed once — the stack-side
        mirror of the switch's ``process_batch_from``.  Frames are
        processed strictly in order, so conntrack, NAT and forwarding
        behave exactly as the per-frame path.
        """
        bad = 0
        name = device.name
        receive_skb = self._receive_skb
        from_bytes = IPv4Packet.from_bytes
        for frame in frames:
            if frame.ethertype != ETHERTYPE_IPV4:
                bad += 1
                continue
            try:
                packet = from_bytes(frame.payload)
            except ValueError:
                bad += 1
                continue
            receive_skb(SkBuff(ipv4=packet, in_iface=name,
                               in_device=device, src_mac=frame.src,
                               vlan=frame.vlan))
        if bad:
            self.rx_bad_packets += bad

    def _receive_skb(self, skb: SkBuff) -> None:
        self._ct_in(skb)
        if self.iptables.traverse("mangle", "PREROUTING", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        if skb.ct_is_new and skb.ct_entry is not None:
            if self.iptables.traverse("nat", "PREROUTING", skb) == Verdict.DROP:
                self.rx_dropped_filter += 1
                return
            if skb.ct_entry.dnat is not None:
                self.conntrack.apply_nat(skb.ct_entry)
        self._apply_nat(skb)
        if self.is_local_address(skb.ipv4.dst):
            self._input_local(skb)
        else:
            self._forward(skb)

    def _input_local(self, skb: SkBuff) -> None:
        if self.iptables.traverse("mangle", "INPUT", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        if self.iptables.traverse("filter", "INPUT", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        self._ct_confirm(skb)
        packet = skb.ipv4
        if packet.proto == IPPROTO_ESP:
            self._xfrm_input(skb)
            return
        self.rx_delivered += 1
        if packet.proto == IPPROTO_UDP:
            try:
                datagram = UdpDatagram.from_bytes(packet.payload)
            except ValueError:
                self.rx_bad_packets += 1
                return
            handler = self._udp_handlers.get(datagram.dst_port)
            if handler is not None:
                handler(self, packet, datagram)
            return
        if packet.proto == IPPROTO_ICMP and self.icmp_echo_enabled:
            self._icmp_input(packet)
            return
        handler = self._raw_handlers.get(packet.proto)
        if handler is not None:
            handler(self, packet)

    def _icmp_input(self, packet: IPv4Packet) -> None:
        try:
            message = IcmpMessage.from_bytes(packet.payload)
        except ValueError:
            self.rx_bad_packets += 1
            return
        if message.is_echo_request:
            reply = message.reply()
            self.send_ip(IPv4Packet(src=packet.dst, dst=packet.src,
                                    proto=IPPROTO_ICMP,
                                    payload=reply.to_bytes(),
                                    identification=next(_ip_id) & 0xFFFF))

    def _xfrm_input(self, skb: SkBuff) -> None:
        packet = skb.ipv4
        if len(packet.payload) < 8:
            self.esp_errors += 1
            return
        spi = int.from_bytes(packet.payload[0:4], "big")
        state = self.xfrm.find_state(packet.dst, spi)
        if state is None:
            self.esp_errors += 1
            return
        try:
            inner = esp_decapsulate(state.sa, packet)
        except (EspError, ReplayError):
            self.esp_errors += 1
            return
        self.esp_in += 1
        policy = self.xfrm.lookup_policy(inner, XfrmDirection.IN)
        if policy is None:
            # Inner traffic not covered by any IN policy: drop, as the
            # kernel does for unprotected-but-required flows.
            self.esp_errors += 1
            return
        inner_skb = SkBuff(ipv4=inner, in_iface=skb.in_iface,
                           in_device=skb.in_device, mark=skb.mark)
        self._receive_skb(inner_skb)

    def _forward(self, skb: SkBuff) -> None:
        if not self.ip_forward:
            self.rx_dropped_filter += 1
            return
        try:
            skb.ipv4 = skb.ipv4.decrement_ttl()
        except ValueError:
            self.rx_bad_packets += 1
            return
        route = self.fib_lookup(skb.ipv4.dst, skb.mark)
        if route is None:
            self.rx_no_route += 1
            return
        skb.out_iface = route.device
        skb.out_device = self.devices.get(route.device)
        if self.iptables.traverse("mangle", "FORWARD", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        if self.iptables.traverse("filter", "FORWARD", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        self._ct_confirm(skb)
        self.rx_forwarded += 1
        self._output(skb, route)

    # -- stack: output ------------------------------------------------------------
    def send_ip(self, packet: IPv4Packet) -> None:
        """Send a locally generated packet."""
        skb = SkBuff(ipv4=packet)
        self._ct_in(skb)
        if self.iptables.traverse("mangle", "OUTPUT", skb) == Verdict.DROP:
            return
        if skb.ct_is_new and skb.ct_entry is not None:
            if self.iptables.traverse("nat", "OUTPUT", skb) == Verdict.DROP:
                return
            if skb.ct_entry.dnat is not None:
                self.conntrack.apply_nat(skb.ct_entry)
        self._apply_nat(skb)
        if self.iptables.traverse("filter", "OUTPUT", skb) == Verdict.DROP:
            return
        if self.is_local_address(skb.ipv4.dst):
            self._ct_confirm(skb)
            self._input_local(skb)
            return
        route = self.fib_lookup(skb.ipv4.dst, skb.mark)
        if route is None:
            self.rx_no_route += 1
            return
        skb.out_iface = route.device
        skb.out_device = self.devices.get(route.device)
        self._ct_confirm(skb)
        self._output(skb, route)

    def _output(self, skb: SkBuff, route) -> None:
        # XFRM output: wrap and restart routing with the outer packet.
        if skb.ipv4.proto != IPPROTO_ESP:
            policy = self.xfrm.lookup_policy(skb.ipv4, XfrmDirection.OUT)
            if policy is not None:
                state = self.xfrm.find_state_for_endpoints(
                    policy.tmpl_src, policy.tmpl_dst)
                if state is None:
                    self.esp_errors += 1  # no SA yet (IKE not done): drop
                    return
                outer = esp_encapsulate(state.sa, skb.ipv4)
                self.esp_out += 1
                outer_route = self.fib_lookup(outer.dst, skb.mark)
                if outer_route is None:
                    self.rx_no_route += 1
                    return
                outer_skb = SkBuff(ipv4=outer, mark=skb.mark,
                                   out_iface=outer_route.device,
                                   out_device=self.devices.get(
                                       outer_route.device))
                self._output(outer_skb, outer_route)
                return
        if self.iptables.traverse("mangle", "POSTROUTING", skb) == Verdict.DROP:
            self.rx_dropped_filter += 1
            return
        if skb.ct_is_new and skb.ct_entry is not None:
            if self.iptables.traverse("nat", "POSTROUTING", skb) == Verdict.DROP:
                self.rx_dropped_filter += 1
                return
            if skb.ct_entry.snat is not None:
                self.conntrack.apply_nat(skb.ct_entry)
                self._apply_nat(skb)
        self._transmit(skb, route)

    def _transmit(self, skb: SkBuff, route) -> None:
        device = skb.out_device
        if device is None:
            self.rx_no_route += 1
            return
        next_hop = route.gateway if route.gateway is not None else skb.ipv4.dst
        dst_mac = self.neighbors.get(next_hop, BROADCAST_MAC)
        frame = EthernetFrame(dst=dst_mac, src=device.mac,
                              ethertype=ETHERTYPE_IPV4,
                              payload=skb.ipv4.to_bytes(), vlan=skb.vlan)
        self.tx_sent += 1
        device.transmit(frame)

    # -- conntrack helpers ------------------------------------------------------
    def _ct_in(self, skb: SkBuff) -> None:
        ports = _l4_ports(skb.ipv4)
        if skb.ipv4.proto not in (IPPROTO_TCP, IPPROTO_UDP) or ports is None:
            return
        flow = FlowTuple(src_ip=skb.ipv4.src, dst_ip=skb.ipv4.dst,
                         proto=skb.ipv4.proto, src_port=ports[0],
                         dst_port=ports[1])
        found = self.conntrack.lookup(flow)
        if found is None:
            try:
                skb.ct_entry = self.conntrack.create(flow)
            except OverflowError:
                return
            skb.ct_direction = "orig"
            skb.ct_is_new = True
        else:
            skb.ct_entry, skb.ct_direction = found
            skb.ct_is_new = False
        skb.ct_entry.packets += 1
        # CONNMARK restore semantics are explicit via rules; the auto
        # restore below matches the common "-j CONNMARK --restore-mark"
        # usage only when the connection carries a mark and the packet
        # has none, which is how the sharable-NNF plugins configure it.

    def _ct_confirm(self, skb: SkBuff) -> None:
        if skb.ct_entry is not None and skb.ct_direction == "reply":
            self.conntrack.confirm(skb.ct_entry)

    def _apply_nat(self, skb: SkBuff) -> None:
        entry = skb.ct_entry
        if entry is None or (entry.snat is None and entry.dnat is None):
            return
        packet = skb.ipv4
        if skb.ct_direction == "orig":
            src = dst = None
            sport = dport = None
            if entry.snat is not None:
                src = entry.snat[0]
                sport = entry.snat[1] or None
            if entry.dnat is not None:
                dst = entry.dnat[0]
                dport = entry.dnat[1] or None
            skb.ipv4 = _rewrite(packet, src=src, dst=dst, sport=sport,
                                dport=dport)
        else:
            # Reply direction: undo the translation.
            src = dst = None
            sport = dport = None
            if entry.dnat is not None:
                src = entry.orig.dst_ip
                sport = entry.orig.dst_port or None
            if entry.snat is not None:
                dst = entry.orig.src_ip
                dport = entry.orig.src_port or None
            skb.ipv4 = _rewrite(packet, src=src, dst=dst, sport=sport,
                                dport=dport)
