"""Simulated Linux networking substrate.

The paper's Native Network Functions are stock Linux components:
iptables NAT/firewall, linuxbridge, strongSwan driving the kernel XFRM
IPsec path, dnsmasq, ...  The NNF driver starts them inside network
namespaces and configures them with script-shaped plugins.  This package
reproduces the slice of Linux those plugins touch:

* :class:`~repro.linuxnet.host.LinuxHost` — one kernel: namespaces,
  device registry, sysctls.
* :class:`~repro.linuxnet.namespace.NetworkNamespace` — a full IPv4
  stack: devices, routes, netfilter hooks, conntrack, XFRM.
* :mod:`~repro.linuxnet.iptables` — filter/nat/mangle tables with the
  targets the bundled NNF plugins use (including MARK/CONNMARK, the
  paper's "ad-hoc marking mechanism" for sharable NNFs).
* :mod:`~repro.linuxnet.bridge` — a learning bridge (the ``linuxbridge``
  NNF).
* :mod:`~repro.linuxnet.xfrm` — IPsec policies/states: the kernel fast
  path that makes native/Docker strongSwan outperform the VM flavor in
  Table 1.

Frame propagation is synchronous; the performance harness layers
service times on top (see ``repro.perf``), so functional behaviour and
timing are modelled once each.
"""

from repro.linuxnet.devices import Loopback, NetDevice, VethPair
from repro.linuxnet.host import LinuxHost
from repro.linuxnet.namespace import NetworkNamespace, SkBuff
from repro.linuxnet.routing import Route, RouteTable

__all__ = [
    "LinuxHost",
    "Loopback",
    "NetDevice",
    "NetworkNamespace",
    "Route",
    "RouteTable",
    "SkBuff",
    "VethPair",
]
