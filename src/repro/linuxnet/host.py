"""One Linux kernel: namespaces, bridges, veth plumbing, sysctls.

The NNF driver talks to an instance of this class the way the real
driver shells out to ``ip``/``iptables``/``brctl``: either through the
object API or through the command-string interpreter in
:mod:`repro.linuxnet.cmdline` (which the plugin "scripts" use).
"""

from __future__ import annotations

from typing import Optional

from repro.linuxnet.bridge import Bridge
from repro.linuxnet.devices import NetDevice, VethPair
from repro.linuxnet.namespace import NetworkNamespace

__all__ = ["LinuxHost"]


class LinuxHost:
    """Kernel-level container for all networking state of one node."""

    ROOT = "root"

    def __init__(self, hostname: str = "cpe") -> None:
        self.hostname = hostname
        self.namespaces: dict[str, NetworkNamespace] = {}
        self.bridges: dict[str, Bridge] = {}
        self.sysctls: dict[str, str] = {}
        self.root = self.add_namespace(self.ROOT)

    # -- namespaces -----------------------------------------------------------
    def add_namespace(self, name: str) -> NetworkNamespace:
        if name in self.namespaces:
            raise ValueError(f"namespace {name!r} already exists")
        namespace = NetworkNamespace(name)
        self.namespaces[name] = namespace
        return namespace

    def delete_namespace(self, name: str) -> None:
        if name == self.ROOT:
            raise ValueError("cannot delete the root namespace")
        try:
            namespace = self.namespaces.pop(name)
        except KeyError:
            raise KeyError(f"no namespace {name!r}") from None
        # Veth halves peered into other namespaces lose their link, as
        # deleting a netns destroys the devices inside it.
        for device in list(namespace.devices.values()):
            if device.peer is not None:
                device.peer.peer = None
            device.namespace = None

    def namespace(self, name: str) -> NetworkNamespace:
        try:
            return self.namespaces[name]
        except KeyError:
            raise KeyError(f"no namespace {name!r}") from None

    # -- plumbing ----------------------------------------------------------------
    def create_veth(self, name_a: str, name_b: str,
                    ns_a: str = ROOT, ns_b: str = ROOT,
                    mtu: int = 1500) -> VethPair:
        pair = VethPair(name_a, name_b, mtu=mtu)
        self.namespace(ns_a).add_device(pair.a)
        self.namespace(ns_b).add_device(pair.b)
        return pair

    def move_device(self, device_name: str, from_ns: str,
                    to_ns: str) -> NetDevice:
        device = self.namespace(from_ns).remove_device(device_name)
        self.namespace(to_ns).add_device(device)
        return device

    def create_bridge(self, name: str, namespace: str = ROOT,
                      vlan_filtering: bool = False) -> Bridge:
        if name in self.bridges:
            raise ValueError(f"bridge {name!r} already exists")
        bridge = Bridge(name, vlan_filtering=vlan_filtering)
        self.bridges[name] = bridge
        return bridge

    def delete_bridge(self, name: str) -> None:
        try:
            bridge = self.bridges.pop(name)
        except KeyError:
            raise KeyError(f"no bridge {name!r}") from None
        for port_name in list(bridge.ports):
            bridge.remove_port(port_name)

    def find_device(self, name: str) -> Optional[tuple[NetworkNamespace, NetDevice]]:
        for namespace in self.namespaces.values():
            if name in namespace.devices:
                return namespace, namespace.devices[name]
        return None

    # -- sysctl ----------------------------------------------------------------
    def set_sysctl(self, key: str, value: str) -> None:
        self.sysctls[key] = value
        if key == "net.ipv4.ip_forward":
            self.root.ip_forward = value.strip() == "1"
        prefix = "net.ipv4.conf."
        if key.startswith(prefix) and key.endswith(".forwarding"):
            # per-namespace forwarding via the netns name as "interface"
            ns_name = key[len(prefix):-len(".forwarding")]
            if ns_name in self.namespaces:
                self.namespaces[ns_name].ip_forward = value.strip() == "1"

    def get_sysctl(self, key: str, default: str = "0") -> str:
        return self.sysctls.get(key, default)

    def __repr__(self) -> str:
        return (f"<LinuxHost {self.hostname}: {len(self.namespaces)} netns, "
                f"{len(self.bridges)} bridges>")
