"""iptables: filter/nat/mangle tables, builtin + user chains, targets.

This is the rules engine; :mod:`repro.linuxnet.cmdline` parses
``iptables ...`` command strings (what the NNF plugin "scripts" emit)
into these objects.

Semantics follow netfilter:

* the ``nat`` table sees only the first packet of a connection (NEW);
  translations are recorded in conntrack and replayed for the rest of
  the flow in both directions;
* ``MARK``/``CONNMARK``/``LOG`` are non-terminating targets;
* user-defined chains are reached with jumps, ``RETURN`` resumes the
  caller, and exhausting a user chain falls back to the caller too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.linuxnet.conntrack import ConnState
from repro.net.addresses import ip_to_int, parse_cidr

if TYPE_CHECKING:  # pragma: no cover
    from repro.linuxnet.namespace import SkBuff

__all__ = [
    "BUILTIN_CHAINS",
    "Chain",
    "IptablesError",
    "Match",
    "Rule",
    "Ruleset",
    "Table",
    "Verdict",
]


class IptablesError(Exception):
    """Bad table/chain/rule manipulation."""


class Verdict:
    ACCEPT = "ACCEPT"
    DROP = "DROP"
    RETURN = "RETURN"
    CONTINUE = "CONTINUE"  # internal: fell off the end of a user chain


#: Which builtin chains each table owns (netfilter layout).
BUILTIN_CHAINS: dict[str, tuple[str, ...]] = {
    "filter": ("INPUT", "FORWARD", "OUTPUT"),
    "nat": ("PREROUTING", "INPUT", "OUTPUT", "POSTROUTING"),
    "mangle": ("PREROUTING", "INPUT", "FORWARD", "OUTPUT", "POSTROUTING"),
}

#: Targets that do not stop rule traversal.
_NON_TERMINATING = {"MARK", "CONNMARK", "LOG"}


@dataclass
class Match:
    """Rule match criteria; ``None`` fields are wildcards."""

    in_iface: Optional[str] = None
    out_iface: Optional[str] = None
    src: Optional[str] = None            # CIDR
    dst: Optional[str] = None            # CIDR
    proto: Optional[int] = None
    sport: Optional[tuple[int, int]] = None   # inclusive range
    dport: Optional[tuple[int, int]] = None
    mark: Optional[tuple[int, int]] = None    # (value, mask)
    ctstate: Optional[frozenset[ConnState]] = None
    invert_src: bool = False
    invert_dst: bool = False

    def __post_init__(self) -> None:
        if self.src is not None:
            parse_cidr(self.src if "/" in self.src else self.src + "/32")
        if self.dst is not None:
            parse_cidr(self.dst if "/" in self.dst else self.dst + "/32")

    def _cidr_hit(self, cidr: str, address: str) -> bool:
        if "/" not in cidr:
            cidr += "/32"
        network, plen = parse_cidr(cidr)
        if plen == 0:
            return True
        shift = 32 - plen
        return (ip_to_int(address) >> shift) == (network >> shift)

    def hits(self, skb: "SkBuff") -> bool:
        if self.in_iface is not None and skb.in_iface != self.in_iface:
            return False
        if self.out_iface is not None and skb.out_iface != self.out_iface:
            return False
        if skb.ipv4 is None:
            return False
        if self.src is not None:
            if self._cidr_hit(self.src, skb.ipv4.src) == self.invert_src:
                return False
        if self.dst is not None:
            if self._cidr_hit(self.dst, skb.ipv4.dst) == self.invert_dst:
                return False
        if self.proto is not None and skb.ipv4.proto != self.proto:
            return False
        if self.sport is not None:
            if skb.sport is None or not (
                    self.sport[0] <= skb.sport <= self.sport[1]):
                return False
        if self.dport is not None:
            if skb.dport is None or not (
                    self.dport[0] <= skb.dport <= self.dport[1]):
                return False
        if self.mark is not None:
            value, mask = self.mark
            if (skb.mark & mask) != (value & mask):
                return False
        if self.ctstate is not None:
            if skb.ct_entry is None:
                return False
            # netfilter semantics: any reply-direction packet belongs to
            # an ESTABLISHED connection; the first orig packet is NEW.
            if skb.ct_direction == "reply":
                state = ConnState.ESTABLISHED
            elif skb.ct_is_new:
                state = ConnState.NEW
            else:
                state = skb.ct_entry.state
            if state not in self.ctstate:
                return False
        return True


@dataclass
class Rule:
    """One iptables rule: match criteria plus a target.

    ``target`` is a chain name for jumps or a special target; special
    targets take keyword arguments in ``target_args`` (e.g.
    ``{"to_ip": "1.2.3.4", "to_port": 8080}`` for DNAT, or
    ``{"set_mark": 7, "mask": 0xffffffff}`` for MARK).
    """

    match: Match
    target: str
    target_args: dict = field(default_factory=dict)
    comment: str = ""
    packets: int = 0
    bytes: int = 0

    def spec(self) -> str:
        """Human-readable one-line form (for ``iptables -L`` output)."""
        parts = []
        m = self.match
        if m.in_iface:
            parts.append(f"-i {m.in_iface}")
        if m.out_iface:
            parts.append(f"-o {m.out_iface}")
        if m.src:
            parts.append(f"{'! ' if m.invert_src else ''}-s {m.src}")
        if m.dst:
            parts.append(f"{'! ' if m.invert_dst else ''}-d {m.dst}")
        if m.proto is not None:
            parts.append(f"-p {m.proto}")
        if m.sport:
            parts.append(f"--sport {m.sport[0]}:{m.sport[1]}")
        if m.dport:
            parts.append(f"--dport {m.dport[0]}:{m.dport[1]}")
        if m.mark:
            parts.append(f"-m mark --mark {m.mark[0]:#x}/{m.mark[1]:#x}")
        if m.ctstate:
            states = ",".join(sorted(s.value for s in m.ctstate))
            parts.append(f"-m conntrack --ctstate {states}")
        parts.append(f"-j {self.target}")
        for key, value in sorted(self.target_args.items()):
            parts.append(f"{key}={value}")
        return " ".join(parts)


class Chain:
    def __init__(self, name: str, builtin: bool, policy: str = Verdict.ACCEPT):
        self.name = name
        self.builtin = builtin
        self.policy = policy
        self.rules: list[Rule] = []

    def append(self, rule: Rule) -> None:
        self.rules.append(rule)

    def insert(self, index: int, rule: Rule) -> None:
        self.rules.insert(index, rule)

    def delete(self, index: int) -> Rule:
        try:
            return self.rules.pop(index)
        except IndexError:
            raise IptablesError(
                f"chain {self.name} has no rule #{index}") from None

    def flush(self) -> None:
        self.rules.clear()


class Table:
    def __init__(self, name: str) -> None:
        if name not in BUILTIN_CHAINS:
            raise IptablesError(f"unknown table {name!r}")
        self.name = name
        self.chains: dict[str, Chain] = {
            chain: Chain(chain, builtin=True)
            for chain in BUILTIN_CHAINS[name]
        }

    def chain(self, name: str) -> Chain:
        try:
            return self.chains[name]
        except KeyError:
            raise IptablesError(
                f"table {self.name} has no chain {name!r}") from None

    def new_chain(self, name: str) -> Chain:
        if name in self.chains:
            raise IptablesError(f"chain {name!r} already exists")
        chain = Chain(name, builtin=False)
        self.chains[name] = chain
        return chain

    def delete_chain(self, name: str) -> None:
        chain = self.chain(name)
        if chain.builtin:
            raise IptablesError(f"cannot delete builtin chain {name!r}")
        if chain.rules:
            raise IptablesError(f"chain {name!r} is not empty")
        for other in self.chains.values():
            for rule in other.rules:
                if rule.target == name:
                    raise IptablesError(f"chain {name!r} is referenced")
        del self.chains[name]


class Ruleset:
    """All tables of one namespace, plus the traversal engine."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {
            name: Table(name) for name in BUILTIN_CHAINS
        }

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise IptablesError(f"unknown table {name!r}") from None

    def append(self, table: str, chain: str, rule: Rule) -> None:
        self.table(table).chain(chain).append(rule)

    def traverse(self, table_name: str, chain_name: str,
                 skb: "SkBuff") -> str:
        """Run ``skb`` through a hook chain; returns ACCEPT or DROP.

        Jump depth is bounded to catch accidental rule cycles in plugin
        scripts (netfilter bounds it too).
        """
        table = self.table(table_name)
        verdict = self._walk(table, table.chain(chain_name), skb, depth=0)
        if verdict in (Verdict.RETURN, Verdict.CONTINUE):
            return table.chain(chain_name).policy
        return verdict

    def _walk(self, table: Table, chain: Chain, skb: "SkBuff",
              depth: int) -> str:
        if depth > 16:
            raise IptablesError(
                f"jump depth exceeded in table {table.name}")
        for rule in chain.rules:
            if not rule.match.hits(skb):
                continue
            rule.packets += 1
            rule.bytes += skb.ipv4.total_length if skb.ipv4 else 0
            verdict = self._apply_target(table, rule, skb, depth)
            if verdict == Verdict.CONTINUE:
                continue
            return verdict
        return Verdict.CONTINUE if not chain.builtin else chain.policy

    def _apply_target(self, table: Table, rule: Rule, skb: "SkBuff",
                      depth: int) -> str:
        target = rule.target
        args = rule.target_args
        if target in (Verdict.ACCEPT, Verdict.DROP, Verdict.RETURN):
            return target
        if target == "MARK":
            mask = args.get("mask", 0xFFFFFFFF)
            skb.mark = (skb.mark & ~mask) | (args["set_mark"] & mask)
            return Verdict.CONTINUE
        if target == "CONNMARK":
            op = args.get("op", "set")
            if skb.ct_entry is None:
                return Verdict.CONTINUE
            if op == "set":
                skb.ct_entry.mark = args["set_mark"]
            elif op == "save":
                skb.ct_entry.mark = skb.mark
            elif op == "restore":
                skb.mark = skb.ct_entry.mark
            else:
                raise IptablesError(f"unknown CONNMARK op {op!r}")
            return Verdict.CONTINUE
        if target == "LOG":
            return Verdict.CONTINUE
        if target == "SNAT":
            if table.name != "nat":
                raise IptablesError("SNAT only valid in the nat table")
            if skb.ct_entry is not None:
                skb.ct_entry.snat = (args["to_ip"],
                                     args.get("to_port", 0))
            return Verdict.ACCEPT
        if target == "DNAT":
            if table.name != "nat":
                raise IptablesError("DNAT only valid in the nat table")
            if skb.ct_entry is not None:
                skb.ct_entry.dnat = (args["to_ip"],
                                     args.get("to_port", 0))
            return Verdict.ACCEPT
        if target == "MASQUERADE":
            if table.name != "nat":
                raise IptablesError("MASQUERADE only valid in the nat table")
            if skb.ct_entry is not None and skb.out_device is not None:
                if not skb.out_device.addresses:
                    raise IptablesError(
                        f"MASQUERADE: {skb.out_device.name} has no address")
                nat_ip = skb.out_device.addresses[0][0]
                skb.ct_entry.snat = (nat_ip, 0)
            return Verdict.ACCEPT
        # Anything else is a jump to a user chain.
        user_chain = table.chain(target)
        verdict = self._walk(table, user_chain, skb, depth + 1)
        if verdict in (Verdict.RETURN, Verdict.CONTINUE):
            return Verdict.CONTINUE
        return verdict

    # -- inspection --------------------------------------------------------
    def list_rules(self, table_name: str) -> list[str]:
        """``iptables -S``-style dump of one table."""
        table = self.table(table_name)
        lines = []
        for chain in table.chains.values():
            if chain.builtin:
                lines.append(f"-P {chain.name} {chain.policy}")
            else:
                lines.append(f"-N {chain.name}")
        for chain in table.chains.values():
            for rule in chain.rules:
                lines.append(f"-A {chain.name} {rule.spec()}")
        return lines
