"""IPv4 routing table with longest-prefix match."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import int_to_ip, ip_to_int, parse_cidr

__all__ = ["Route", "RouteTable"]


@dataclass(frozen=True)
class Route:
    """One FIB entry.

    ``gateway`` of ``None`` means the destination is on-link.  ``metric``
    breaks ties among equal-length prefixes (lower wins).
    """

    network: int
    prefix_len: int
    device: str
    gateway: Optional[str] = None
    metric: int = 0

    @classmethod
    def parse(cls, cidr: str, device: str, gateway: Optional[str] = None,
              metric: int = 0) -> "Route":
        network, plen = parse_cidr(cidr)
        if gateway is not None:
            ip_to_int(gateway)  # validate
        return cls(network=network, prefix_len=plen, device=device,
                   gateway=gateway, metric=metric)

    @property
    def cidr(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix_len}"

    def matches(self, address: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (address >> shift) == (self.network >> shift)


class RouteTable:
    """Longest-prefix-match FIB.

    Routes are kept sorted by (prefix_len desc, metric asc) so ``lookup``
    is a linear scan returning the first hit — plenty fast at the table
    sizes a CPE holds, and trivially correct.
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

    def add(self, route: Route) -> None:
        if route in self._routes:
            raise ValueError(f"duplicate route {route.cidr} via {route.device}")
        self._routes.append(route)
        self._routes.sort(key=lambda r: (-r.prefix_len, r.metric))

    def add_cidr(self, cidr: str, device: str,
                 gateway: Optional[str] = None, metric: int = 0) -> Route:
        route = Route.parse(cidr, device, gateway=gateway, metric=metric)
        self.add(route)
        return route

    def remove(self, route: Route) -> None:
        try:
            self._routes.remove(route)
        except ValueError:
            raise KeyError(f"no such route: {route.cidr}") from None

    def remove_device(self, device: str) -> int:
        """Drop every route through ``device``; returns how many."""
        kept = [r for r in self._routes if r.device != device]
        removed = len(self._routes) - len(kept)
        self._routes = kept
        return removed

    def lookup(self, address: "str | int") -> Optional[Route]:
        """Longest-prefix match; None when no route (not even default)."""
        value = ip_to_int(address) if isinstance(address, str) else address
        for route in self._routes:
            if route.matches(value):
                return route
        return None
