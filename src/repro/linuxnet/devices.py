"""Network devices: generic netdevs, veth pairs, loopback.

A :class:`NetDevice` delivers received frames either to the namespace
stack it is enslaved to, to a bridge, or to an externally registered
handler (that is how switch datapath ports and NF processes tap in).
Transmission goes to the connected peer (veth) or the attached link.

Ingress and egress are *batch-aware*: :meth:`NetDevice.transmit_batch`
moves a whole list of frames to the peer in one :meth:`receive_batch`
call, and a handler registered with a ``batch_handler`` companion
(switch datapath ports do this) receives the entire batch in one call —
real device traffic therefore lands on the switch's batched pipeline
(:meth:`~repro.switch.datapath.Datapath.process_batch_from`) instead of
the per-frame path.  Namespace stacks and bridges are batch sinks too
(:meth:`NetworkNamespace._stack_input_batch`,
:meth:`Bridge._bridge_input_batch`), so NF-bound egress amortizes the
same way switch-bound ingress does; only VLAN demux still degrades to
the per-frame :meth:`receive` loop, with identical observable
behavior.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.net.addresses import MacAddress
from repro.net.ethernet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.linuxnet.namespace import NetworkNamespace

__all__ = ["Loopback", "NetDevice", "VethPair"]

FrameHandler = Callable[["NetDevice", EthernetFrame], None]
BatchFrameHandler = Callable[["NetDevice", Sequence[EthernetFrame]], None]

_mac_counter = itertools.count(1)


class NetDevice:
    """A network interface.

    Exactly one of three sinks consumes frames arriving at the device:

    1. an attached handler (``attach_handler``) — switch ports, taps;
    2. a bridge the device is enslaved to (set by ``Bridge.add_port``);
    3. the namespace IP stack, when the device is inside a namespace and
       is ``up``.

    Counters mirror ``/sys/class/net/<dev>/statistics``.
    """

    def __init__(self, name: str, mac: Optional[MacAddress] = None,
                 mtu: int = 1500) -> None:
        if not name or "/" in name:
            raise ValueError(f"bad device name: {name!r}")
        if mtu < 68:  # RFC 791 minimum
            raise ValueError(f"MTU below IPv4 minimum: {mtu}")
        self.name = name
        self.mac = mac if mac is not None else MacAddress.from_index(
            next(_mac_counter))
        self.mtu = mtu
        self.up = False
        self.namespace: Optional["NetworkNamespace"] = None
        self.addresses: list[tuple[str, int]] = []  # (ip, prefix_len)
        self.peer: Optional["NetDevice"] = None
        self.bridge = None  # set by repro.linuxnet.bridge.Bridge
        self.vlan_subdevices: dict[int, "VlanDevice"] = {}
        self._handler: Optional[FrameHandler] = None
        self._batch_handler: Optional[BatchFrameHandler] = None
        # statistics
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_dropped = 0
        self.tx_dropped = 0

    # -- configuration -----------------------------------------------------
    def add_address(self, ip: str, prefix_len: int) -> None:
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length: {prefix_len}")
        entry = (ip, prefix_len)
        if entry in self.addresses:
            raise ValueError(f"address {ip}/{prefix_len} already on {self.name}")
        self.addresses.append(entry)
        if self.namespace is not None:
            self.namespace._on_address_added(self, ip, prefix_len)

    def set_up(self) -> None:
        self.up = True

    def set_down(self) -> None:
        self.up = False

    def attach_handler(self, handler: FrameHandler,
                       batch_handler: Optional[BatchFrameHandler] = None
                       ) -> None:
        """Divert received frames to ``handler`` (e.g. a switch port).

        ``batch_handler``, when given, receives whole frame batches
        arriving through :meth:`receive_batch` in one call instead of a
        per-frame loop — the hook through which real device ingress
        reaches the switch's batched pipeline.
        """
        if self._handler is not None:
            raise ValueError(f"device {self.name} already has a handler")
        self._handler = handler
        self._batch_handler = batch_handler

    def detach_handler(self) -> None:
        self._handler = None
        self._batch_handler = None

    # -- dataplane -----------------------------------------------------------
    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this device."""
        if not self.up:
            self.tx_dropped += 1
            return
        if len(frame) > self.mtu + 18:  # L2 headers don't count against MTU
            self.tx_dropped += 1
            return
        self.tx_packets += 1
        self.tx_bytes += len(frame)
        if self.peer is not None:
            self.peer.receive(frame)

    def transmit_batch(self, frames: Sequence[EthernetFrame]) -> None:
        """Send a batch out of this device in one peer delivery.

        Per-frame admission (up state, MTU) matches :meth:`transmit`
        exactly — oversized frames are dropped from the batch, the rest
        reach the peer together through :meth:`receive_batch`.
        """
        if not self.up:
            self.tx_dropped += len(frames)
            return
        limit = self.mtu + 18  # L2 headers don't count against MTU
        passed = []
        nbytes = 0
        for frame in frames:
            size = len(frame)
            if size > limit:
                self.tx_dropped += 1
                continue
            passed.append(frame)
            nbytes += size
        if not passed:
            return
        self.tx_packets += len(passed)
        self.tx_bytes += nbytes
        if self.peer is not None:
            self.peer.receive_batch(passed)

    def receive(self, frame: EthernetFrame) -> None:
        """A frame arrived at this device from the outside."""
        if not self.up:
            self.rx_dropped += 1
            return
        self.rx_packets += 1
        self.rx_bytes += len(frame)
        if (frame.vlan is not None and frame.vlan in self.vlan_subdevices
                and self._handler is None and self.bridge is None):
            sub = self.vlan_subdevices[frame.vlan]
            sub.receive(frame.without_vlan())
            return
        if self._handler is not None:
            self._handler(self, frame)
        elif self.bridge is not None:
            self.bridge._bridge_input(self, frame)
        elif self.namespace is not None:
            self.namespace._stack_input(self, frame)
        else:
            self.rx_dropped += 1
            self.rx_packets -= 1
            self.rx_bytes -= len(frame)

    def receive_batch(self, frames: Sequence[EthernetFrame]) -> None:
        """A whole batch arrived at this device from the outside.

        Every sink is batch-aware: a batch handler (switch ports) gets
        the full batch in one call — this is how real ingress traffic
        reaches
        :meth:`~repro.switch.datapath.Datapath.process_batch_from` — a
        bridge-enslaved device hands it to
        :meth:`~repro.linuxnet.bridge.Bridge._bridge_input_batch`, and
        a namespace device to
        :meth:`~repro.linuxnet.namespace.NetworkNamespace._stack_input_batch`;
        in each case counters are written once per batch.  Only VLAN
        demux (subinterface-carrying devices with no handler/bridge)
        still degrades to the per-frame :meth:`receive` loop.
        """
        if not self.up:
            self.rx_dropped += len(frames)
            return
        handler = self._batch_handler
        if handler is not None:
            self.rx_packets += len(frames)
            self.rx_bytes += sum(len(frame) for frame in frames)
            handler(self, frames)
            return
        if self._handler is None and not self.vlan_subdevices:
            if self.bridge is not None:
                self.rx_packets += len(frames)
                self.rx_bytes += sum(len(frame) for frame in frames)
                self.bridge._bridge_input_batch(self, frames)
                return
            if self.namespace is not None:
                self.rx_packets += len(frames)
                self.rx_bytes += sum(len(frame) for frame in frames)
                self.namespace._stack_input_batch(self, frames)
                return
        for frame in frames:
            self.receive(frame)

    def owns_address(self, ip: str) -> bool:
        return any(addr == ip for addr, _plen in self.addresses)

    def __repr__(self) -> str:
        where = self.namespace.name if self.namespace else "detached"
        state = "up" if self.up else "down"
        return f"<NetDevice {self.name} ({where}, {state}, {self.mac})>"


class VethPair:
    """A virtual Ethernet cable: two cross-connected devices.

    The NNF driver uses veth pairs to attach a namespace-confined NNF to
    a switch port, exactly as the real un-orchestrator does.
    """

    def __init__(self, name_a: str, name_b: str, mtu: int = 1500) -> None:
        if name_a == name_b:
            raise ValueError("veth endpoints must have distinct names")
        self.a = NetDevice(name_a, mtu=mtu)
        self.b = NetDevice(name_b, mtu=mtu)
        self.a.peer = self.b
        self.b.peer = self.a

    def __iter__(self):
        return iter((self.a, self.b))


class VlanDevice(NetDevice):
    """802.1Q subinterface (``eth0.101``-style).

    Frames transmitted through it are tagged with ``vid`` and sent via
    the parent; tagged frames arriving at the parent are demuxed to the
    matching subinterface by the namespace stack (tag stripped).  This
    is how a single-interface NNF tells service graphs apart — the
    paper's adaptation layer "configures it to receive the traffic from
    multiple service graphs, appropriately marked".
    """

    def __init__(self, parent: "NetDevice", vid: int,
                 name: Optional[str] = None) -> None:
        if not 0 <= vid <= 4095:
            raise ValueError(f"bad VLAN id {vid}")
        super().__init__(name or f"{parent.name}.{vid}", mac=parent.mac,
                         mtu=parent.mtu)
        self.parent = parent
        self.vid = vid
        parent.vlan_subdevices[vid] = self

    def transmit(self, frame: EthernetFrame) -> None:
        if not self.up:
            self.tx_dropped += 1
            return
        self.tx_packets += 1
        self.tx_bytes += len(frame)
        self.parent.transmit(frame.with_vlan(self.vid))

    def transmit_batch(self, frames: Sequence[EthernetFrame]) -> None:
        if not self.up:
            self.tx_dropped += len(frames)
            return
        self.tx_packets += len(frames)
        self.tx_bytes += sum(len(frame) for frame in frames)
        self.parent.transmit_batch(
            [frame.with_vlan(self.vid) for frame in frames])


class Loopback(NetDevice):
    """``lo`` — transmits straight back into the local stack."""

    def __init__(self) -> None:
        super().__init__("lo", mac=MacAddress("00:00:00:00:00:00"),
                         mtu=65536)

    def transmit(self, frame: EthernetFrame) -> None:
        if not self.up:
            self.tx_dropped += 1
            return
        self.tx_packets += 1
        self.tx_bytes += len(frame)
        self.receive(frame)

    def transmit_batch(self, frames: Sequence[EthernetFrame]) -> None:
        if not self.up:
            self.tx_dropped += len(frames)
            return
        self.tx_packets += len(frames)
        self.tx_bytes += sum(len(frame) for frame in frames)
        self.receive_batch(frames)
