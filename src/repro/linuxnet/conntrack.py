"""Connection tracking (a minimal nf_conntrack).

NAT in Linux consults the ``nat`` table only for the first packet of a
connection; every later packet — in both directions — is translated
from the conntrack entry.  The sharable-NNF design in the paper leans
on the same machinery via CONNMARK, so marks are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["ConnState", "ConnTrack", "ConnTrackEntry", "FlowTuple"]


@dataclass(frozen=True)
class FlowTuple:
    """Directional 5-tuple."""

    src_ip: str
    dst_ip: str
    proto: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FlowTuple":
        return FlowTuple(src_ip=self.dst_ip, dst_ip=self.src_ip,
                         proto=self.proto, src_port=self.dst_port,
                         dst_port=self.src_port)


class ConnState(Enum):
    NEW = "NEW"
    ESTABLISHED = "ESTABLISHED"
    RELATED = "RELATED"


@dataclass
class ConnTrackEntry:
    """One tracked connection.

    ``orig`` is the tuple of the first packet; ``reply`` is the tuple
    reply packets carry *after* any NAT (i.e. the inverted post-NAT
    tuple).  ``mark`` is the connection mark CONNMARK reads/writes.
    """

    orig: FlowTuple
    reply: FlowTuple
    state: ConnState = ConnState.NEW
    mark: int = 0
    packets: int = 0
    snat: Optional[tuple[str, int]] = None  # (new_src_ip, new_src_port)
    dnat: Optional[tuple[str, int]] = None  # (new_dst_ip, new_dst_port)

    def tuple_for(self, direction: str) -> FlowTuple:
        return self.orig if direction == "orig" else self.reply


class ConnTrack:
    """Connection table keyed by directional tuples."""

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self._by_tuple: dict[FlowTuple, tuple[ConnTrackEntry, str]] = {}
        self.insert_failures = 0

    def __len__(self) -> int:
        # Each entry is registered under both directions.
        return len(self._by_tuple) // 2 + len(self._by_tuple) % 2

    def lookup(self, flow: FlowTuple) -> Optional[tuple[ConnTrackEntry, str]]:
        """Return ``(entry, direction)``; direction is 'orig' or 'reply'."""
        return self._by_tuple.get(flow)

    def create(self, flow: FlowTuple) -> ConnTrackEntry:
        """Track a NEW connection seen in direction ``orig``."""
        if len(self._by_tuple) // 2 >= self.max_entries:
            self.insert_failures += 1
            raise OverflowError("conntrack table full")
        entry = ConnTrackEntry(orig=flow, reply=flow.reversed())
        self._by_tuple[flow] = (entry, "orig")
        self._by_tuple[entry.reply] = (entry, "reply")
        return entry

    def apply_nat(self, entry: ConnTrackEntry) -> None:
        """Re-index the reply direction after NAT was decided.

        With SNAT the reply arrives addressed to the NAT address; with
        DNAT the reply originates from the real (translated) server.
        """
        del self._by_tuple[entry.reply]
        src_ip, src_port = entry.orig.src_ip, entry.orig.src_port
        dst_ip, dst_port = entry.orig.dst_ip, entry.orig.dst_port
        if entry.snat is not None:
            src_ip = entry.snat[0]
            src_port = entry.snat[1] or src_port  # port 0 = keep original
        if entry.dnat is not None:
            dst_ip = entry.dnat[0]
            dst_port = entry.dnat[1] or dst_port
        entry.reply = FlowTuple(src_ip=dst_ip, dst_ip=src_ip,
                                proto=entry.orig.proto,
                                src_port=dst_port, dst_port=src_port)
        self._by_tuple[entry.reply] = (entry, "reply")

    def confirm(self, entry: ConnTrackEntry) -> None:
        """First reply (or second orig) packet establishes the flow."""
        entry.state = ConnState.ESTABLISHED

    def remove(self, entry: ConnTrackEntry) -> None:
        self._by_tuple.pop(entry.orig, None)
        self._by_tuple.pop(entry.reply, None)

    def flush(self) -> None:
        self._by_tuple.clear()

    def entries(self) -> list[ConnTrackEntry]:
        seen: list[ConnTrackEntry] = []
        for entry, direction in self._by_tuple.values():
            if direction == "orig":
                seen.append(entry)
        return seen
