"""Interpreter for the shell commands NNF plugin scripts emit.

The paper implements each NNF plugin "as a collection of bash scripts
that control the basic lifecycle (create, update, etc.) of the NF".
To preserve that shape, the bundled plugins in :mod:`repro.nnf.plugins`
are literally lists of command strings (``ip netns add ...``,
``iptables -t nat -A POSTROUTING ...``); this module executes them
against a :class:`~repro.linuxnet.host.LinuxHost`.

Supported commands (the subset the plugins use):

* ``ip netns add|del NAME`` and the ``ip netns exec NS <cmd>`` prefix
* ``ip link add A type veth peer name B``
* ``ip link set DEV netns NS | up | down | mtu N | master BR | nomaster``
* ``ip addr add IP/PLEN dev DEV``
* ``ip route add CIDR|default [via GW] dev DEV``
* ``ip neigh add IP lladdr MAC``
* ``ip xfrm state add src S dst D proto esp spi N enc HEX auth HEX``
* ``ip xfrm policy add src CIDR dst CIDR dir in|out tmpl src S dst D``
* ``iptables [-t TABLE] -A|-I|-N|-P|-F ...``
* ``brctl addbr|delbr|addif|delif ...``
* ``sysctl -w KEY=VALUE``
* ``true`` / ``echo ...`` (no-ops, so scripts can log)
"""

from __future__ import annotations

import shlex
from typing import Optional

from repro.ipsec.sa import SecurityAssociation
from repro.linuxnet.conntrack import ConnState
from repro.linuxnet.host import LinuxHost
from repro.linuxnet.iptables import Match, Rule
from repro.linuxnet.xfrm import Selector, XfrmDirection, XfrmPolicy, XfrmState
from repro.net.addresses import MacAddress

__all__ = ["CommandError", "ScriptRunner"]

_PROTO_NAMES = {"icmp": 1, "tcp": 6, "udp": 17, "esp": 50}


class CommandError(Exception):
    """A script command failed (unknown syntax or invalid operation)."""


class ScriptRunner:
    """Executes command strings against one :class:`LinuxHost`."""

    def __init__(self, host: LinuxHost, namespace: str = LinuxHost.ROOT) -> None:
        self.host = host
        self.default_namespace = namespace
        self.executed: list[str] = []

    # -- public API ---------------------------------------------------------
    def run_script(self, lines: "list[str] | str") -> None:
        """Run each non-empty, non-comment line of a script."""
        if isinstance(lines, str):
            lines = lines.splitlines()
        for line in lines:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            self.run(text)

    def run(self, command: str) -> None:
        """Execute a single command string."""
        self.executed.append(command)
        try:
            argv = shlex.split(command)
        except ValueError as exc:
            raise CommandError(f"unparseable command {command!r}: {exc}")
        if not argv:
            return
        self._dispatch(argv, self.default_namespace, command)

    # -- dispatch ---------------------------------------------------------------
    def _dispatch(self, argv: list[str], netns: str, original: str) -> None:
        program = argv[0]
        if program in ("true", "echo", ":"):
            return
        if program == "ip":
            self._ip(argv[1:], netns, original)
        elif program == "iptables":
            self._iptables(argv[1:], netns, original)
        elif program == "brctl":
            self._brctl(argv[1:], original)
        elif program == "sysctl":
            self._sysctl(argv[1:], netns, original)
        else:
            raise CommandError(f"unknown program {program!r} in {original!r}")

    # -- ip ------------------------------------------------------------------------
    def _ip(self, args: list[str], netns: str, original: str) -> None:
        if not args:
            raise CommandError(f"bare 'ip' command: {original!r}")
        obj = args[0]
        if obj == "netns":
            self._ip_netns(args[1:], original)
        elif obj == "link":
            self._ip_link(args[1:], netns, original)
        elif obj in ("addr", "address"):
            self._ip_addr(args[1:], netns, original)
        elif obj == "route":
            self._ip_route(args[1:], netns, original)
        elif obj in ("neigh", "neighbor", "neighbour"):
            self._ip_neigh(args[1:], netns, original)
        elif obj == "rule":
            self._ip_rule(args[1:], netns, original)
        elif obj == "xfrm":
            self._ip_xfrm(args[1:], netns, original)
        else:
            raise CommandError(f"unsupported 'ip {obj}' in {original!r}")

    def _ip_netns(self, args: list[str], original: str) -> None:
        if len(args) >= 2 and args[0] == "add":
            self.host.add_namespace(args[1])
        elif len(args) >= 2 and args[0] in ("del", "delete"):
            self.host.delete_namespace(args[1])
        elif len(args) >= 3 and args[0] == "exec":
            inner_ns = args[1]
            if inner_ns not in self.host.namespaces:
                raise CommandError(f"no such namespace {inner_ns!r}")
            self._dispatch(args[2:], inner_ns, original)
        else:
            raise CommandError(f"unsupported 'ip netns' form: {original!r}")

    def _ip_link(self, args: list[str], netns: str, original: str) -> None:
        if not args:
            raise CommandError(f"bare 'ip link': {original!r}")
        if args[0] == "add":
            rest = args[1:]
            # ip link add A type veth peer name B
            if "type" in rest and "veth" in rest and "peer" in rest:
                name_a = rest[0]
                name_b = rest[rest.index("name") + 1]
                self.host.create_veth(name_a, name_b, ns_a=netns, ns_b=netns)
                return
            # ip link add link PARENT name NAME type vlan id VID
            if rest[:1] == ["link"] and "vlan" in rest and "id" in rest:
                from repro.linuxnet.devices import VlanDevice
                parent_name = rest[1]
                name = rest[rest.index("name") + 1]
                vid = int(rest[rest.index("id") + 1])
                namespace = self.host.namespace(netns)
                parent = namespace.device(parent_name)
                sub = VlanDevice(parent, vid, name=name)
                namespace.add_device(sub)
                return
            raise CommandError(f"unsupported 'ip link add' form: {original!r}")
        if args[0] in ("del", "delete"):
            found = self.host.find_device(args[1])
            if found is None:
                raise CommandError(f"no such device {args[1]!r}")
            namespace, device = found
            if device.peer is not None:
                device.peer.peer = None
            namespace.remove_device(device.name)
            return
        if args[0] == "set":
            dev_name = args[1]
            namespace = self.host.namespace(netns)
            if dev_name not in namespace.devices:
                raise CommandError(
                    f"no device {dev_name!r} in netns {netns!r}")
            device = namespace.devices[dev_name]
            rest = args[2:]
            i = 0
            while i < len(rest):
                word = rest[i]
                if word == "up":
                    device.set_up()
                    i += 1
                elif word == "down":
                    device.set_down()
                    i += 1
                elif word == "mtu":
                    device.mtu = int(rest[i + 1])
                    i += 2
                elif word == "netns":
                    self.host.move_device(dev_name, netns, rest[i + 1])
                    i += 2
                elif word == "master":
                    bridge = self.host.bridges.get(rest[i + 1])
                    if bridge is None:
                        raise CommandError(f"no bridge {rest[i + 1]!r}")
                    bridge.add_port(device)
                    i += 2
                elif word == "nomaster":
                    if device.bridge is not None:
                        device.bridge.remove_port(device.name)
                    i += 1
                elif word == "address":
                    device.mac = MacAddress(rest[i + 1])
                    i += 2
                else:
                    raise CommandError(
                        f"unsupported 'ip link set' token {word!r}")
            return
        raise CommandError(f"unsupported 'ip link' form: {original!r}")

    def _ip_addr(self, args: list[str], netns: str, original: str) -> None:
        if len(args) >= 4 and args[0] == "add" and args[2] == "dev":
            address = args[1]
            if "/" not in address:
                raise CommandError(f"address needs a prefix length: {original!r}")
            ip, _, plen = address.partition("/")
            namespace = self.host.namespace(netns)
            namespace.device(args[3]).add_address(ip, int(plen))
            return
        raise CommandError(f"unsupported 'ip addr' form: {original!r}")

    def _ip_route(self, args: list[str], netns: str, original: str) -> None:
        if not args or args[0] != "add":
            raise CommandError(f"unsupported 'ip route' form: {original!r}")
        rest = args[1:]
        if not rest:
            raise CommandError(f"'ip route add' needs a destination: {original!r}")
        destination = rest[0]
        if destination == "default":
            destination = "0.0.0.0/0"
        gateway: Optional[str] = None
        device: Optional[str] = None
        table_id: Optional[int] = None
        i = 1
        while i < len(rest):
            if rest[i] == "via":
                gateway = rest[i + 1]
                i += 2
            elif rest[i] == "dev":
                device = rest[i + 1]
                i += 2
            elif rest[i] == "table":
                table_id = int(rest[i + 1])
                i += 2
            else:
                raise CommandError(f"unsupported route token {rest[i]!r}")
        namespace = self.host.namespace(netns)
        if device is None and gateway is not None:
            hit = namespace.routes.lookup(gateway)
            if hit is None:
                raise CommandError(f"gateway {gateway} unreachable")
            device = hit.device
        if device is None:
            raise CommandError(f"route needs a device: {original!r}")
        if "/" not in destination:
            destination += "/32"
        table = (namespace.routes if table_id is None
                 else namespace.route_table(table_id))
        table.add_cidr(destination, device, gateway=gateway)

    def _ip_rule(self, args: list[str], netns: str, original: str) -> None:
        # ip rule add fwmark MARK table TABLE
        if (len(args) >= 5 and args[0] == "add" and args[1] == "fwmark"
                and args[3] == "table"):
            mark_text = args[2]
            if "/" in mark_text:
                value, _, mask = mark_text.partition("/")
                self.host.namespace(netns).add_policy_rule(
                    int(value, 0), int(args[4]), mask=int(mask, 0))
            else:
                self.host.namespace(netns).add_policy_rule(
                    int(mark_text, 0), int(args[4]))
            return
        raise CommandError(f"unsupported 'ip rule' form: {original!r}")

    def _ip_neigh(self, args: list[str], netns: str, original: str) -> None:
        # ip neigh add IP lladdr MAC [dev DEV]
        if len(args) >= 4 and args[0] == "add" and args[2] == "lladdr":
            self.host.namespace(netns).neighbors[args[1]] = MacAddress(args[3])
            return
        raise CommandError(f"unsupported 'ip neigh' form: {original!r}")

    def _ip_xfrm(self, args: list[str], netns: str, original: str) -> None:
        namespace = self.host.namespace(netns)
        if args[:2] == ["state", "add"]:
            fields = _keyword_fields(args[2:])
            sa = SecurityAssociation(
                spi=int(fields["spi"], 0),
                src=fields["src"],
                dst=fields["dst"],
                enc_key=bytes.fromhex(fields["enc"]),
                auth_key=bytes.fromhex(fields["auth"]),
            )
            namespace.xfrm.add_state(XfrmState(sa=sa))
            return
        if args[:2] == ["state", "flush"]:
            namespace.xfrm.flush()
            return
        if args[:2] == ["policy", "add"]:
            fields = _keyword_fields(args[2:])
            direction = XfrmDirection(fields["dir"])
            # "tmpl src S dst D": the tmpl marker splits selector fields
            # from template fields; _keyword_fields keeps last wins, so
            # re-scan for the template endpoints explicitly.
            tmpl_index = args.index("tmpl")
            tmpl_fields = _keyword_fields(args[tmpl_index + 1:])
            selector_fields = _keyword_fields(args[2:tmpl_index])
            namespace.xfrm.add_policy(XfrmPolicy(
                selector=Selector(
                    src_cidr=_as_cidr(selector_fields["src"]),
                    dst_cidr=_as_cidr(selector_fields["dst"])),
                direction=direction,
                tmpl_src=tmpl_fields["src"],
                tmpl_dst=tmpl_fields["dst"],
            ))
            return
        if args[:2] == ["policy", "flush"]:
            namespace.xfrm.flush()
            return
        raise CommandError(f"unsupported 'ip xfrm' form: {original!r}")

    # -- iptables --------------------------------------------------------------
    def _iptables(self, args: list[str], netns: str, original: str) -> None:
        namespace = self.host.namespace(netns)
        table_name = "filter"
        if args[:1] == ["-t"]:
            table_name = args[1]
            args = args[2:]
        table = namespace.iptables.table(table_name)
        if not args:
            raise CommandError(f"iptables without an action: {original!r}")
        action = args[0]
        if action == "-N":
            table.new_chain(args[1])
            return
        if action == "-X":
            table.delete_chain(args[1])
            return
        if action == "-P":
            table.chain(args[1]).policy = args[2]
            return
        if action == "-F":
            if len(args) > 1:
                table.chain(args[1]).flush()
            else:
                for chain in table.chains.values():
                    chain.flush()
            return
        if action in ("-A", "-I", "-D"):
            chain = table.chain(args[1])
            rest = args[2:]
            insert_at = 0
            if action == "-I" and rest and rest[0].isdigit():
                insert_at = int(rest[0]) - 1
                rest = rest[1:]
            rule = self._parse_rule(rest, original)
            if action == "-A":
                chain.append(rule)
            elif action == "-I":
                chain.insert(insert_at, rule)
            else:
                for index, existing in enumerate(chain.rules):
                    if existing.spec() == rule.spec():
                        chain.delete(index)
                        return
                raise CommandError(f"no matching rule to delete: {original!r}")
            return
        raise CommandError(f"unsupported iptables action {action!r}")

    def _parse_rule(self, tokens: list[str], original: str) -> Rule:
        match_kwargs: dict = {}
        target = None
        target_args: dict = {}
        invert = False
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok == "!":
                invert = True
                i += 1
                continue
            if tok == "-i":
                match_kwargs["in_iface"] = tokens[i + 1]
                i += 2
            elif tok == "-o":
                match_kwargs["out_iface"] = tokens[i + 1]
                i += 2
            elif tok == "-s":
                match_kwargs["src"] = tokens[i + 1]
                match_kwargs["invert_src"] = invert
                invert = False
                i += 2
            elif tok == "-d":
                match_kwargs["dst"] = tokens[i + 1]
                match_kwargs["invert_dst"] = invert
                invert = False
                i += 2
            elif tok == "-p":
                proto = tokens[i + 1]
                match_kwargs["proto"] = (
                    _PROTO_NAMES[proto] if proto in _PROTO_NAMES
                    else int(proto))
                i += 2
            elif tok == "--sport":
                match_kwargs["sport"] = _port_range(tokens[i + 1])
                i += 2
            elif tok == "--dport":
                match_kwargs["dport"] = _port_range(tokens[i + 1])
                i += 2
            elif tok == "-m":
                i += 2  # module name consumed; options follow
            elif tok == "--mark":
                match_kwargs["mark"] = _mark_value(tokens[i + 1])
                i += 2
            elif tok == "--ctstate":
                states = frozenset(ConnState(s)
                                   for s in tokens[i + 1].split(","))
                match_kwargs["ctstate"] = states
                i += 2
            elif tok == "-j":
                target = tokens[i + 1]
                i += 2
            elif tok == "--to-source":
                ip, _, port = tokens[i + 1].partition(":")
                target_args["to_ip"] = ip
                if port:
                    target_args["to_port"] = int(port)
                i += 2
            elif tok == "--to-destination":
                ip, _, port = tokens[i + 1].partition(":")
                target_args["to_ip"] = ip
                if port:
                    target_args["to_port"] = int(port)
                i += 2
            elif tok == "--set-mark":
                value, mask = _mark_value(tokens[i + 1])
                target_args["set_mark"] = value
                target_args["mask"] = mask
                i += 2
            elif tok == "--save-mark":
                target_args["op"] = "save"
                i += 1
            elif tok == "--restore-mark":
                target_args["op"] = "restore"
                i += 1
            elif tok == "--comment":
                i += 2
            else:
                raise CommandError(
                    f"unsupported iptables token {tok!r} in {original!r}")
        if target is None:
            raise CommandError(f"iptables rule without -j: {original!r}")
        if target == "CONNMARK" and "set_mark" in target_args:
            target_args.setdefault("op", "set")
            target_args["set_mark"] = target_args.pop("set_mark")
            target_args.pop("mask", None)
        return Rule(match=Match(**match_kwargs), target=target,
                    target_args=target_args)

    # -- brctl -----------------------------------------------------------------
    def _brctl(self, args: list[str], original: str) -> None:
        if len(args) >= 2 and args[0] == "addbr":
            self.host.create_bridge(args[1])
        elif len(args) >= 2 and args[0] == "delbr":
            self.host.delete_bridge(args[1])
        elif len(args) >= 3 and args[0] == "addif":
            bridge = self.host.bridges.get(args[1])
            if bridge is None:
                raise CommandError(f"no bridge {args[1]!r}")
            found = self.host.find_device(args[2])
            if found is None:
                raise CommandError(f"no device {args[2]!r}")
            bridge.add_port(found[1])
        elif len(args) >= 3 and args[0] == "delif":
            bridge = self.host.bridges.get(args[1])
            if bridge is None:
                raise CommandError(f"no bridge {args[1]!r}")
            bridge.remove_port(args[2])
        else:
            raise CommandError(f"unsupported brctl form: {original!r}")

    # -- sysctl -----------------------------------------------------------------
    def _sysctl(self, args: list[str], netns: str, original: str) -> None:
        if len(args) >= 2 and args[0] == "-w" and "=" in args[1]:
            key, _, value = args[1].partition("=")
            key = key.strip()
            value = value.strip()
            # Namespace-scoped: `ip netns exec X sysctl -w
            # net.ipv4.ip_forward=1` flips forwarding in X only.
            if key == "net.ipv4.ip_forward":
                self.host.namespace(netns).ip_forward = value == "1"
                self.host.sysctls[f"{netns}:{key}"] = value
                return
            self.host.set_sysctl(key, value)
            return
        raise CommandError(f"unsupported sysctl form: {original!r}")


def _port_range(text: str) -> tuple[int, int]:
    if ":" in text:
        lo, _, hi = text.partition(":")
        return int(lo), int(hi)
    port = int(text)
    return port, port


def _mark_value(text: str) -> tuple[int, int]:
    if "/" in text:
        value, _, mask = text.partition("/")
        return int(value, 0), int(mask, 0)
    return int(text, 0), 0xFFFFFFFF


def _keyword_fields(tokens: list[str]) -> dict[str, str]:
    """Parse ``key value key value ...`` token streams (ip xfrm style)."""
    fields: dict[str, str] = {}
    i = 0
    while i + 1 < len(tokens):
        if tokens[i] == "proto":  # "proto esp" — value is a keyword
            fields["proto"] = tokens[i + 1]
            i += 2
            continue
        fields[tokens[i]] = tokens[i + 1]
        i += 2
    return fields


def _as_cidr(text: str) -> str:
    return text if "/" in text else text + "/32"
