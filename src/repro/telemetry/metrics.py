"""The metrics registry: counters in, time series and rates out.

Sampling model.  The dataplane maintains *cumulative* counters (flow
and port packet/byte totals, flushed once per batch — they cost the
hot path nothing extra).  :meth:`MetricsRegistry.sample` reads them at
a point in time and appends ``(t, total)`` observations to per-NF ring
buffers; rates are derived between consecutive samples
(``Δpackets/Δt``), so one registry serves both "what is the load right
now" (the autoscaler's question) and "what did it look like over the
last N samples" (the ``repro top`` view).  Ring capacity bounds memory
no matter how long the control loop runs.

Per-NF load signal.  An NF's load is the traffic the switch delivered
*to* it — the ``tx`` counters of its LSI ports (ingress into the NF) —
summed over the NF's ports.  Replicas are separate NFs here (`nf`,
``nf@1``, ...); :meth:`group_pps` aggregates a replica group back into
one per-base-NF figure for scaling decisions.

Availability metrics are *journal-derived*, not sampled: the
reconciler's :class:`~repro.core.reconciler.EventJournal` stamps every
transition with its clock, so MTTR (mean seconds from
``health-failed`` to the matching ``healed``), convergence time
(``desired-set`` to ``converged``) and time-to-scale (``autoscale`` to
``converged``) are exact replays of the event log — deterministic
under the sim clock, wall-monotonic in production.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.core.reconciler import Reconciler
from repro.core.steering import TrafficSteeringManager
from repro.nffg.replicas import replica_base

__all__ = ["MetricsRegistry", "NfSeries", "SeriesRing"]


class SeriesRing:
    """A bounded time series: ``(t, value)`` pairs, oldest evicted."""

    __slots__ = ("_data",)

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._data: deque = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self._data.append((t, value))

    def items(self) -> list[tuple[float, float]]:
        return list(self._data)

    @property
    def last(self) -> Optional[tuple[float, float]]:
        return self._data[-1] if self._data else None

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeriesRing {len(self._data)}/{self._data.maxlen}>"


class NfSeries:
    """Sampled state of one NF (one replica): totals and derived rates."""

    __slots__ = ("rx_packets", "rx_bytes", "pps", "bps",
                 "_last_t", "_last_packets", "_last_bytes")

    def __init__(self, capacity: int) -> None:
        self.rx_packets = 0
        self.rx_bytes = 0
        self.pps = SeriesRing(capacity)
        self.bps = SeriesRing(capacity)
        self._last_t: Optional[float] = None
        self._last_packets = 0
        self._last_bytes = 0

    def observe(self, t: float, packets: int, nbytes: int,
                min_window: float = 0.0) -> None:
        self.rx_packets = packets
        self.rx_bytes = nbytes
        if packets < self._last_packets or nbytes < self._last_bytes:
            # Counter reset: a heal-recreate gave the NF fresh LSI
            # ports.  Re-base without emitting a rate point — the
            # Prometheus counter-reset convention; a negative "rate"
            # here would read as a drain signal to the autoscaler.
            self._last_t = t
            self._last_packets = packets
            self._last_bytes = nbytes
            return
        if self._last_t is not None and t > self._last_t:
            dt = t - self._last_t
            if dt < min_window:
                # Too-short window (an ad-hoc REST scrape between two
                # control-loop samples): keep the totals fresh but do
                # not derive a rate from it, and do not re-base — the
                # next on-schedule sample still spans a full window.
                return
            self.pps.append(t, (packets - self._last_packets) / dt)
            self.bps.append(t, (nbytes - self._last_bytes) / dt)
        self._last_t = t
        self._last_packets = packets
        self._last_bytes = nbytes

    @property
    def last_pps(self) -> float:
        point = self.pps.last
        return point[1] if point is not None else 0.0

    @property
    def last_bps(self) -> float:
        point = self.bps.last
        return point[1] if point is not None else 0.0


class MetricsRegistry:
    """Samples a node's steering + reconciler state into time series."""

    def __init__(self, steering: TrafficSteeringManager,
                 reconciler: Reconciler, capacity: int = 512) -> None:
        self.steering = steering
        self.reconciler = reconciler
        self.capacity = capacity
        #: graph_id -> nf_id -> NfSeries (expanded/replica nf ids)
        self._nfs: dict[str, dict[str, NfSeries]] = {}
        self.samples_taken = 0
        #: shortest dt a rate point may be derived over.  0 (default)
        #: keeps every sample; a ControlLoop raises it to half its
        #: interval so ad-hoc scrapes (REST GET /metrics between loop
        #: iterations) refresh totals without shortening the rate
        #: windows the autoscaler decides on.
        self.min_rate_window = 0.0
        # Serializes sampling passes: REST scrapes run on
        # ThreadingHTTPServer worker threads alongside a ControlLoop
        # thread, and NfSeries.observe is a read-modify-write.  The
        # steering dicts themselves are snapshotted (C-level list())
        # per pass; deploys remain single-writer as everywhere else.
        self._sample_lock = threading.Lock()

    # -- clock ------------------------------------------------------------------
    def now(self) -> float:
        """The registry's time base is the journal's clock, read
        dynamically — a sim-mode control loop that rebinds the journal
        clock automatically rebases sampling too, keeping rate windows
        and event timestamps on one axis."""
        return self.reconciler.journal.clock()

    # -- sampling ---------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> float:
        """One sampling pass over every deployed graph; returns ``t``."""
        t = self.now() if now is None else now
        with self._sample_lock:
            return self._sample_locked(t)

    def _sample_locked(self, t: float) -> float:
        self.samples_taken += 1
        for graph_id, network in list(self.steering.graphs.items()):
            per_nf: dict[str, list[int]] = {}
            for (nf_id, _logical), port in list(network.nf_ports.items()):
                acc = per_nf.setdefault(nf_id, [0, 0])
                # tx on the LSI port is ingress *into* the NF: the
                # offered load the autoscaler budgets per replica.
                acc[0] += port.tx_packets
                acc[1] += port.tx_bytes
            series = self._nfs.setdefault(graph_id, {})
            for nf_id, (packets, nbytes) in per_nf.items():
                entry = series.get(nf_id)
                if entry is None:
                    entry = series[nf_id] = NfSeries(self.capacity)
                entry.observe(t, packets, nbytes,
                              min_window=self.min_rate_window)
            # NFs whose ports vanished (scale-in, recreate) stop
            # observing; their history stays until the graph goes.
            record = self.reconciler.observed.get(graph_id)
            live = set(per_nf)
            if record is not None:
                live |= set(record.instances)
            for nf_id in [nf_id for nf_id in series if nf_id not in live]:
                del series[nf_id]
        for graph_id in [g for g in self._nfs
                         if g not in self.steering.graphs]:
            del self._nfs[graph_id]
        return t

    # -- rate queries ------------------------------------------------------------
    def graphs(self) -> list[str]:
        return sorted(self._nfs)

    def nf_series(self, graph_id: str) -> dict[str, NfSeries]:
        return dict(self._nfs.get(graph_id, {}))

    def nf_rates(self, graph_id: str) -> dict[str, dict]:
        """Latest per-NF rates: nf_id -> {pps, bytes-per-second, ...}."""
        return {nf_id: {"pps": series.last_pps,
                        "bytes-per-second": series.last_bps,
                        "rx-packets-total": series.rx_packets,
                        "rx-bytes-total": series.rx_bytes}
                for nf_id, series in self._nfs.get(graph_id, {}).items()}

    def group_pps(self, graph_id: str, base_nf_id: str) -> Optional[float]:
        """Aggregate pps of a replica group (None before two samples)."""
        series = self._nfs.get(graph_id)
        if series is None:
            return None
        members = [entry for nf_id, entry in series.items()
                   if replica_base(nf_id) == base_nf_id]
        if not members or all(len(entry.pps) == 0 for entry in members):
            return None
        return sum(entry.last_pps for entry in members)

    def replica_counts(self, graph_id: str) -> dict[str, int]:
        """base nf_id -> live replica count (from the observed record)."""
        record = self.reconciler.observed.get(graph_id)
        if record is None:
            return {}
        counts: dict[str, int] = {}
        for nf_id in record.instances:
            base = replica_base(nf_id)
            counts[base] = counts.get(base, 0) + 1
        return counts

    # -- journal-derived availability --------------------------------------------
    def availability(self, graph_id: str) -> dict:
        """Replay the graph's journal into availability figures.

        ``mttr-seconds`` is None until at least one failure has been
        repaired; with the sim clock driving the journal the figure is
        bit-for-bit deterministic.
        """
        events = self.reconciler.journal.events(graph_id)
        pending_fail: dict[str, float] = {}
        repairs: list[float] = []
        failures = heals = 0
        convergence_started: Optional[float] = None
        scale_started: Optional[float] = None
        convergences: list[float] = []
        last_scale: Optional[float] = None
        for event in events:
            kind = event.kind
            if kind == "health-failed":
                failures += 1
                pending_fail.setdefault(event.nf_id, event.time)
            elif kind == "healed":
                heals += 1
                started = pending_fail.pop(event.nf_id, None)
                if started is not None:
                    repairs.append(event.time - started)
            elif kind == "desired-set":
                convergence_started = event.time
            elif kind == "autoscale":
                scale_started = event.time
            elif kind == "converged":
                if convergence_started is not None:
                    convergences.append(event.time - convergence_started)
                    convergence_started = None
                if scale_started is not None:
                    last_scale = event.time - scale_started
                    scale_started = None
        mttr = sum(repairs) / len(repairs) if repairs else None
        return {
            "failures": failures,
            "heals": heals,
            "repairs": len(repairs),
            "mttr-seconds": mttr,
            "mean-convergence-seconds": (sum(convergences)
                                         / len(convergences)
                                         if convergences else None),
            "last-convergence-seconds": (convergences[-1]
                                         if convergences else None),
            "time-to-scale-seconds": last_scale,
            "journal-events": len(events),
            "journal-dropped":
                self.reconciler.journal.dropped_count(graph_id),
        }

    # -- document view -----------------------------------------------------------
    def graph_metrics(self, graph_id: str) -> dict:
        """JSON-ready per-graph metrics document."""
        document = {
            "graph-id": graph_id,
            "nfs": self.nf_rates(graph_id),
            "replicas": self.replica_counts(graph_id),
            "availability": self.availability(graph_id),
            "samples": self.samples_taken,
        }
        # Fused-chain and flow-state counters of the graph's own LSI
        # (a graph being torn down may already have left the steering
        # table).
        network = self.steering.graphs.get(graph_id)
        if network is not None:
            fusion = network.lsi.datapath.fusion.stats()
            # Whole chains usually fuse at the node-ingress LSI, so the
            # graph LSI's own engine never sees a frame; recover the
            # graph's share of LSI-0's counters by its flow cookie and
            # fold it in, keeping the ingress share visible separately.
            share = self.steering.base.datapath.fusion.stats_for_cookie(
                network.cookie)
            for key, value in share.items():
                fusion[key] = fusion.get(key, 0) + value
            fusion["at-node-ingress"] = share
            document["fusion"] = fusion
            document["flow-state"] = \
                network.lsi.datapath.flow_state.stats()
        return document

    def to_dict(self) -> dict:
        """JSON-ready node-wide metrics document."""
        graph_ids = sorted(set(self._nfs)
                           | set(self.reconciler.observed))
        return {
            "samples": self.samples_taken,
            "flow-counts": self.steering.flow_counts(),
            "fusion": self.steering.fusion_stats(),
            "flow-state": self.steering.flow_state_stats(),
            "graphs": {graph_id: self.graph_metrics(graph_id)
                       for graph_id in graph_ids},
        }
