"""Render a :class:`~repro.telemetry.metrics.MetricsRegistry`.

Two consumers, two formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``metric{label="v"} value`` rows),
  served on ``GET /metrics`` so a real scraper can point at a node;
* :func:`render_top` — the human table behind ``repro top``: one row
  per NF with replica counts, live rates and availability figures.

Both are pure functions over the registry's current state; neither
triggers a sample.
"""

from __future__ import annotations

from repro.nffg.replicas import replica_base
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["render_prometheus", "render_top"]


def _label(value: str) -> str:
    # Prometheus label-value escaping: backslash, double-quote and
    # newline, in that order (escaping "\n" first would double up).
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition."""
    lines: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    header("repro_nf_rx_packets_total", "counter",
           "Frames the switch delivered into the NF (all its ports).")
    header("repro_nf_rx_bytes_total", "counter",
           "Bytes the switch delivered into the NF.")
    header("repro_nf_pps", "gauge",
           "NF ingress rate over the last sampling window (packets/s).")
    header("repro_nf_bytes_per_second", "gauge",
           "NF ingress byte rate over the last sampling window.")
    header("repro_nf_replicas", "gauge",
           "Live replica count per base NF.")
    header("repro_graph_failures_total", "counter",
           "Health-probe failures the reconciler detected.")
    header("repro_graph_heals_total", "counter",
           "Heals (restart or recreate) the reconciler completed.")
    header("repro_graph_mttr_seconds", "gauge",
           "Mean time-to-repair derived from the event journal.")
    header("repro_graph_convergence_seconds", "gauge",
           "Seconds from the last desired-state change to convergence.")
    header("repro_graph_time_to_scale_seconds", "gauge",
           "Seconds from the last autoscale decision to convergence.")
    header("repro_journal_events_dropped_total", "counter",
           "Journal events evicted by the per-graph ring buffer.")
    header("repro_fusion_hits_total", "counter",
           "Frames delivered through fused-chain programs, per LSI.")
    header("repro_fusion_misses_total", "counter",
           "Matched frames that took the per-hop path while fusion "
           "was engaged, per LSI.")
    header("repro_fusion_invalidations_total", "counter",
           "Fused-chain programs dropped (flow-mods, replica changes, "
           "stale-at-flush fallbacks), per LSI.")
    header("repro_fusion_dispatch_hits_total", "counter",
           "Matched frames that skipped the ingress flow-table walk "
           "through a per-port dispatch slot, per LSI.")
    header("repro_fusion_dispatch_misses_total", "counter",
           "Matched frames that ran the ingress lookup while dispatch "
           "was engaged, per LSI.")
    header("repro_flow_state_flows", "gauge",
           "Live per-flow state entries (replica affinity), per LSI.")
    header("repro_flow_state_pinned_total", "counter",
           "Frames steered to the replica that owns their flow state, "
           "per LSI.")
    header("repro_flow_state_remapped_total", "counter",
           "Established flows moved because their owning replica left "
           "the set, per LSI.")
    header("repro_flow_state_churned_total", "counter",
           "Flows whose owner changed (remap or post-expiry "
           "re-selection), per LSI.")
    header("repro_flow_state_adopted_total", "counter",
           "Established flows adopted to the pre-scale-out owner on "
           "first sight, per LSI.")
    header("repro_telemetry_samples_total", "counter",
           "Sampling passes this registry has taken.")

    for lsi_name, stats in sorted(
            registry.steering.fusion_stats().items()):
        label = f'lsi="{_label(lsi_name)}"'
        lines.append(f"repro_fusion_hits_total{{{label}}} "
                     f"{stats['hits']}")
        lines.append(f"repro_fusion_misses_total{{{label}}} "
                     f"{stats['misses']}")
        lines.append(f"repro_fusion_invalidations_total{{{label}}} "
                     f"{stats['invalidations']}")
        lines.append(f"repro_fusion_dispatch_hits_total{{{label}}} "
                     f"{stats.get('dispatch-hits', 0)}")
        lines.append(f"repro_fusion_dispatch_misses_total{{{label}}} "
                     f"{stats.get('dispatch-misses', 0)}")

    for lsi_name, stats in sorted(
            registry.steering.flow_state_stats().items()):
        label = f'lsi="{_label(lsi_name)}"'
        lines.append(f"repro_flow_state_flows{{{label}}} "
                     f"{stats['flows']}")
        lines.append(f"repro_flow_state_pinned_total{{{label}}} "
                     f"{stats['pinned']}")
        lines.append(f"repro_flow_state_remapped_total{{{label}}} "
                     f"{stats['remapped']}")
        lines.append(f"repro_flow_state_churned_total{{{label}}} "
                     f"{stats['churned']}")
        lines.append(f"repro_flow_state_adopted_total{{{label}}} "
                     f"{stats['adopted']}")

    for graph_id in registry.graphs():
        graph_label = _label(graph_id)
        for nf_id, rates in sorted(registry.nf_rates(graph_id).items()):
            labels = f'graph="{graph_label}",nf="{_label(nf_id)}"'
            lines.append(f"repro_nf_rx_packets_total{{{labels}}} "
                         f"{rates['rx-packets-total']}")
            lines.append(f"repro_nf_rx_bytes_total{{{labels}}} "
                         f"{rates['rx-bytes-total']}")
            lines.append(f"repro_nf_pps{{{labels}}} {rates['pps']:.6g}")
            lines.append(f"repro_nf_bytes_per_second{{{labels}}} "
                         f"{rates['bytes-per-second']:.6g}")
        for base, count in sorted(registry.replica_counts(graph_id)
                                  .items()):
            lines.append(f'repro_nf_replicas{{graph="{graph_label}",'
                         f'nf="{_label(base)}"}} {count}')
        availability = registry.availability(graph_id)
        glabel = f'graph="{graph_label}"'
        lines.append(f"repro_graph_failures_total{{{glabel}}} "
                     f"{availability['failures']}")
        lines.append(f"repro_graph_heals_total{{{glabel}}} "
                     f"{availability['heals']}")
        if availability["mttr-seconds"] is not None:
            lines.append(f"repro_graph_mttr_seconds{{{glabel}}} "
                         f"{availability['mttr-seconds']:.6g}")
        if availability["last-convergence-seconds"] is not None:
            lines.append(
                f"repro_graph_convergence_seconds{{{glabel}}} "
                f"{availability['last-convergence-seconds']:.6g}")
        if availability["time-to-scale-seconds"] is not None:
            lines.append(
                f"repro_graph_time_to_scale_seconds{{{glabel}}} "
                f"{availability['time-to-scale-seconds']:.6g}")
        lines.append(f"repro_journal_events_dropped_total{{{glabel}}} "
                     f"{availability['journal-dropped']}")
    lines.append(f"repro_telemetry_samples_total "
                 f"{registry.samples_taken}")
    return "\n".join(lines) + "\n"


def render_top(document: dict) -> str:
    """The ``repro top`` table from a node metrics JSON document.

    Takes the *document* (not the registry) so the CLI can render what
    a remote node answered over HTTP.
    """
    lines = [f"{'GRAPH':<12} {'NF':<16} {'REPLICAS':>8} {'PPS':>12} "
             f"{'BYTES/S':>12} {'MTTR':>8} {'HEALS':>6} {'FUSED':>6} "
             f"{'DISP':>6} {'PIN%':>6}"]
    graphs = document.get("graphs", {})
    for graph_id in sorted(graphs):
        graph = graphs[graph_id]
        replicas = graph.get("replicas", {})
        availability = graph.get("availability", {})
        mttr = availability.get("mttr-seconds")
        mttr_text = f"{mttr:.3f}" if mttr is not None else "-"
        heals = availability.get("heals", 0)
        # Fused-chain hit rate of the graph's LSI ("-" before any
        # batched traffic, or from a node predating the fusion layer).
        fusion = graph.get("fusion") or {}
        fused_frames = fusion.get("hits", 0) + fusion.get("misses", 0)
        fused_text = (f"{100.0 * fusion['hits'] / fused_frames:.0f}%"
                      if fused_frames else "-")
        # Dispatch hit rate: frames that skipped the ingress table
        # walk entirely ("-" before any dispatch traffic).
        disp_frames = (fusion.get("dispatch-hits", 0)
                       + fusion.get("dispatch-misses", 0))
        disp_text = (f"{100.0 * fusion['dispatch-hits'] / disp_frames:.0f}%"
                     if disp_frames else "-")
        # Replica-affinity pin rate of the LB hops: pinned frames over
        # every state-table decision ("-" before any stateful spread).
        state = graph.get("flow-state") or {}
        state_total = (state.get("pinned", 0) + state.get("inserted", 0)
                       + state.get("remapped", 0))
        pinned_text = (f"{100.0 * state['pinned'] / state_total:.0f}%"
                       if state_total else "-")
        nfs = graph.get("nfs", {})
        bases: dict[str, list] = {}
        for nf_id, rates in nfs.items():
            base = replica_base(nf_id)
            acc = bases.setdefault(base, [0.0, 0.0])
            acc[0] += rates.get("pps", 0.0)
            acc[1] += rates.get("bytes-per-second", 0.0)
        first = True
        for base in sorted(bases):
            pps, bps = bases[base]
            lines.append(
                f"{graph_id if first else '':<12} {base:<16} "
                f"{replicas.get(base, 1):>8} {pps:>12.1f} {bps:>12.1f} "
                f"{mttr_text if first else '':>8} "
                f"{heals if first else '':>6} "
                f"{fused_text if first else '':>6} "
                f"{disp_text if first else '':>6} "
                f"{pinned_text if first else '':>6}")
            first = False
        if not bases:
            lines.append(f"{graph_id:<12} {'(no samples)':<16}")
    if len(lines) == 1:
        lines.append("(no deployed graphs)")
    return "\n".join(lines)
