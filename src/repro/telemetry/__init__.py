"""Telemetry and elastic scaling: measure the node, then act on it.

The dataplane and the reconciler already *count* everything — flow and
port counters flushed per batch, an append-only event journal of every
lifecycle transition.  This package turns those counters into signals
and the signals into actions:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` that
  samples per-NF port counters and per-LSI totals into ring-buffer
  time series, derives rates (pps, bytes/s) between samples, and
  computes journal-derived availability metrics (MTTR, heal counts,
  convergence and time-to-scale) on demand;
* :mod:`repro.telemetry.export` — Prometheus text + JSON renderings of
  a registry (served over ``GET /metrics`` and
  ``GET /graphs/{id}/metrics``, printed by ``repro top``);
* :mod:`repro.telemetry.autoscaler` — per-NF scaling policies (target
  pps per replica, min/max, cooldown) that edit the *desired* replica
  count and leave convergence to the reconciler;
* :mod:`repro.telemetry.loop` — the :class:`ControlLoop` driver that
  runs reconcile ticks, telemetry samples and autoscaler evaluations
  continuously, on the discrete-event simulator (virtual clock,
  deterministic tests) or a real background thread;
* :mod:`repro.telemetry.histograms` — log2-bucketed latency
  histograms (p50/p95/p99 derivation, Prometheus histogram blocks)
  for both planes;
* :mod:`repro.telemetry.tracing` — span tracing with a 1-in-N batch
  sampler, anomaly triggers, and the bounded flight recorder that
  freezes the recent past when something goes wrong (served on
  ``GET /traces`` / ``GET /traces/flight``, printed by
  ``repro trace``).
"""

from repro.telemetry.autoscaler import Autoscaler, ScalingDecision, \
    ScalingPolicy
from repro.telemetry.export import render_prometheus
from repro.telemetry.histograms import HistogramRegistry, \
    LatencyHistogram, render_histograms
from repro.telemetry.loop import ControlLoop
from repro.telemetry.metrics import MetricsRegistry, SeriesRing
from repro.telemetry.tracing import FlightRecorder, Span, Tracer

__all__ = [
    "Autoscaler",
    "ControlLoop",
    "FlightRecorder",
    "HistogramRegistry",
    "LatencyHistogram",
    "MetricsRegistry",
    "ScalingDecision",
    "ScalingPolicy",
    "SeriesRing",
    "Span",
    "Tracer",
    "render_histograms",
    "render_prometheus",
]
