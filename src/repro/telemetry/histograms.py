"""Log2-bucketed latency histograms with Prometheus text exposition.

The observation path is the part that runs inside instrumented code
(the dataplane batch loop, reconciler steps, REST dispatch), so it is
deliberately tiny: one :func:`bisect.bisect_left` over a precomputed
bounds tuple and two list/float updates.  Everything analytical —
quantile derivation, snapshots, the Prometheus ``_bucket``/``_sum``/
``_count`` rendering — walks the counts on demand.

Buckets double from 1 microsecond up to ~67 seconds (27 bounds), plus
the implicit ``+Inf`` overflow bucket.  That covers everything from a
single dispatch-fused batch (~microseconds) to a pathological control
tick, with the exact-power-of-two boundaries making p50/p95/p99
derivation reproducible across runs.
"""

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Bucket upper bounds in seconds: 1 us, 2 us, 4 us, ... ~67.1 s.
LOG2_BOUNDS: Tuple[float, ...] = tuple((1 << k) * 1e-6 for k in range(27))


class LatencyHistogram:
    """A fixed-bucket latency histogram (seconds).

    ``observe`` is safe under the GIL without a lock: it mutates one
    list slot and two floats, and every reader (snapshot, quantile,
    render) tolerates a momentarily inconsistent sum-vs-counts view —
    telemetry scrapes, not bank transfers.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = LOG2_BOUNDS):
        self.bounds = tuple(bounds)
        if not self.bounds or any(b <= 0 for b in self.bounds):
            raise ValueError("bucket bounds must be positive")
        # One count per bound plus the +Inf overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> Optional[float]:
        """Derive a quantile by linear interpolation within its bucket.

        Returns ``None`` on an empty histogram.  Values landing in the
        ``+Inf`` bucket clamp to the largest finite bound (the standard
        ``histogram_quantile`` convention).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        target = q * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                if index >= len(self.bounds):  # +Inf bucket: clamp
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fraction = (target - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
        return self.bounds[-1]

    def percentiles(self) -> Dict[str, Optional[float]]:
        return {"p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def snapshot(self) -> dict:
        """A JSON-clean copy: non-empty buckets, totals, percentiles."""
        buckets = {}
        for index, count in enumerate(self.counts):
            if count:
                le = (self.bounds[index] if index < len(self.bounds)
                      else "+Inf")
                buckets[le if isinstance(le, str) else f"{le:.12g}"] = count
        document = {"count": self.total, "sum": self.sum,
                    "buckets": buckets}
        document.update(self.percentiles())
        return document


class HistogramRegistry:
    """Named histogram families with fixed label names per family.

    A family is registered once (``register``) with its help string and
    label names; ``observe(name, label_values, seconds)`` creates the
    series on first use.  Label values are positional tuples so the
    hot-path lookup is a single dict probe on a tuple key.
    """

    def __init__(self):
        self._families: Dict[str, dict] = {}

    def register(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        if name not in self._families:
            self._families[name] = {"help": help_text,
                                    "labels": tuple(label_names),
                                    "series": {}}

    def observe(self, name: str, label_values: Tuple[str, ...],
                seconds: float) -> None:
        family = self._families[name]
        series = family["series"]
        histogram = series.get(label_values)
        if histogram is None:
            histogram = series[label_values] = LatencyHistogram()
        histogram.observe(seconds)

    def get(self, name: str,
            label_values: Tuple[str, ...] = ()) -> Optional[LatencyHistogram]:
        family = self._families.get(name)
        if family is None:
            return None
        return family["series"].get(label_values)

    def families(self) -> Iterable[str]:
        return self._families.keys()

    def snapshot(self) -> dict:
        """Every family -> every series (labels joined) -> snapshot."""
        out = {}
        for name, family in self._families.items():
            label_names = family["labels"]
            series_out = {}
            for values, histogram in family["series"].items():
                key = ",".join(f"{k}={v}"
                               for k, v in zip(label_names, values)) or ""
                series_out[key] = histogram.snapshot()
            out[name] = series_out
        return out

    # JSON export alias (mirrors MetricsRegistry.to_dict naming).
    to_dict = snapshot


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_bound(bound: float) -> str:
    return f"{bound:.12g}"


def render_histograms(registry: HistogramRegistry,
                      prefix: str = "repro_") -> str:
    """Prometheus histogram text blocks for every family in a registry.

    Each family renders a ``# HELP``/``# TYPE ... histogram`` header
    and, per labelled series, cumulative ``_bucket`` lines (ending with
    ``le="+Inf"``), ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name in sorted(registry.families()):
        family = registry._families[name]
        metric = f"{prefix}{name}_seconds"
        lines.append(f"# HELP {metric} {family['help']}")
        lines.append(f"# TYPE {metric} histogram")
        label_names = family["labels"]
        for values in sorted(family["series"]):
            histogram = family["series"][values]
            pairs = [f'{k}="{_escape_label(v)}"'
                     for k, v in zip(label_names, values)]
            cumulative = 0
            for index, bound in enumerate(histogram.bounds):
                cumulative += histogram.counts[index]
                le = ",".join(pairs + [f'le="{_format_bound(bound)}"'])
                lines.append(f"{metric}_bucket{{{le}}} {cumulative}")
            cumulative += histogram.counts[-1]
            le = ",".join(pairs + ['le="+Inf"'])
            lines.append(f"{metric}_bucket{{{le}}} {cumulative}")
            label_text = f"{{{','.join(pairs)}}}" if pairs else ""
            lines.append(f"{metric}_sum{label_text} {histogram.sum:.9g}")
            lines.append(f"{metric}_count{label_text} {histogram.total}")
    return "\n".join(lines) + "\n" if lines else ""
