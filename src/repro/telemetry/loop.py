"""The continuous control loop: tick, sample, scale — forever.

PR 4 left the reconciler *on-demand*: every deploy/update/REST trigger
ran it to convergence, but nothing watched the node in between.  The
:class:`ControlLoop` closes that gap.  Each iteration:

1. **reconcile tick** per known graph — health probes, plan, execute
   (one tick, not tick-to-convergence: convergence happens *across*
   iterations, which is what makes the loop's cost per iteration
   bounded and its behavior inspectable mid-flight);
2. **telemetry sample** into the metrics registry;
3. **autoscaler evaluation** (optional) — which may edit desired
   state for the next iteration's ticks to converge on.

Two drivers of the same ``step``:

* :meth:`run_sim` registers the loop as a discrete-event-simulator
  process and rebinds the journal clock to the virtual clock — tests
  replay overload -> scale-out -> drain -> scale-in scenarios with
  bit-for-bit deterministic timestamps, MTTR and time-to-scale;
* :meth:`start` runs the identical ``step`` on a daemon thread against
  the monotonic wall clock for `repro serve`-style deployments.

Sharding.  ``shards=N`` partitions the fleet by
:func:`~repro.core.reconciler.shard_of_graph` (stable CRC32 of the
graph_id).  Each iteration ticks the N partitions concurrently on a
worker pool in thread mode — per-graph locks make that safe, and the
:class:`~repro.core.reconciler.ShardedEventJournal` installed at
construction keeps shard workers off each other's journal mutex.  In
sim mode (and in direct ``step()`` calls without :meth:`start`) the
same partitions are ticked deterministically round-robin — shard 0's
first graph, shard 1's first, ..., shard 0's second — so sharded sim
traces stay bit-for-bit reproducible while still exercising the
sharded journal paths.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.orchestrator import LocalOrchestrator
from repro.core.reconciler import ShardedEventJournal, shard_of_graph
from repro.sim.engine import Process, Simulator
from repro.telemetry.autoscaler import Autoscaler
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ControlLoop"]


class ControlLoop:
    """Drives reconcile ticks + telemetry + scaling on a fixed period."""

    def __init__(self, orchestrator: LocalOrchestrator,
                 registry: MetricsRegistry,
                 autoscaler: Optional[Autoscaler] = None,
                 interval: float = 1.0,
                 shards: int = 1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.orchestrator = orchestrator
        self.registry = registry
        self.autoscaler = autoscaler
        self.interval = interval
        self.shards = shards
        if shards > 1:
            reconciler = orchestrator.reconciler
            journal = reconciler.journal
            if not isinstance(journal, ShardedEventJournal):
                sharded = ShardedEventJournal(shards=shards,
                                              max_events=journal.max_events,
                                              clock=journal.clock)
                sharded.adopt(journal)
                # A tracer's journal-drop trigger hooked onto the plain
                # journal must survive the swap.
                sharded.on_drop = journal.on_drop
                reconciler.journal = sharded
        # Ad-hoc samples (REST scrapes) between two loop iterations
        # must not shorten the rate windows scaling decisions read.
        registry.min_rate_window = interval / 2.0
        self.iterations = 0
        self.steps_executed = 0
        self.scale_events = 0
        self.tick_errors = 0
        self.last_error: str = ""
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- one iteration -----------------------------------------------------------
    def _partition(self, graph_ids: list[str]) -> list[list[str]]:
        parts: list[list[str]] = [[] for _ in range(self.shards)]
        for graph_id in graph_ids:
            parts[shard_of_graph(graph_id, self.shards)].append(graph_id)
        return parts

    def _tick_one(self, graph_id: str) -> int:
        """Tick one graph, absorbing its failure into loop stats.

        One graph's broken driver must not starve every other graph of
        its reconcile tick — the failed graph keeps its checkpointed
        state and is retried next iteration.
        """
        try:
            return self.orchestrator.reconciler.tick(graph_id).done_count
        except Exception as exc:
            self.tick_errors += 1
            self.last_error = f"{graph_id}: {exc}"
            return 0

    def step(self, now: Optional[float] = None) -> dict:
        """Tick every graph once, sample, evaluate policies.

        Returns a small stats dict (handy for tests and the journal).
        A graph whose tick plan fails keeps its checkpointed state and
        is retried next iteration — exactly the reconciler's contract.
        """
        t = self.registry.now() if now is None else now
        self.iterations += 1
        reconciler = self.orchestrator.reconciler
        tracer = reconciler.tracer
        tick_started = time.perf_counter() if tracer is not None else 0.0
        executed = 0
        graph_ids = sorted(set(reconciler.desired) | set(reconciler.observed))
        if self.shards > 1:
            parts = self._partition(graph_ids)
            if self._pool is not None:
                def tick_shard(part: list[str]) -> int:
                    return sum(self._tick_one(graph_id) for graph_id in part)
                executed = sum(self._pool.map(tick_shard, parts))
            else:
                # Sim mode / direct step(): same partitions, ticked
                # round-robin so the order is deterministic.
                longest = max((len(part) for part in parts), default=0)
                for i in range(longest):
                    for part in parts:
                        if i < len(part):
                            executed += self._tick_one(part[i])
        else:
            for graph_id in graph_ids:
                executed += self._tick_one(graph_id)
        self.registry.sample(t)
        decisions = (self.autoscaler.evaluate(t)
                     if self.autoscaler is not None else [])
        self.steps_executed += executed
        self.scale_events += len(decisions)
        if tracer is not None:
            tracer.observe_tick(time.perf_counter() - tick_started,
                                graphs=len(graph_ids))
        return {"t": t, "graphs": len(graph_ids),
                "steps-executed": executed,
                "scale-decisions": len(decisions)}

    # -- sim driver --------------------------------------------------------------
    def run_sim(self, sim: Simulator) -> Process:
        """Attach the loop to a simulator as a process (virtual clock).

        The reconciler journal's clock is rebound to ``sim.now`` so
        every event timestamp, rate window, MTTR and time-to-scale is
        in virtual seconds — run ``sim.run(until=...)`` to advance.
        Flow-state aging (:mod:`repro.switch.state`) moves onto the
        same axis: every LSI's state clock is rebound each tick, so
        graphs deployed mid-simulation age their flow entries in
        virtual time too.  The process never terminates on its own;
        the ``until`` bound (or :meth:`Simulator.stop`) ends it.
        """
        clock = lambda: sim.now  # noqa: E731 - one shared rebindable clock
        self.orchestrator.reconciler.journal.clock = clock
        steering = getattr(self.orchestrator, "steering", None)

        def ticker():
            while True:
                try:
                    if steering is not None:
                        steering.set_state_clock(clock)
                    self.step(sim.now)
                except Exception as exc:  # keep the loop alive; record
                    self.last_error = str(exc)
                yield sim.timeout(self.interval)

        return sim.process(ticker(), name="control-loop")

    # -- thread driver -----------------------------------------------------------
    def start(self) -> "ControlLoop":
        """Run the loop on a daemon thread (monotonic wall clock).

        With ``shards > 1`` a worker pool is opened and every iteration
        fans the shard partitions out across it — per-graph locks make
        concurrent ticks safe, and the sharded journal keeps the
        workers from serializing on one ring mutex.
        """
        if self._thread is not None:
            raise RuntimeError("control loop already running")
        if self.shards > 1 and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.shards,
                thread_name_prefix="control-loop-shard")
        self._stop = threading.Event()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.step(time.monotonic())
                except Exception as exc:
                    self.last_error = str(exc)

        self._thread = threading.Thread(target=run, name="control-loop",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
            self._stop = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
