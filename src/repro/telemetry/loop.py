"""The continuous control loop: tick, sample, scale — forever.

PR 4 left the reconciler *on-demand*: every deploy/update/REST trigger
ran it to convergence, but nothing watched the node in between.  The
:class:`ControlLoop` closes that gap.  Each iteration:

1. **reconcile tick** per known graph — health probes, plan, execute
   (one tick, not tick-to-convergence: convergence happens *across*
   iterations, which is what makes the loop's cost per iteration
   bounded and its behavior inspectable mid-flight);
2. **telemetry sample** into the metrics registry;
3. **autoscaler evaluation** (optional) — which may edit desired
   state for the next iteration's ticks to converge on.

Two drivers of the same ``step``:

* :meth:`run_sim` registers the loop as a discrete-event-simulator
  process and rebinds the journal clock to the virtual clock — tests
  replay overload -> scale-out -> drain -> scale-in scenarios with
  bit-for-bit deterministic timestamps, MTTR and time-to-scale;
* :meth:`start` runs the identical ``step`` on a daemon thread against
  the monotonic wall clock for `repro serve`-style deployments.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.core.orchestrator import LocalOrchestrator
from repro.sim.engine import Process, Simulator
from repro.telemetry.autoscaler import Autoscaler
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ControlLoop"]


class ControlLoop:
    """Drives reconcile ticks + telemetry + scaling on a fixed period."""

    def __init__(self, orchestrator: LocalOrchestrator,
                 registry: MetricsRegistry,
                 autoscaler: Optional[Autoscaler] = None,
                 interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.orchestrator = orchestrator
        self.registry = registry
        self.autoscaler = autoscaler
        self.interval = interval
        # Ad-hoc samples (REST scrapes) between two loop iterations
        # must not shorten the rate windows scaling decisions read.
        registry.min_rate_window = interval / 2.0
        self.iterations = 0
        self.steps_executed = 0
        self.scale_events = 0
        self.last_error: str = ""
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- one iteration -----------------------------------------------------------
    def step(self, now: Optional[float] = None) -> dict:
        """Tick every graph once, sample, evaluate policies.

        Returns a small stats dict (handy for tests and the journal).
        A graph whose tick plan fails keeps its checkpointed state and
        is retried next iteration — exactly the reconciler's contract.
        """
        t = self.registry.now() if now is None else now
        self.iterations += 1
        reconciler = self.orchestrator.reconciler
        executed = 0
        graph_ids = sorted(set(reconciler.desired) | set(reconciler.observed))
        for graph_id in graph_ids:
            plan = reconciler.tick(graph_id)
            executed += plan.done_count
        self.registry.sample(t)
        decisions = (self.autoscaler.evaluate(t)
                     if self.autoscaler is not None else [])
        self.steps_executed += executed
        self.scale_events += len(decisions)
        return {"t": t, "graphs": len(graph_ids),
                "steps-executed": executed,
                "scale-decisions": len(decisions)}

    # -- sim driver --------------------------------------------------------------
    def run_sim(self, sim: Simulator) -> Process:
        """Attach the loop to a simulator as a process (virtual clock).

        The reconciler journal's clock is rebound to ``sim.now`` so
        every event timestamp, rate window, MTTR and time-to-scale is
        in virtual seconds — run ``sim.run(until=...)`` to advance.
        Flow-state aging (:mod:`repro.switch.state`) moves onto the
        same axis: every LSI's state clock is rebound each tick, so
        graphs deployed mid-simulation age their flow entries in
        virtual time too.  The process never terminates on its own;
        the ``until`` bound (or :meth:`Simulator.stop`) ends it.
        """
        clock = lambda: sim.now  # noqa: E731 - one shared rebindable clock
        self.orchestrator.reconciler.journal.clock = clock
        steering = getattr(self.orchestrator, "steering", None)

        def ticker():
            while True:
                try:
                    if steering is not None:
                        steering.set_state_clock(clock)
                    self.step(sim.now)
                except Exception as exc:  # keep the loop alive; record
                    self.last_error = str(exc)
                yield sim.timeout(self.interval)

        return sim.process(ticker(), name="control-loop")

    # -- thread driver -----------------------------------------------------------
    def start(self) -> "ControlLoop":
        """Run the loop on a daemon thread (monotonic wall clock)."""
        if self._thread is not None:
            raise RuntimeError("control loop already running")
        self._stop = threading.Event()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.step(time.monotonic())
                except Exception as exc:
                    self.last_error = str(exc)

        self._thread = threading.Thread(target=run, name="control-loop",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
            self._stop = None
