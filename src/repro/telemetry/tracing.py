"""Span tracing, a 1-in-N batch sampler, and the flight recorder.

Three cooperating pieces:

* :class:`Span` — a trace node with deterministic counter-derived ids
  (no randomness, so a sim-clock run produces the *same* span tree
  every time), dual timestamps (``wall`` from ``perf_counter`` for real
  latency, ``sim`` from the journal clock for deterministic replay)
  and an optional :class:`~repro.core.reconciler.EventJournal`
  sequence number that correlates the span with the journal entry it
  accompanied.

* :class:`Tracer` — owns the id counter, the
  :class:`~repro.telemetry.histograms.HistogramRegistry` families for
  both planes, the 1-in-N batch sampler state, and the anomaly
  triggers (slow control tick, fusion invalidation storm, heal or
  heal-escalation, journal drop).  The dataplane reads
  ``batch_counter``/``sample_every`` *inline* — an unsampled batch
  pays one attribute read and one counter compare, nothing else.

* :class:`FlightRecorder` — bounded rings of the last K finished spans
  and histogram snapshots, continuously overwritten; an anomaly
  freezes both rings into an immutable dump (with the trigger's
  journal seq) so the moments *before* the incident survive it.
"""

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.telemetry.histograms import HistogramRegistry


class Span:
    """One node of a trace tree.  Finished spans are frozen to dicts."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_wall", "start_sim", "end_wall", "end_sim",
                 "attrs", "seq")

    def to_dict(self) -> dict:
        return {
            "trace-id": self.trace_id,
            "span-id": self.span_id,
            "parent-id": self.parent_id,
            "name": self.name,
            "wall-start": self.start_wall,
            "wall-end": self.end_wall,
            "sim-start": self.start_sim,
            "sim-end": self.end_sim,
            "seq": self.seq,
            "attrs": dict(self.attrs),
        }


class FlightRecorder:
    """Bounded rings of recent spans + histogram snapshots, with dumps.

    ``record``/``snapshot`` keep overwriting the rings; ``freeze``
    copies both into a dump (itself on a bounded ring) that survives
    further traffic.  All mutation is behind one lock — the recorder
    is fed from the dataplane (sampled batches only), the control
    loop, and REST handler threads.
    """

    def __init__(self, span_capacity: int = 256,
                 snapshot_capacity: int = 16, max_dumps: int = 8):
        if span_capacity <= 0 or max_dumps <= 0:
            raise ValueError("flight recorder capacities must be positive")
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=span_capacity)
        self._snapshots: deque = deque(maxlen=snapshot_capacity)
        self.dumps: deque = deque(maxlen=max_dumps)
        self.recorded = 0
        self.frozen = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span.to_dict())
            self.recorded += 1

    def snapshot(self, histograms: HistogramRegistry,
                 wall: float, sim: float) -> None:
        with self._lock:
            self._snapshots.append({"wall": wall, "sim": sim,
                                    "histograms": histograms.snapshot()})

    def freeze(self, reason: str, detail: str = "",
               seq: Optional[int] = None, graph_id: str = "",
               wall: float = 0.0, sim: float = 0.0,
               histograms: Optional[HistogramRegistry] = None) -> dict:
        with self._lock:
            dump = {
                "reason": reason,
                "detail": detail,
                "seq": seq,
                "graph-id": graph_id,
                "wall": wall,
                "sim": sim,
                "spans": list(self._spans),
                "snapshots": list(self._snapshots),
                "histograms": (histograms.snapshot()
                               if histograms is not None else {}),
            }
            self.dumps.append(dump)
            self.frozen += 1
        return dump

    def recent_spans(self) -> List[dict]:
        with self._lock:
            return list(self._spans)

    def dump_list(self) -> List[dict]:
        with self._lock:
            return list(self.dumps)


#: Histogram families registered on every tracer (name, help, labels).
_FAMILIES = (
    ("dataplane_batch", "Sampled per-batch dataplane latency per LSI.",
     ("lsi",)),
    ("chain_hop", "Amortized per-hop fused-chain traversal latency.",
     ("lsi",)),
    ("reconcile_plan", "Reconciler plan computation latency.", ()),
    ("reconcile_step", "Reconciler step execution latency by step kind.",
     ("kind",)),
    ("control_tick", "Control-loop tick latency.", ()),
    ("rest_dispatch", "REST handler dispatch latency by route.",
     ("method", "route")),
)


class Tracer:
    """Sampling tracer + anomaly capture shared by both planes.

    The dataplane hot path touches only ``batch_counter`` and
    ``sample_every`` (inline in ``Datapath._begin_batch``); everything
    else here runs on sampled batches or on the control plane, where a
    few microseconds are irrelevant.
    """

    def __init__(self, sample_every: int = 64,
                 journal: Optional[Callable[[], object]] = None,
                 clock: Optional[Callable[[], float]] = None,
                 flight_spans: int = 256,
                 flight_snapshots: int = 16,
                 max_dumps: int = 8,
                 slow_tick_threshold: float = 0.25,
                 storm_threshold: int = 10,
                 storm_window: float = 1.0,
                 anomaly_cooldown: float = 0.5):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = sample_every
        #: Inline sampler state, read/written directly by the datapath.
        self.batch_counter = 0
        self.sampled_batches = 0
        self._journal = journal
        self._clock = clock
        self.slow_tick_threshold = slow_tick_threshold
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self.anomaly_cooldown = anomaly_cooldown
        self.histograms = HistogramRegistry()
        for name, help_text, labels in _FAMILIES:
            self.histograms.register(name, help_text, labels)
        self.flight = FlightRecorder(span_capacity=flight_spans,
                                     snapshot_capacity=flight_snapshots,
                                     max_dumps=max_dumps)
        self._ids = itertools.count(1)
        self.anomalies: Dict[str, int] = {}
        self._last_anomaly: Dict[str, float] = {}
        self._invalidation_times: deque = deque(maxlen=max(1,
                                                           storm_threshold))

    # -- clocks ---------------------------------------------------------------

    def sim_now(self) -> float:
        """The sim-or-monotonic time, read dynamically.

        The journal is resolved through a callable on every read: the
        control loop may *replace* the reconciler's journal (sharding)
        or rebind its clock (sim mode) after this tracer was built.
        """
        if self._clock is not None:
            return self._clock()
        if self._journal is not None:
            journal = self._journal()
            if journal is not None:
                return journal.clock()
        return time.monotonic()

    # -- spans ----------------------------------------------------------------

    def start_span(self, name: str, parent: Optional[Span] = None,
                   seq: Optional[int] = None, **attrs) -> Span:
        span = Span()
        span.span_id = f"s{next(self._ids)}"
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = f"t{next(self._ids)}"
            span.parent_id = None
        span.name = name
        span.attrs = attrs
        span.seq = seq
        span.start_wall = time.perf_counter()
        span.start_sim = self.sim_now()
        span.end_wall = None
        span.end_sim = None
        return span

    def end_span(self, span: Span, seq: Optional[int] = None,
                 **attrs) -> Span:
        if attrs:
            span.attrs.update(attrs)
        if seq is not None:
            span.seq = seq
        span.end_wall = time.perf_counter()
        span.end_sim = self.sim_now()
        self.flight.record(span)
        return span

    def _window_child(self, parent: Span, name: str, **attrs) -> Span:
        """A child span covering the parent's whole window (batch
        internals are not separately timed — a fused program is one
        straight-line run)."""
        span = Span()
        span.span_id = f"s{next(self._ids)}"
        span.trace_id = parent.trace_id
        span.parent_id = parent.span_id
        span.name = name
        span.attrs = attrs
        span.seq = None
        span.start_wall = parent.start_wall
        span.start_sim = parent.start_sim
        span.end_wall = None
        span.end_sim = None
        return span

    # -- dataplane batch tracing ----------------------------------------------

    def begin_batch(self, lsi: str) -> Span:
        """Start the root span of a sampled batch (sampler already won)."""
        self.sampled_batches += 1
        return self.start_span("batch", lsi=lsi)

    def finish_batch(self, root: Span, dp, state) -> None:
        """Close out a sampled batch: derive the span tree from the
        settled batch state and observe the latency histograms.

        Called by ``Datapath._finish_batch`` after the flush, with the
        ``_BatchState`` still holding the fused groups, the surviving
        pending accumulators and the egress queues.
        """
        end_wall = time.perf_counter()
        end_sim = self.sim_now()
        elapsed = end_wall - root.start_wall
        histograms = self.histograms
        histograms.observe("dataplane_batch", (root.attrs["lsi"],), elapsed)

        children: List[Span] = []
        dispatched = sum(group[4] for group in state.fused.values())
        pending_frames = sum(acc[1] for acc in state.pending.values())
        children.append(self._window_child(
            root, "dispatch" if state.dispatch_engaged else "lookup",
            matched=dispatched + pending_frames, dispatched=dispatched))
        for group in state.fused.values():
            program, frames = group[0], group[1]
            entry = getattr(program, "ingress_entry", None)
            chain = self._window_child(
                root, "chain",
                entry=getattr(entry, "entry_id", None),
                cookie=getattr(entry, "cookie", 0),
                frames=len(frames), dispatched=group[4])
            children.append(chain)
            hops = getattr(program, "hops", None) or ()
            per_hop = elapsed / len(hops) if hops else elapsed
            for index, hop in enumerate(hops):
                histograms.observe("chain_hop", (hop.dp.name,), per_hop)
                children.append(self._window_child(
                    chain, "hop", index=index, lsi=hop.dp.name,
                    out_port=hop.out_no))
        if state.queues:
            children.append(self._window_child(
                root, "egress", ports=sorted(state.queues),
                frames=sum(len(q) for q in state.queues.values())))

        root.end_wall = end_wall
        root.end_sim = end_sim
        self.flight.record(root)
        for child in children:
            child.end_wall = end_wall
            child.end_sim = end_sim
            self.flight.record(child)

    # -- anomaly triggers -----------------------------------------------------

    def anomaly(self, reason: str, detail: str = "",
                seq: Optional[int] = None,
                graph_id: str = "") -> Optional[dict]:
        """Count an anomaly and freeze a flight dump (cooldown-gated
        per reason so an anomaly storm doesn't churn the dump ring)."""
        self.anomalies[reason] = self.anomalies.get(reason, 0) + 1
        now = time.perf_counter()
        last = self._last_anomaly.get(reason)
        if last is not None and now - last < self.anomaly_cooldown:
            return None
        self._last_anomaly[reason] = now
        return self.flight.freeze(reason=reason, detail=detail, seq=seq,
                                  graph_id=graph_id, wall=now,
                                  sim=self.sim_now(),
                                  histograms=self.histograms)

    def freeze(self, reason: str, detail: str = "",
               seq: Optional[int] = None, graph_id: str = "") -> dict:
        """An explicit (non-anomaly, non-cooldown) flight dump."""
        return self.flight.freeze(reason=reason, detail=detail, seq=seq,
                                  graph_id=graph_id,
                                  wall=time.perf_counter(),
                                  sim=self.sim_now(),
                                  histograms=self.histograms)

    def note_invalidation(self, lsi: str, dropped: int = 1) -> None:
        """Called by the fusion engine when live programs are dropped;
        a burst of ``storm_threshold`` within ``storm_window`` seconds
        freezes an invalidation-storm dump."""
        now = time.perf_counter()
        times = self._invalidation_times
        times.append(now)
        if (len(times) == times.maxlen
                and now - times[0] <= self.storm_window):
            times.clear()
            self.anomaly("invalidation-storm",
                         detail=(f"{self.storm_threshold} fusion "
                                 f"invalidations within "
                                 f"{self.storm_window:g}s on {lsi}"))

    def on_journal_drop(self, graph_id: str, event) -> None:
        """EventJournal ``on_drop`` hook: the ring evicted an event."""
        self.anomaly("journal-drop",
                     detail=(f"event journal ring for {graph_id!r} "
                             f"evicted its oldest event"),
                     seq=getattr(event, "seq", None), graph_id=graph_id)

    def observe_tick(self, elapsed: float, graphs: int = 0) -> None:
        """Control-loop tick hook: histogram + periodic snapshot +
        slow-tick anomaly."""
        self.histograms.observe("control_tick", (), elapsed)
        self.flight.snapshot(self.histograms,
                             wall=time.perf_counter(), sim=self.sim_now())
        if elapsed > self.slow_tick_threshold:
            self.anomaly("slow-tick",
                         detail=(f"control tick took {elapsed:.4f}s over "
                                 f"the {self.slow_tick_threshold:g}s "
                                 f"threshold ({graphs} graphs)"))

    # -- documents ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "sample-every": self.sample_every,
            "sampled-batches": self.sampled_batches,
            "spans-recorded": self.flight.recorded,
            "flight-freezes": self.flight.frozen,
            "anomalies": dict(self.anomalies),
        }

    def traces_document(self) -> dict:
        document = self.stats()
        document["spans"] = self.flight.recent_spans()
        return document

    def flight_document(self) -> dict:
        return {
            "flight-freezes": self.flight.frozen,
            "anomalies": dict(self.anomalies),
            "dumps": self.flight.dump_list(),
        }
