"""The autoscaler: measured load in, desired replica counts out.

The paper's premise only scales to "heavy traffic from millions of
users" if a single NF in a chain can become N replicas under load
(analytical VNF performance models — Prados-Garzon et al. — size
exactly this).  The autoscaler closes that loop *declaratively*: it
never creates or destroys anything itself.  Each evaluation reads the
per-NF load from the :class:`~repro.telemetry.metrics.MetricsRegistry`
and, when a policy says so, rewrites the **desired** graph's replica
count through :meth:`Reconciler.set_desired`; the reconciler's next
ticks plan and execute the convergence (create/steer or drain/destroy)
with all of its usual checkpointing and healing semantics.

Hysteresis.  Scale-out triggers when the measured per-replica load
exceeds ``target_pps``; scale-in only when the load would fit at the
*reduced* count with ``scale_in_headroom`` to spare — the two
thresholds never overlap, so a load sitting exactly at a boundary
cannot flap.  ``cooldown_seconds`` additionally rate-limits direction
changes per NF, and scale-in steps one replica at a time (drain
gently) while scale-out jumps straight to the needed count (overload
is the case to hurry for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.reconciler import Reconciler
from repro.nffg.model import Nffg
from repro.nffg.validate import MAX_REPLICAS
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Autoscaler", "ScalingDecision", "ScalingPolicy"]


@dataclass(frozen=True)
class ScalingPolicy:
    """How one NF scales: target load per replica plus guard rails."""

    nf_id: str
    target_pps: float
    min_replicas: int = 1
    max_replicas: int = 4
    #: scale in only if the load would use at most this fraction of the
    #: reduced group's capacity (hysteresis gap against flapping)
    scale_in_headroom: float = 0.7
    #: minimum seconds between replica-count changes for this NF
    cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.target_pps <= 0:
            raise ValueError(f"{self.nf_id}: target_pps must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"{self.nf_id}: need 1 <= min_replicas <= max_replicas")
        if self.max_replicas > MAX_REPLICAS:
            raise ValueError(
                f"{self.nf_id}: max_replicas exceeds the graph cap "
                f"of {MAX_REPLICAS}")
        if not 0 < self.scale_in_headroom <= 1:
            raise ValueError(
                f"{self.nf_id}: scale_in_headroom must be in (0, 1]")


@dataclass(frozen=True)
class ScalingDecision:
    """One applied replica-count change (the autoscaler's audit row)."""

    at: float
    graph_id: str
    nf_id: str
    from_replicas: int
    to_replicas: int
    measured_pps: float
    reason: str

    def to_dict(self) -> dict:
        return {"at": self.at, "graph-id": self.graph_id,
                "nf-id": self.nf_id, "from": self.from_replicas,
                "to": self.to_replicas, "pps": self.measured_pps,
                "reason": self.reason}


@dataclass
class Autoscaler:
    """Evaluates scaling policies against measured load."""

    reconciler: Reconciler
    registry: MetricsRegistry
    #: (graph_id, nf_id) -> policy
    policies: dict[tuple[str, str], ScalingPolicy] = field(
        default_factory=dict)
    decisions: list[ScalingDecision] = field(default_factory=list)
    _last_change: dict[tuple[str, str], float] = field(default_factory=dict)

    def add_policy(self, graph_id: str, policy: ScalingPolicy) -> None:
        self.policies[(graph_id, policy.nf_id)] = policy

    def remove_policy(self, graph_id: str, nf_id: str) -> None:
        self.policies.pop((graph_id, nf_id), None)

    # -- the decision ------------------------------------------------------------
    def _wanted(self, policy: ScalingPolicy, current: int,
                pps: float) -> tuple[int, str]:
        """(desired replica count, reason) under hysteresis."""
        if pps > policy.target_pps * current:
            needed = math.ceil(pps / policy.target_pps)
            want = min(max(needed, current + 1), policy.max_replicas)
            if want > current:
                return want, (f"overload: {pps:.0f} pps > "
                              f"{policy.target_pps:.0f}/replica x {current}")
        if current > policy.min_replicas:
            reduced = current - 1
            fits = policy.target_pps * reduced * policy.scale_in_headroom
            if pps < fits:
                return reduced, (f"drain: {pps:.0f} pps fits {reduced} "
                                 f"replica(s) with headroom")
        return current, ""

    def evaluate(self, now: Optional[float] = None) -> list[ScalingDecision]:
        """One pass over every policy; applies and returns the changes.

        Each change rewrites the raw desired graph (replica count only)
        via ``set_desired`` and journals an ``autoscale`` event — the
        reconciler converges on its own schedule (the control loop's
        next tick, or an explicit ``reconcile``).
        """
        t = self.registry.now() if now is None else now
        applied: list[ScalingDecision] = []
        for (graph_id, nf_id), policy in sorted(self.policies.items()):
            raw = self.reconciler.desired_raw.get(graph_id)
            if raw is None:
                continue
            try:
                spec = raw.nf(nf_id)
            except KeyError:
                continue
            pps = self.registry.group_pps(graph_id, nf_id)
            if pps is None:
                continue  # fewer than two samples: no rate signal yet
            current = spec.replicas
            want, reason = self._wanted(policy, current, pps)
            if want == current:
                continue
            last = self._last_change.get((graph_id, nf_id))
            if last is not None and t - last < policy.cooldown_seconds:
                continue
            new_graph = Nffg(
                graph_id=raw.graph_id, name=raw.name,
                nfs=[replace(s, replicas=want) if s.nf_id == nf_id else s
                     for s in raw.nfs],
                endpoints=list(raw.endpoints),
                flow_rules=list(raw.flow_rules))
            self.reconciler.set_desired(new_graph)
            self.reconciler.journal.append(
                graph_id, "autoscale", nf_id=nf_id,
                detail=f"{current} -> {want} replicas ({reason})")
            decision = ScalingDecision(
                at=t, graph_id=graph_id, nf_id=nf_id,
                from_replicas=current, to_replicas=want,
                measured_pps=pps, reason=reason)
            self.decisions.append(decision)
            applied.append(decision)
            self._last_change[(graph_id, nf_id)] = t
        return applied
