"""The autoscaler: measured load in, desired replica counts out.

The paper's premise only scales to "heavy traffic from millions of
users" if a single NF in a chain can become N replicas under load
(analytical VNF performance models — Prados-Garzon et al. — size
exactly this).  The autoscaler closes that loop *declaratively*: it
never creates or destroys anything itself.  Each evaluation reads the
per-NF load from the :class:`~repro.telemetry.metrics.MetricsRegistry`
and, when a policy says so, rewrites the **desired** graph's replica
count through :meth:`Reconciler.set_desired`; the reconciler's next
ticks plan and execute the convergence (create/steer or drain/destroy)
with all of its usual checkpointing and healing semantics.

Hysteresis.  Scale-out triggers when the measured per-replica load
exceeds ``target_pps``; scale-in only when the load would fit at the
*reduced* count with ``scale_in_headroom`` to spare — the two
thresholds never overlap, so a load sitting exactly at a boundary
cannot flap.  ``cooldown_seconds`` additionally rate-limits direction
changes per NF, and scale-in steps one replica at a time (drain
gently) while scale-out jumps straight to the needed count (overload
is the case to hurry for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.reconciler import Reconciler
from repro.nffg.model import Nffg, ScalingPolicy
from repro.telemetry.metrics import MetricsRegistry

# ScalingPolicy moved into repro.nffg.model when policies became durable
# graph state (serialized with the NF-FG); re-exported here because this
# was its historical home.
__all__ = ["Autoscaler", "ScalingDecision", "ScalingPolicy"]


@dataclass(frozen=True)
class ScalingDecision:
    """One applied replica-count change (the autoscaler's audit row)."""

    at: float
    graph_id: str
    nf_id: str
    from_replicas: int
    to_replicas: int
    measured_pps: float
    reason: str

    def to_dict(self) -> dict:
        return {"at": self.at, "graph-id": self.graph_id,
                "nf-id": self.nf_id, "from": self.from_replicas,
                "to": self.to_replicas, "pps": self.measured_pps,
                "reason": self.reason}


@dataclass
class Autoscaler:
    """Evaluates scaling policies against measured load."""

    reconciler: Reconciler
    registry: MetricsRegistry
    #: (graph_id, nf_id) -> policy
    policies: dict[tuple[str, str], ScalingPolicy] = field(
        default_factory=dict)
    decisions: list[ScalingDecision] = field(default_factory=list)
    _last_change: dict[tuple[str, str], float] = field(default_factory=dict)

    def add_policy(self, graph_id: str, policy: ScalingPolicy) -> None:
        self.policies[(graph_id, policy.nf_id)] = policy

    def remove_policy(self, graph_id: str, nf_id: str) -> None:
        self.policies.pop((graph_id, nf_id), None)

    def _policy_sources(self) -> dict[tuple[str, str], ScalingPolicy]:
        """Graph-embedded policies merged with explicit ones.

        Policies persisted in the desired graph (``scaling-policies``
        in the NF-FG document, ``PUT /graphs/{id}/policies``) autoscale
        with no driver attached; a policy registered directly through
        :meth:`add_policy` overrides the persisted one for the same
        (graph, NF) — the explicit caller knows best.
        """
        merged: dict[tuple[str, str], ScalingPolicy] = {}
        for graph_id, raw in list(self.reconciler.desired_raw.items()):
            for policy in raw.policies:
                merged[(graph_id, policy.nf_id)] = policy
        merged.update(self.policies)
        return merged

    # -- the decision ------------------------------------------------------------
    def _wanted(self, policy: ScalingPolicy, current: int,
                pps: float) -> tuple[int, str]:
        """(desired replica count, reason) under hysteresis."""
        if pps > policy.target_pps * current:
            needed = math.ceil(pps / policy.target_pps)
            want = min(max(needed, current + 1), policy.max_replicas)
            if want > current:
                return want, (f"overload: {pps:.0f} pps > "
                              f"{policy.target_pps:.0f}/replica x {current}")
        if current > policy.min_replicas:
            reduced = current - 1
            fits = policy.target_pps * reduced * policy.scale_in_headroom
            if pps < fits:
                return reduced, (f"drain: {pps:.0f} pps fits {reduced} "
                                 f"replica(s) with headroom")
        return current, ""

    def evaluate(self, now: Optional[float] = None) -> list[ScalingDecision]:
        """One pass over every policy; applies and returns the changes.

        Each change rewrites the raw desired graph (replica count only)
        via ``set_desired`` and journals an ``autoscale`` event — the
        reconciler converges on its own schedule (the control loop's
        next tick, or an explicit ``reconcile``).
        """
        t = self.registry.now() if now is None else now
        applied: list[ScalingDecision] = []
        for (graph_id, nf_id), policy in sorted(
                self._policy_sources().items()):
            # The check (read replicas, decide) and the act
            # (set_desired) must be one atomic step against REST
            # updates and other shards' ticks on the same graph.
            with self.reconciler.lock(graph_id):
                decision = self._evaluate_one(graph_id, nf_id, policy, t)
            if decision is not None:
                applied.append(decision)
        return applied

    def _evaluate_one(self, graph_id: str, nf_id: str,
                      policy: ScalingPolicy,
                      t: float) -> Optional[ScalingDecision]:
        raw = self.reconciler.desired_raw.get(graph_id)
        if raw is None:
            return None
        try:
            spec = raw.nf(nf_id)
        except KeyError:
            return None
        pps = self.registry.group_pps(graph_id, nf_id)
        if pps is None:
            return None  # fewer than two samples: no rate signal yet
        current = spec.replicas
        want, reason = self._wanted(policy, current, pps)
        if want == current:
            return None
        last = self._last_change.get((graph_id, nf_id))
        if last is not None and t - last < policy.cooldown_seconds:
            return None
        new_graph = Nffg(
            graph_id=raw.graph_id, name=raw.name,
            nfs=[replace(s, replicas=want) if s.nf_id == nf_id else s
                 for s in raw.nfs],
            endpoints=list(raw.endpoints),
            flow_rules=list(raw.flow_rules),
            policies=list(raw.policies))
        self.reconciler.set_desired(new_graph)
        self.reconciler.journal.append(
            graph_id, "autoscale", nf_id=nf_id,
            detail=f"{current} -> {want} replicas ({reason})")
        decision = ScalingDecision(
            at=t, graph_id=graph_id, nf_id=nf_id,
            from_replicas=current, to_replicas=want,
            measured_pps=pps, reason=reason)
        self.decisions.append(decision)
        self._last_change[(graph_id, nf_id)] = t
        return decision
