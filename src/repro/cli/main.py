"""The ``repro`` command.

Subcommands::

    repro table1 [--frame-bytes N] [--duration S]
        Reproduce the paper's Table 1 and print paper-vs-measured.

    repro deploy GRAPH.json [--show-flows]
        Deploy an NF-FG JSON document on a fresh CPE node and print
        the placement (VNF vs NNF per NF) and node state.

    repro node
        Print the node description a fresh CPE answers on GET /.

    repro serve [--port P] [--interval S] [--shards N] [--no-loop]
        Start a CPE node, expose its REST API on localhost, and run
        the sharded control loop (reconcile ticks + telemetry +
        autoscaling of persisted scaling policies).

    repro validate GRAPH.json
        Validate an NF-FG document without deploying it.

    repro graph events GRAPH_ID [--url U]
        Print a running node's reconciliation journal for one graph.

    repro graph reconcile GRAPH_ID [--url U]
        Trigger a reconcile-to-convergence (detect + heal) on a
        running node and print the result.

    repro graph status GRAPH_ID [--url U]
        Print a running node's status document for one graph.

    repro top [--url U] [--watch SECONDS]
        Per-NF load view of a running node: replica counts, pps,
        bytes/s, MTTR and heal counts from the telemetry registry.
        With ``--watch`` it redraws every SECONDS until interrupted;
        a transiently unreachable node (restart, deploy) is retried
        with backoff behind a stale-data banner instead of exiting.

    repro trace [--flight] [--url U]
        Print the node's recent sampled trace spans as a tree, or —
        with ``--flight`` — the flight-recorder dumps frozen by
        anomaly triggers (slow tick, invalidation storm, heal,
        journal drop).

The ``graph``, ``top`` and ``trace`` subcommands talk HTTP to a node
started with ``repro serve`` (default ``--url http://127.0.0.1:8080``);
their ``--timeout`` flag bounds each request (default 30s —
reconciling a loaded node legitimately takes longer than a short
connect timeout).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core.node import ComputeNode
from repro.nffg.json_codec import nffg_from_json
from repro.nffg.validate import NffgValidationError, validate_nffg

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Native Network Functions NFV node (SIGCOMM'16 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--frame-bytes", type=int, default=1500)
    table1.add_argument("--duration", type=float, default=0.2,
                        help="simulated seconds per measurement")

    deploy = sub.add_parser("deploy", help="deploy an NF-FG JSON document")
    deploy.add_argument("graph", help="path to the NF-FG JSON file")
    deploy.add_argument("--show-flows", action="store_true",
                        help="dump the resulting LSI flow tables")

    sub.add_parser("node", help="print the node description")

    serve = sub.add_parser("serve", help="serve the REST API on localhost")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--interval", type=float, default=1.0,
                       help="control-loop period in seconds "
                            "(tick + sample + autoscale)")
    serve.add_argument("--shards", type=int, default=2,
                       help="reconcile-loop worker shards "
                            "(graphs hash to a shard; 1 disables)")
    serve.add_argument("--no-loop", action="store_true",
                       help="serve REST only, without the control loop")

    validate = sub.add_parser("validate", help="validate an NF-FG document")
    validate.add_argument("graph", help="path to the NF-FG JSON file")

    graph = sub.add_parser(
        "graph", help="inspect/drive a live graph on a running node")
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)
    for name, text in (("events", "print the reconciliation journal"),
                       ("reconcile", "reconcile to convergence (heal)"),
                       ("status", "print the graph status document")):
        leaf = graph_sub.add_parser(name, help=text)
        leaf.add_argument("graph_id", help="graph id on the serving node")
        leaf.add_argument("--url", default="http://127.0.0.1:8080",
                          help="base URL of the node's REST API")
        leaf.add_argument("--timeout", type=float, default=30.0,
                          help="HTTP timeout in seconds (reconcile on a "
                               "loaded node can exceed short timeouts)")

    top = sub.add_parser(
        "top", help="per-NF load/replica/availability view of a node")
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="base URL of the node's REST API")
    top.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                     help="redraw every SECONDS until interrupted")
    top.add_argument("--timeout", type=float, default=30.0,
                     help="HTTP timeout in seconds")

    trace = sub.add_parser(
        "trace", help="recent sampled trace spans / flight dumps")
    trace.add_argument("--flight", action="store_true",
                       help="print frozen flight-recorder dumps instead "
                            "of the live span ring")
    trace.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the node's REST API")
    trace.add_argument("--timeout", type=float, default=30.0,
                       help="HTTP timeout in seconds")
    return parser


def _fresh_node() -> ComputeNode:
    node = ComputeNode("cpe")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.perf.table1 import render_table, run_table1
    rows = run_table1(frame_bytes=args.frame_bytes, duration=args.duration)
    print(render_table(rows))
    bad = [row.flavor for row in rows if not row.probe_delivered]
    if bad:
        print(f"warning: dataplane probe failed for: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    return 0


def _load_graph(path: str):
    try:
        with open(path, encoding="utf-8") as handle:
            return nffg_from_json(handle.read())
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path}: {exc}")


def _cmd_deploy(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    node = _fresh_node()
    record = node.deploy(graph)
    print(f"deployed graph {graph.graph_id!r} "
          f"({record.rules_installed} flow rules, "
          f"{record.modeled_deploy_seconds:.2f}s modeled deploy time)")
    for nf_id, technology in sorted(record.technologies().items()):
        shared = record.instances[nf_id].shared
        print(f"  {nf_id}: {technology}"
              + (" (shared NNF)" if shared else ""))
    if args.show_flows:
        print(node.steering.describe())
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    print(json.dumps(_fresh_node().describe(), indent=2, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.rest.server import serve_node
    node = _fresh_node()
    loop = None
    if not args.no_loop:
        # The control loop is what makes persisted scaling policies
        # live: any graph PUT with "scaling-policies" (or a later
        # PUT /graphs/{id}/policies) autoscales with no driver script.
        from repro.telemetry.autoscaler import Autoscaler
        from repro.telemetry.loop import ControlLoop
        autoscaler = Autoscaler(reconciler=node.orchestrator.reconciler,
                                registry=node.telemetry)
        loop = ControlLoop(node.orchestrator, node.telemetry,
                           autoscaler=autoscaler, interval=args.interval,
                           shards=max(1, args.shards)).start()
    server = serve_node(node, port=args.port)
    loop_note = ("no control loop" if loop is None else
                 f"control loop every {args.interval:g}s, "
                 f"{max(1, args.shards)} shard(s)")
    print(f"serving node {node.name!r} on {server.url} "
          f"({loop_note}; Ctrl-C to stop)")
    try:
        import time
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        if loop is not None:
            loop.stop()
        server.stop()
        print("stopped")
    return 0


class NodeUnreachable(Exception):
    """Connection-level failure against a serving node (no HTTP reply).

    Distinct from an HTTP error status: the watch loop treats this as
    transient (a restarting server) and retries with backoff, while
    one-shot commands turn it into a ``SystemExit``.
    """


def _fetch(method: str, url: str, timeout: float = 30.0):
    """One JSON request; raises :class:`NodeUnreachable` on refusal."""
    import urllib.error
    import urllib.request

    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read() or b"null")
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read() or b"{}").get("error", "")
        except ValueError:
            detail = ""
        raise SystemExit(
            f"{url}: HTTP {exc.code}" + (f" — {detail}" if detail else ""))
    except urllib.error.URLError as exc:
        raise NodeUnreachable(
            f"cannot reach {url}: {exc.reason} (is `repro serve` running?)")


def _http(method: str, url: str, timeout: float = 30.0):
    """One JSON request against a serving node; exits on refusal."""
    try:
        return _fetch(method, url, timeout=timeout)
    except NodeUnreachable as exc:
        raise SystemExit(str(exc))


def _cmd_graph(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    graph_id = args.graph_id
    timeout = args.timeout
    if args.graph_command == "events":
        document = _http("GET", f"{base}/graphs/{graph_id}/events",
                         timeout=timeout)
        for event in document["events"]:
            target = event.get("nf-id") or event.get("rule-id") or ""
            detail = event.get("detail", "")
            line = f"{event['seq']:>5}  {event['kind']:<15} {target:<12}"
            print(f"{line} {detail}".rstrip())
        dropped = document.get("dropped", 0)
        if dropped:
            print(f"(ring buffer full: {dropped} older event(s) dropped, "
                  f"max-events={document.get('max-events', '?')})")
        return 0
    if args.graph_command == "reconcile":
        # A non-converging graph surfaces as an HTTP 409 (SystemExit in
        # _http); a 200 reply always means convergence.
        document = _http("POST", f"{base}/graphs/{graph_id}/reconcile",
                         timeout=timeout)
        print(f"graph {graph_id!r}: converged after {document['ticks']} "
              f"tick(s), {document['steps-executed']} step(s) executed")
        return 0
    document = _http("GET", f"{base}/nffg/{graph_id}/status",
                     timeout=timeout)
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


#: Backoff ceiling for ``repro top --watch`` against an unreachable node.
_WATCH_BACKOFF_CAP = 30.0


def watch_top(base: str, interval: float, timeout: float,
              iterations: Optional[int] = None,
              fetch=None, sleep=None, out=print) -> int:
    """The ``repro top --watch`` loop, with reconnect backoff.

    A transiently unreachable node (restarting server, mid-deploy
    hiccup) keeps the last good table on screen behind a stale-data
    banner and retries with exponential backoff (capped at
    ``_WATCH_BACKOFF_CAP``) instead of raising through the CLI; the
    first successful fetch resets the cadence.  ``iterations``,
    ``fetch``, ``sleep`` and ``out`` are injectable for tests.
    """
    from repro.telemetry.export import render_top
    if fetch is None:
        fetch = _fetch
    if sleep is None:
        import time as _time
        sleep = _time.sleep
    delay = interval
    last_document = None
    drawn = 0
    while iterations is None or drawn < iterations:
        drawn += 1
        try:
            document = fetch("GET", f"{base}/metrics.json",
                             timeout=timeout)
        except NodeUnreachable as exc:
            delay = min(max(delay * 2, interval), _WATCH_BACKOFF_CAP)
            stale = (render_top(last_document)
                     if last_document is not None else "(no data yet)")
            out("\033[2J\033[H" + stale
                + f"\n\n[stale] {exc} — retrying in {delay:g}s")
            sleep(delay)
            continue
        delay = interval
        last_document = document
        out("\033[2J\033[H" + render_top(document)
            + f"\n\n(samples={document.get('samples', 0)}; "
              f"refresh every {interval:g}s, Ctrl-C to stop)")
        sleep(interval)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry.export import render_top
    base = args.url.rstrip("/")
    if args.watch is None:
        print(render_top(_http("GET", f"{base}/metrics.json",
                               timeout=args.timeout)))
        return 0
    try:
        return watch_top(base, args.watch, args.timeout)
    except KeyboardInterrupt:
        return 0


def _print_span_tree(spans: list, indent: str = "") -> None:
    by_id = {span.get("span-id"): span for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent-id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def emit(span: dict, depth: int) -> None:
        start, end = span.get("wall-start"), span.get("wall-end")
        duration = (f" {1e3 * (end - start):.3f}ms"
                    if start is not None and end is not None else "")
        seq = span.get("seq")
        seq_text = f" seq={seq}" if seq is not None else ""
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{key}={attrs[key]}"
                             for key in sorted(attrs))
        print(f"{indent}{'  ' * depth}{span.get('name', '?')}"
              f"{duration}{seq_text}"
              + (f" [{attr_text}]" if attr_text else ""))
        for child in children.get(span.get("span-id"), ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)


def _cmd_trace(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if args.flight:
        document = _http("GET", f"{base}/traces/flight",
                         timeout=args.timeout)
        dumps = document.get("dumps", [])
        if not dumps:
            print("(no flight-recorder dumps frozen)")
            return 0
        for dump in dumps:
            seq = dump.get("seq")
            print(f"dump: reason={dump.get('reason', '?')!r} "
                  f"seq={seq if seq is not None else '-'} "
                  f"sim={dump.get('sim', 0):g} "
                  f"spans={len(dump.get('spans', []))} "
                  f"{dump.get('detail', '')}".rstrip())
            _print_span_tree(dump.get("spans", []), indent="  ")
        return 0
    document = _http("GET", f"{base}/traces", timeout=args.timeout)
    spans = document.get("spans", [])
    print(f"sampling 1/{document.get('sample-every', '?')}, "
          f"{document.get('sampled-batches', 0)} sampled batch(es), "
          f"{len(spans)} retained span(s)")
    _print_span_tree(spans)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    try:
        validate_nffg(graph)
    except NffgValidationError as exc:
        print(f"{args.graph}: INVALID")
        for problem in exc.problems:
            print(f"  - {problem}")
        return 1
    print(f"{args.graph}: OK ({len(graph.nfs)} NFs, "
          f"{len(graph.flow_rules)} rules)")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "deploy": _cmd_deploy,
    "node": _cmd_node,
    "serve": _cmd_serve,
    "validate": _cmd_validate,
    "graph": _cmd_graph,
    "top": _cmd_top,
    "trace": _cmd_trace,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
