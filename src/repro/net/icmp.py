"""ICMP echo codec — enough for ping through the simulated dataplane."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum

__all__ = ["ICMP_ECHO_REPLY", "ICMP_ECHO_REQUEST", "IcmpMessage"]

ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8

_HEADER = struct.Struct("!BBHHH")


@dataclass
class IcmpMessage:
    icmp_type: int
    code: int
    identifier: int
    sequence: int
    payload: bytes = b""

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REPLY

    def reply(self) -> "IcmpMessage":
        if not self.is_echo_request:
            raise ValueError("can only reply to an echo request")
        return IcmpMessage(icmp_type=ICMP_ECHO_REPLY, code=0,
                           identifier=self.identifier,
                           sequence=self.sequence, payload=self.payload)

    def to_bytes(self) -> bytes:
        header = _HEADER.pack(self.icmp_type, self.code, 0,
                              self.identifier, self.sequence)
        checksum = internet_checksum(header + self.payload)
        header = header[:2] + struct.pack("!H", checksum) + header[4:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpMessage":
        if len(data) < _HEADER.size:
            raise ValueError("ICMP message too short")
        icmp_type, code, checksum, identifier, sequence = _HEADER.unpack_from(
            data, 0)
        if internet_checksum(data) != 0:
            raise ValueError("ICMP checksum mismatch")
        return cls(icmp_type=icmp_type, code=code, identifier=identifier,
                   sequence=sequence, payload=data[_HEADER.size:])
