"""Ethernet II framing with optional 802.1Q VLAN tag.

The adaptation layer of the NNF framework (paper §2) marks traffic of
different service graphs with VLAN ids before it reaches a shared,
single-interface NNF; the tag push/pop here is therefore on the hot
path of the sharability experiments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.addresses import MacAddress

__all__ = [
    "ETH_HEADER_LEN",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "VLAN_HEADER_LEN",
    "EthernetFrame",
]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

ETH_HEADER_LEN = 14
VLAN_HEADER_LEN = 4


@dataclass
class EthernetFrame:
    """An Ethernet II frame; ``vlan`` is the 802.1Q VID or None (untagged).

    ``payload`` is the raw bytes after the last Ethernet/VLAN header.
    """

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes
    vlan: Optional[int] = None
    vlan_pcp: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype:#x}")
        if self.vlan is not None and not 0 <= self.vlan <= 4095:
            raise ValueError(f"VLAN id out of range: {self.vlan}")
        if not 0 <= self.vlan_pcp <= 7:
            raise ValueError(f"VLAN PCP out of range: {self.vlan_pcp}")

    # -- VLAN handling (used by the adaptation layer) ---------------------
    def with_vlan(self, vid: int, pcp: int = 0) -> "EthernetFrame":
        """Return a copy tagged with VLAN ``vid`` (replaces existing tag)."""
        return replace(self, vlan=vid, vlan_pcp=pcp)

    def without_vlan(self) -> "EthernetFrame":
        """Return an untagged copy."""
        return replace(self, vlan=None, vlan_pcp=0)

    # -- codec -------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = self.dst.packed + self.src.packed
        if self.vlan is not None:
            tci = (self.vlan_pcp << 13) | self.vlan
            header += struct.pack("!HH", ETHERTYPE_VLAN, tci)
        header += struct.pack("!H", self.ethertype)
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < ETH_HEADER_LEN:
            raise ValueError(f"frame too short: {len(data)} bytes")
        dst = MacAddress(data[0:6])
        src = MacAddress(data[6:12])
        (ethertype,) = struct.unpack_from("!H", data, 12)
        offset = ETH_HEADER_LEN
        vlan = None
        pcp = 0
        if ethertype == ETHERTYPE_VLAN:
            if len(data) < ETH_HEADER_LEN + VLAN_HEADER_LEN:
                raise ValueError("truncated 802.1Q header")
            (tci, inner_type) = struct.unpack_from("!HH", data, 12 + 2)
            vlan = tci & 0x0FFF
            pcp = tci >> 13
            ethertype = inner_type
            offset += VLAN_HEADER_LEN
        return cls(dst=dst, src=src, ethertype=ethertype,
                   payload=data[offset:], vlan=vlan, vlan_pcp=pcp)

    def __len__(self) -> int:
        tag = VLAN_HEADER_LEN if self.vlan is not None else 0
        return ETH_HEADER_LEN + tag + len(self.payload)

    def __repr__(self) -> str:
        tag = f" vlan={self.vlan}" if self.vlan is not None else ""
        return (f"<Eth {self.src}->{self.dst} type={self.ethertype:#06x}"
                f"{tag} len={len(self)}>")
