"""IPv4 header codec (RFC 791, no options beyond raw pass-through)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.net.addresses import int_to_ip, ip_to_int
from repro.net.checksum import internet_checksum

__all__ = [
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPPROTO_ESP",
    "IPV4_HEADER_LEN",
    "IPv4Packet",
]

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_ESP = 50

IPV4_HEADER_LEN = 20


@dataclass
class IPv4Packet:
    """An IPv4 packet; addresses are dotted-quad strings."""

    src: str
    dst: str
    proto: int
    payload: bytes
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    flags: int = 0b010  # DF set, as Linux does for locally generated traffic

    def __post_init__(self) -> None:
        # Validate addresses eagerly so malformed packets fail loudly at
        # the point of construction rather than deep inside a datapath.
        ip_to_int(self.src)
        ip_to_int(self.dst)
        if not 0 <= self.proto <= 255:
            raise ValueError(f"protocol out of range: {self.proto}")
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"TTL out of range: {self.ttl}")

    @property
    def total_length(self) -> int:
        return IPV4_HEADER_LEN + len(self.payload)

    def decrement_ttl(self) -> "IPv4Packet":
        """Return a copy with TTL-1; raises when TTL would hit zero."""
        if self.ttl <= 1:
            raise ValueError("TTL expired")
        return replace(self, ttl=self.ttl - 1)

    def to_bytes(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            self.flags << 13,
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            ip_to_int(self.src).to_bytes(4, "big"),
            ip_to_int(self.dst).to_bytes(4, "big"),
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes, verify_checksum: bool = True) -> "IPv4Packet":
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError(f"IPv4 packet too short: {len(data)} bytes")
        (version_ihl, tos, total_length, identification, flags_frag,
         ttl, proto, checksum, src_raw, dst_raw) = struct.unpack_from(
            "!BBHHHBBH4s4s", data, 0)
        version = version_ihl >> 4
        ihl = (version_ihl & 0x0F) * 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        if ihl < IPV4_HEADER_LEN or len(data) < ihl:
            raise ValueError("bad IPv4 header length")
        if total_length > len(data):
            raise ValueError("IPv4 total length exceeds buffer")
        if verify_checksum and internet_checksum(data[:ihl]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        return cls(
            src=int_to_ip(int.from_bytes(src_raw, "big")),
            dst=int_to_ip(int.from_bytes(dst_raw, "big")),
            proto=proto,
            payload=data[ihl:total_length],
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            flags=flags_frag >> 13,
        )

    def __repr__(self) -> str:
        return (f"<IPv4 {self.src}->{self.dst} proto={self.proto} "
                f"ttl={self.ttl} len={self.total_length}>")
