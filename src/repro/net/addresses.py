"""MAC and IPv4 address helpers.

IPv4 addresses are carried as dotted-quad strings at API boundaries and
as 32-bit ints inside hot paths (route lookup, NAT rewriting); the two
helpers below convert between the forms.
"""

from __future__ import annotations

import re
import struct

__all__ = ["MacAddress", "compile_cidr", "int_to_ip", "ip_to_int",
           "parse_cidr"]

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


class MacAddress:
    """48-bit MAC address, hashable, canonical lower-case colon form."""

    __slots__ = ("_value",)

    def __init__(self, address: "str | int | bytes | MacAddress") -> None:
        if isinstance(address, MacAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address < 1 << 48:
                raise ValueError(f"MAC integer out of range: {address:#x}")
            self._value = address
        elif isinstance(address, bytes):
            if len(address) != 6:
                raise ValueError(f"MAC bytes must be 6 long, got {len(address)}")
            self._value = int.from_bytes(address, "big")
        elif isinstance(address, str):
            if not _MAC_RE.match(address):
                raise ValueError(f"malformed MAC address: {address!r}")
            self._value = int(address.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MacAddress from {type(address)}")

    @classmethod
    def from_index(cls, index: int) -> "MacAddress":
        """Deterministic locally-administered MAC for interface ``index``."""
        if not 0 <= index < 1 << 40:
            raise ValueError("interface index out of MAC range")
        return cls((0x02 << 40) | index)

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == MacAddress(other)._value
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")


def ip_to_int(address: str) -> int:
    """Dotted-quad string -> 32-bit int; raises ValueError on bad input."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {address!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit int -> dotted-quad string."""
    if not 0 <= value < 1 << 32:
        raise ValueError(f"IPv4 integer out of range: {value:#x}")
    return ".".join(str(b) for b in struct.pack("!I", value))


def parse_cidr(cidr: str) -> tuple[int, int]:
    """Parse ``a.b.c.d/len`` into ``(network_int, prefix_len)``.

    The host bits are masked off, so ``10.0.0.7/24`` yields the network
    ``10.0.0.0``.
    """
    if "/" not in cidr:
        raise ValueError(f"CIDR must contain '/': {cidr!r}")
    addr, _, plen_text = cidr.partition("/")
    if not plen_text.isdigit():
        raise ValueError(f"malformed prefix length in {cidr!r}")
    plen = int(plen_text)
    if not 0 <= plen <= 32:
        raise ValueError(f"prefix length out of range in {cidr!r}")
    mask = 0 if plen == 0 else (0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF
    return ip_to_int(addr) & mask, plen


def compile_cidr(cidr: str) -> tuple[int, int]:
    """Precompile a CIDR (bare addresses mean /32) for hot-path tests.

    Returns ``(network >> shift, shift)`` with ``shift = 32 - plen``, so
    a membership test is two integer ops and no string parsing:
    ``ip_int >> shift == network_shifted``.  For ``/0`` both sides are 0
    and every address matches.
    """
    network, plen = parse_cidr(cidr if "/" in cidr else cidr + "/32")
    shift = 32 - plen
    return network >> shift, shift
