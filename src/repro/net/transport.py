"""UDP and (simplified) TCP segment codecs.

The iperf-like measurement tool uses these; TCP here carries the fields
needed for connection tracking (iptables NAT) and throughput accounting,
with real header packing but no retransmission machinery — the DES models
loss-free virtual links inside one node, as in the paper's testbed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import ip_to_int
from repro.net.checksum import internet_checksum

__all__ = ["TcpSegment", "UdpDatagram", "pseudo_header"]

UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

# TCP flag bits
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


def pseudo_header(src: str, dst: str, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used by the UDP/TCP checksums."""
    return struct.pack("!4s4sBBH",
                       ip_to_int(src).to_bytes(4, "big"),
                       ip_to_int(dst).to_bytes(4, "big"),
                       0, proto, length)


def _check_port(port: int, what: str) -> None:
    if not 0 <= port <= 0xFFFF:
        raise ValueError(f"{what} port out of range: {port}")


@dataclass
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        _check_port(self.src_port, "source")
        _check_port(self.dst_port, "destination")

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + len(self.payload)

    def to_bytes(self, src_ip: str = "0.0.0.0",
                 dst_ip: str = "0.0.0.0") -> bytes:
        header = struct.pack("!HHHH", self.src_port, self.dst_port,
                             self.length, 0)
        checksum = internet_checksum(
            pseudo_header(src_ip, dst_ip, 17, self.length)
            + header + self.payload)
        if checksum == 0:  # RFC 768: transmitted as all ones
            checksum = 0xFFFF
        return header[:6] + struct.pack("!H", checksum) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("UDP datagram too short")
        src_port, dst_port, length, _checksum = struct.unpack_from(
            "!HHHH", data, 0)
        if length < UDP_HEADER_LEN or length > len(data):
            raise ValueError("bad UDP length field")
        return cls(src_port=src_port, dst_port=dst_port,
                   payload=data[UDP_HEADER_LEN:length])


@dataclass
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes
    window: int = 65535

    def __post_init__(self) -> None:
        _check_port(self.src_port, "source")
        _check_port(self.dst_port, "destination")
        if not 0 <= self.seq < 1 << 32 or not 0 <= self.ack < 1 << 32:
            raise ValueError("TCP sequence numbers are 32-bit")

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def length(self) -> int:
        return TCP_HEADER_LEN + len(self.payload)

    def to_bytes(self, src_ip: str = "0.0.0.0",
                 dst_ip: str = "0.0.0.0") -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        header = struct.pack("!HHIIHHHH", self.src_port, self.dst_port,
                             self.seq, self.ack, offset_flags,
                             self.window, 0, 0)
        checksum = internet_checksum(
            pseudo_header(src_ip, dst_ip, 6, self.length)
            + header + self.payload)
        header = header[:16] + struct.pack("!H", checksum) + header[18:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpSegment":
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("TCP segment too short")
        (src_port, dst_port, seq, ack, offset_flags, window,
         _checksum, _urgent) = struct.unpack_from("!HHIIHHHH", data, 0)
        data_offset = (offset_flags >> 12) * 4
        if data_offset < TCP_HEADER_LEN or data_offset > len(data):
            raise ValueError("bad TCP data offset")
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=offset_flags & 0x3F, payload=data[data_offset:],
                   window=window)
