"""Convenience constructors and a full-stack frame parser.

Traffic generators build frames with ``make_udp_frame``/``make_tcp_frame``;
datapath elements that must inspect L3/L4 (iptables, NAT, the XFRM hook)
use ``parse_frame`` which decodes as deep as it can and returns a
:class:`ParsedFrame` bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.transport import TcpSegment, UdpDatagram

__all__ = ["ParsedFrame", "make_tcp_frame", "make_udp_frame", "parse_frame"]


@dataclass
class ParsedFrame:
    """Decoded view of a frame; deeper layers are None when absent."""

    eth: EthernetFrame
    ipv4: Optional[IPv4Packet] = None
    udp: Optional[UdpDatagram] = None
    tcp: Optional[TcpSegment] = None

    @property
    def five_tuple(self) -> Optional[tuple[str, str, int, int, int]]:
        """(src_ip, dst_ip, proto, src_port, dst_port) or None."""
        if self.ipv4 is None:
            return None
        if self.udp is not None:
            return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto,
                    self.udp.src_port, self.udp.dst_port)
        if self.tcp is not None:
            return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto,
                    self.tcp.src_port, self.tcp.dst_port)
        return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto, 0, 0)


def make_udp_frame(src_mac: "MacAddress | str", dst_mac: "MacAddress | str",
                   src_ip: str, dst_ip: str, src_port: int, dst_port: int,
                   payload: bytes, vlan: Optional[int] = None,
                   ttl: int = 64) -> EthernetFrame:
    """Build an Ethernet/IPv4/UDP frame with valid checksums."""
    datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                           payload=payload)
    packet = IPv4Packet(src=src_ip, dst=dst_ip, proto=IPPROTO_UDP,
                        payload=datagram.to_bytes(src_ip, dst_ip), ttl=ttl)
    return EthernetFrame(dst=MacAddress(dst_mac), src=MacAddress(src_mac),
                         ethertype=ETHERTYPE_IPV4,
                         payload=packet.to_bytes(), vlan=vlan)


def make_tcp_frame(src_mac: "MacAddress | str", dst_mac: "MacAddress | str",
                   src_ip: str, dst_ip: str, src_port: int, dst_port: int,
                   payload: bytes, seq: int = 0, ack: int = 0,
                   flags: int = 0x18, vlan: Optional[int] = None,
                   ttl: int = 64) -> EthernetFrame:
    """Build an Ethernet/IPv4/TCP frame (default flags PSH|ACK)."""
    segment = TcpSegment(src_port=src_port, dst_port=dst_port, seq=seq,
                         ack=ack, flags=flags, payload=payload)
    packet = IPv4Packet(src=src_ip, dst=dst_ip, proto=IPPROTO_TCP,
                        payload=segment.to_bytes(src_ip, dst_ip), ttl=ttl)
    return EthernetFrame(dst=MacAddress(dst_mac), src=MacAddress(src_mac),
                         ethertype=ETHERTYPE_IPV4,
                         payload=packet.to_bytes(), vlan=vlan)


def parse_frame(frame: "EthernetFrame | bytes") -> ParsedFrame:
    """Decode Ethernet -> IPv4 -> UDP/TCP as deep as the bytes allow.

    Never raises on unknown upper layers: a frame that is not IPv4, or an
    IPv4 packet carrying an unhandled protocol, simply yields a
    :class:`ParsedFrame` with the deeper fields left as None.
    """
    eth = (frame if isinstance(frame, EthernetFrame)
           else EthernetFrame.from_bytes(frame))
    parsed = ParsedFrame(eth=eth)
    if eth.ethertype != ETHERTYPE_IPV4:
        return parsed
    try:
        parsed.ipv4 = IPv4Packet.from_bytes(eth.payload)
    except ValueError:
        return parsed
    if parsed.ipv4.proto == IPPROTO_UDP:
        try:
            parsed.udp = UdpDatagram.from_bytes(parsed.ipv4.payload)
        except ValueError:
            pass
    elif parsed.ipv4.proto == IPPROTO_TCP:
        try:
            parsed.tcp = TcpSegment.from_bytes(parsed.ipv4.payload)
        except ValueError:
            pass
    return parsed
