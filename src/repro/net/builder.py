"""Convenience constructors and a full-stack frame parser.

Traffic generators build frames with ``make_udp_frame``/``make_tcp_frame``;
datapath elements that must inspect L3/L4 (iptables, NAT, the XFRM hook)
use ``parse_frame`` which returns a :class:`ParsedFrame` bundle.

Decoding is *lazy*: a :class:`ParsedFrame` is constructed in O(1) and
each layer is decoded at most once, on first access.  A switch chain
that only matches on L2 fields therefore never pays for the IPv4/L4
decode, while a table with IP or port matches decodes each frame exactly
once no matter how many entries inspect it.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress, ip_to_int
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.transport import TcpSegment, UdpDatagram

__all__ = ["ParsedFrame", "make_tcp_frame", "make_udp_frame", "parse_frame"]


class ParsedFrame:
    """Lazily decoded view of a frame; deeper layers are None when absent.

    ``eth`` is always present; ``ipv4``/``udp``/``tcp`` decode on first
    access and are cached.  ``ip_ints`` exposes the addresses as 32-bit
    ints for the flow-table fast path (computed once per frame).
    """

    __slots__ = ("eth", "_ipv4", "_udp", "_tcp",
                 "_l3_done", "_l4_done", "_ip_ints", "_wire_len")

    def __init__(self, eth: EthernetFrame,
                 ipv4: Optional[IPv4Packet] = None,
                 udp: Optional[UdpDatagram] = None,
                 tcp: Optional[TcpSegment] = None) -> None:
        self.eth = eth
        self._ipv4 = ipv4
        self._udp = udp
        self._tcp = tcp
        # Explicitly supplied layers pin the decode (legacy constructor
        # semantics: the bundle holds exactly the layers passed, so an
        # ipv4 without udp/tcp means "no L4 view", not "decode later").
        self._l3_done = ipv4 is not None
        self._l4_done = ipv4 is not None or udp is not None \
            or tcp is not None
        self._ip_ints: Optional[tuple[int, int]] = None
        self._wire_len: Optional[int] = None

    # -- lazy decode -------------------------------------------------------
    @property
    def ipv4(self) -> Optional[IPv4Packet]:
        if not self._l3_done:
            self._l3_done = True
            if self.eth.ethertype == ETHERTYPE_IPV4:
                try:
                    self._ipv4 = IPv4Packet.from_bytes(self.eth.payload)
                except ValueError:
                    pass
        return self._ipv4

    @ipv4.setter
    def ipv4(self, value: Optional[IPv4Packet]) -> None:
        """Replace the L3 view (NAT-style rewrite); every derived view —
        address ints and the L4 decode — follows the new header."""
        self._ipv4 = value
        self._l3_done = True
        self._ip_ints = None
        self._udp = None
        self._tcp = None
        self._l4_done = False

    @property
    def udp(self) -> Optional[UdpDatagram]:
        self._decode_l4()
        return self._udp

    @udp.setter
    def udp(self, value: Optional[UdpDatagram]) -> None:
        self._udp = value
        self._l4_done = True

    @property
    def tcp(self) -> Optional[TcpSegment]:
        self._decode_l4()
        return self._tcp

    @tcp.setter
    def tcp(self, value: Optional[TcpSegment]) -> None:
        self._tcp = value
        self._l4_done = True

    def _decode_l4(self) -> None:
        if self._l4_done:
            return
        self._l4_done = True
        packet = self.ipv4
        if packet is None:
            return
        if packet.proto == IPPROTO_UDP:
            try:
                self._udp = UdpDatagram.from_bytes(packet.payload)
            except ValueError:
                pass
        elif packet.proto == IPPROTO_TCP:
            try:
                self._tcp = TcpSegment.from_bytes(packet.payload)
            except ValueError:
                pass

    # -- hot-path views ----------------------------------------------------
    @property
    def ip_ints(self) -> Optional[tuple[int, int]]:
        """(src_int, dst_int) of the IPv4 header, or None; cached."""
        ints = self._ip_ints
        if ints is None:
            packet = self.ipv4
            if packet is None:
                return None
            ints = (ip_to_int(packet.src), ip_to_int(packet.dst))
            self._ip_ints = ints
        return ints

    @property
    def wire_len(self) -> int:
        """On-wire frame length in bytes; computed once per frame.

        Byte counters (flow entries, switch ports) are written on every
        matched frame, so the length sum behind them is cached here
        rather than re-derived from the header layout each time.
        """
        size = self._wire_len
        if size is None:
            size = self._wire_len = len(self.eth)
        return size

    def derive(self, eth: EthernetFrame) -> "ParsedFrame":
        """A view of ``eth``, reusing every decode of this frame that is
        still valid.

        This is the zero-reparse primitive of the batched pipeline: when
        an action rewrites a frame, the switch derives the new frame's
        parse from the old one instead of starting over.  The L3/L4
        decode (and the cached ``ip_ints``) carries over only when the
        rewrite provably left the payload alone — same payload *object*
        and same ethertype.  Every supported switch action (VLAN
        push/pop, eth/VLAN set-field) rewrites L2 via ``replace`` and
        shares the payload bytes, so chains never re-decode IPv4/L4; a
        rewrite that swapped the payload gets a clean (dirty) parse.
        ``wire_len`` is never carried — tags change the frame length.
        """
        new = ParsedFrame(eth)
        old = self.eth
        if eth.payload is old.payload and eth.ethertype == old.ethertype:
            new._ipv4 = self._ipv4
            new._udp = self._udp
            new._tcp = self._tcp
            new._l3_done = self._l3_done
            new._l4_done = self._l4_done
            new._ip_ints = self._ip_ints
        return new

    @property
    def five_tuple(self) -> Optional[tuple[str, str, int, int, int]]:
        """(src_ip, dst_ip, proto, src_port, dst_port) or None."""
        if self.ipv4 is None:
            return None
        if self.udp is not None:
            return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto,
                    self.udp.src_port, self.udp.dst_port)
        if self.tcp is not None:
            return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto,
                    self.tcp.src_port, self.tcp.dst_port)
        return (self.ipv4.src, self.ipv4.dst, self.ipv4.proto, 0, 0)

    def __repr__(self) -> str:
        layers = ["eth"]
        if self._l3_done and self._ipv4 is not None:
            layers.append("ipv4")
        if self._l4_done and self._udp is not None:
            layers.append("udp")
        if self._l4_done and self._tcp is not None:
            layers.append("tcp")
        return f"<ParsedFrame {'/'.join(layers)} {self.eth!r}>"


def make_udp_frame(src_mac: "MacAddress | str", dst_mac: "MacAddress | str",
                   src_ip: str, dst_ip: str, src_port: int, dst_port: int,
                   payload: bytes, vlan: Optional[int] = None,
                   ttl: int = 64) -> EthernetFrame:
    """Build an Ethernet/IPv4/UDP frame with valid checksums."""
    datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                           payload=payload)
    packet = IPv4Packet(src=src_ip, dst=dst_ip, proto=IPPROTO_UDP,
                        payload=datagram.to_bytes(src_ip, dst_ip), ttl=ttl)
    return EthernetFrame(dst=MacAddress(dst_mac), src=MacAddress(src_mac),
                         ethertype=ETHERTYPE_IPV4,
                         payload=packet.to_bytes(), vlan=vlan)


def make_tcp_frame(src_mac: "MacAddress | str", dst_mac: "MacAddress | str",
                   src_ip: str, dst_ip: str, src_port: int, dst_port: int,
                   payload: bytes, seq: int = 0, ack: int = 0,
                   flags: int = 0x18, vlan: Optional[int] = None,
                   ttl: int = 64) -> EthernetFrame:
    """Build an Ethernet/IPv4/TCP frame (default flags PSH|ACK)."""
    segment = TcpSegment(src_port=src_port, dst_port=dst_port, seq=seq,
                         ack=ack, flags=flags, payload=payload)
    packet = IPv4Packet(src=src_ip, dst=dst_ip, proto=IPPROTO_TCP,
                        payload=segment.to_bytes(src_ip, dst_ip), ttl=ttl)
    return EthernetFrame(dst=MacAddress(dst_mac), src=MacAddress(src_mac),
                         ethertype=ETHERTYPE_IPV4,
                         payload=packet.to_bytes(), vlan=vlan)


def parse_frame(frame: "EthernetFrame | bytes") -> ParsedFrame:
    """Decode Ethernet eagerly; IPv4 and UDP/TCP decode lazily on access.

    Never raises on unknown upper layers: a frame that is not IPv4, or an
    IPv4 packet carrying an unhandled protocol, simply yields a
    :class:`ParsedFrame` with the deeper fields left as None.
    """
    eth = (frame if isinstance(frame, EthernetFrame)
           else EthernetFrame.from_bytes(frame))
    return ParsedFrame(eth=eth)
