"""Packet model with real byte-level codecs.

Frames that traverse the simulated dataplane are real protocol byte
strings: Ethernet II (optionally 802.1Q tagged), IPv4, UDP/TCP and ESP.
Keeping the wire format honest lets the NNF plugins (iptables, the
strongSwan XFRM path, the adaptation layer's VLAN marking) operate on
actual header fields, so correctness tests exercise genuine parsing
and rewriting instead of attribute bookkeeping.
"""

from repro.net.addresses import MacAddress, ip_to_int, int_to_ip, parse_cidr
from repro.net.checksum import internet_checksum
from repro.net.ethernet import (
    ETH_HEADER_LEN,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    EthernetFrame,
)
from repro.net.ipv4 import (
    IPPROTO_ESP,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Packet,
)
from repro.net.transport import TcpSegment, UdpDatagram
from repro.net.builder import (
    ParsedFrame,
    make_tcp_frame,
    make_udp_frame,
    parse_frame,
)

__all__ = [
    "ETH_HEADER_LEN",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "EthernetFrame",
    "IPPROTO_ESP",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPv4Packet",
    "MacAddress",
    "ParsedFrame",
    "TcpSegment",
    "UdpDatagram",
    "internet_checksum",
    "int_to_ip",
    "ip_to_int",
    "make_tcp_frame",
    "make_udp_frame",
    "parse_cidr",
    "parse_frame",
]
