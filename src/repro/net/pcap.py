"""Minimal libpcap-format reader/writer.

The CLI and examples can dump simulated traffic to ``.pcap`` files that
open in Wireshark, which is the traditional way to debug an NFV
dataplane; tests use the round-trip to validate the codec.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator

__all__ = ["PcapReader", "PcapWriter"]

_MAGIC = 0xA1B2C3D4  # microsecond-resolution, native byte order written big
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("!IHHiIII")
_RECORD_HEADER = struct.Struct("!IIII")


class PcapWriter:
    """Writes Ethernet frames with simulated timestamps."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self._stream = stream
        self._stream.write(_GLOBAL_HEADER.pack(
            _MAGIC, 2, 4, 0, 0, snaplen, _LINKTYPE_ETHERNET))

    def write(self, timestamp: float, frame_bytes: bytes) -> None:
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        self._stream.write(_RECORD_HEADER.pack(
            seconds, micros, len(frame_bytes), len(frame_bytes)))
        self._stream.write(frame_bytes)


class PcapReader:
    """Iterates ``(timestamp, frame_bytes)`` records."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError("truncated pcap global header")
        magic = struct.unpack("!I", header[:4])[0]
        if magic != _MAGIC:
            raise ValueError(f"unsupported pcap magic: {magic:#x}")
        fields = _GLOBAL_HEADER.unpack(header)
        if fields[6] != _LINKTYPE_ETHERNET:
            raise ValueError(f"unsupported linktype: {fields[6]}")

    def __iter__(self) -> Iterator[tuple[float, bytes]]:
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                raise ValueError("truncated pcap record header")
            seconds, micros, caplen, _origlen = _RECORD_HEADER.unpack(header)
            data = self._stream.read(caplen)
            if len(data) < caplen:
                raise ValueError("truncated pcap record body")
            yield seconds + micros / 1_000_000, data
