"""Measurement helpers: counters, rate meters, time-weighted statistics.

The benchmark harness samples these to build the throughput / RAM rows
of the paper's Table 1 and the scaling curves of the ablation benches.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Simulator

__all__ = ["Counter", "RateMeter", "TimeWeightedStat", "WelfordStat"]


class Counter:
    """Monotonic event/byte counter with window deltas."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.total = 0
        self._mark = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a separate counter")
        self.total += amount

    def mark(self) -> int:
        """Return the delta since the previous mark and reset the window."""
        delta = self.total - self._mark
        self._mark = self.total
        return delta


class RateMeter:
    """Bits/second meter over the simulated clock.

    ``record(nbytes)`` accumulates payload; ``rate_bps`` divides by the
    elapsed simulated time since construction or the last ``reset``.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._bytes = 0
        self._packets = 0
        self._start = sim.now

    def record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot record negative bytes")
        self._bytes += nbytes
        self._packets += 1

    def reset(self) -> None:
        self._bytes = 0
        self._packets = 0
        self._start = self.sim.now

    @property
    def bytes_total(self) -> int:
        return self._bytes

    @property
    def packets_total(self) -> int:
        return self._packets

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._start

    @property
    def rate_bps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self._bytes * 8.0 / self.elapsed

    @property
    def rate_pps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self._packets / self.elapsed


class TimeWeightedStat:
    """Time-weighted mean/max of a piecewise-constant signal.

    Used for queue occupancy and allocated-RAM curves: the value between
    two updates is weighted by the simulated time it persisted.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0) -> None:
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._area = 0.0
        self._start = sim.now
        self._max = initial
        self._min = initial

    def update(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now
        self._max = max(self._max, value)
        self._min = min(self._min, value)

    @property
    def current(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def mean(self) -> float:
        now = self.sim.now
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / span


class WelfordStat:
    """Streaming mean/variance (Welford), for latency samples."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, sample: float) -> None:
        self.n += 1
        delta = sample - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (sample - self._mean)
        self._min = sample if self._min is None else min(self._min, sample)
        self._max = sample if self._max is None else max(self._max, sample)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0
