"""Discrete-event simulation engine.

Every dynamic component of the reproduced NFV compute node (switch
datapaths, network-function processes, traffic generators) runs as a
process on this engine.  The engine is a classic event-wheel design:

* :class:`~repro.sim.engine.Simulator` owns a priority queue of timed
  events and a monotonically advancing virtual clock.
* Processes are plain Python generators that ``yield`` simulation
  primitives (:class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Event`, ...), in the style popularised by
  SimPy, but implemented from scratch so the repository has no runtime
  dependencies.
* :mod:`repro.sim.stats` provides time-weighted counters used by the
  measurement harness.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.stats import Counter, RateMeter, TimeWeightedStat

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Event",
    "Interrupt",
    "Process",
    "RateMeter",
    "Resource",
    "Simulator",
    "Store",
    "TimeWeightedStat",
    "Timeout",
]
