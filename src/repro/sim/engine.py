"""Core event loop of the discrete-event simulator.

The design follows the classic process-interaction style: the simulator
keeps a heap of ``(time, priority, sequence, event)`` tuples and fires
event callbacks in order.  A :class:`Process` wraps a generator; every
value the generator yields must be an :class:`Event` (or subclass), and
the process resumes when that event fires.

Time is a ``float`` in **seconds**.  All components of the reproduction
use SI units (seconds, bytes, bits/second) to avoid unit bugs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for invalid simulator usage (e.g. double-firing an event)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Events move through three states: *pending* (created), *triggered*
    (scheduled on the event heap) and *fired* (callbacks executed).
    ``succeed`` and ``fail`` trigger the event immediately; waiting on a
    failed event re-raises its exception inside the waiting process.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._fired = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def ok(self) -> bool:
        """True when the event fired without an exception."""
        return self._fired and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before it was triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self

    # -- internal --------------------------------------------------------
    def _fire(self) -> None:
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._triggered = True
        sim._schedule(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping each fired event to its value (at least
    one entry; more if several events fire at the same instant before the
    callback runs).
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.fired:
                self._collect(event)
            else:
                event.callbacks.append(self._collect)

    def _collect(self, _event: Event) -> None:
        if self._triggered:
            return
        done = {}
        failure: Optional[BaseException] = None
        for event in self.events:
            if event.fired:
                if event._exception is not None:
                    failure = event._exception
                    break
                done[event] = event._value
        if failure is not None:
            self.fail(failure)
        elif done:
            self.succeed(done)


class AllOf(Event):
    """Fires when every one of several events has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed({})
            return
        for event in self.events:
            if event.fired:
                self._collect(event)
            else:
                event.callbacks.append(self._collect)

    def _collect(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({ev: ev._value for ev in self.events})


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator yields events; the process sleeps until the yielded
    event fires, then resumes with the event's value (or the event's
    exception thrown into it).
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got "
                            f"{type(generator).__name__}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at the current instant.
        bootstrap = Timeout(sim, 0.0)
        bootstrap.callbacks.append(self._resume)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is not None:
            target = self._waiting_on
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        poke = Event(self.sim)
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                next_event = self.generator.throw(event._exception)
            else:
                next_event = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An uncaught interrupt terminates the process "successfully"
            # with the interrupt cause, mirroring cooperative cancellation.
            self.succeed(interrupt.cause)
            return
        if not isinstance(next_event, Event):
            self.generator.throw(TypeError(
                f"process {self.name!r} yielded non-event "
                f"{next_event!r}"))
            return
        if next_event.fired:
            # Already fired: resume on the next scheduling round to keep
            # FIFO fairness between same-instant processes.
            poke = Event(self.sim)
            poke.callbacks.append(self._resume)
            if next_event._exception is not None:
                poke.fail(next_event._exception)
            else:
                poke.succeed(next_event._value)
            self._waiting_on = poke
        else:
            next_event.callbacks.append(self._resume)
            self._waiting_on = next_event


class Simulator:
    """Event-wheel simulator with a virtual clock in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._stopped = False

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- factories -------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._sequence), event))

    def stop(self) -> None:
        """Abort :meth:`run` at the current instant."""
        self._stopped = True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Fire the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._fire()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or the clock passes ``until``.

        Returns the simulation time at which the run stopped.  With an
        ``until`` bound the clock is advanced exactly to the bound even
        when the last event fires earlier, so back-to-back measurement
        windows tile without gaps.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"until={until!r} is in the past (now={self._now!r})")
        self._stopped = False
        while self._heap and not self._stopped:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return self._now
            self.step()
        if until is not None and not self._stopped:
            self._now = until
        return self._now

    def run_until_fired(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; returns its value.

        Raises :class:`SimulationError` when the heap drains or the time
        limit passes without the event firing (deadlock guard for tests).
        """
        while not event.fired:
            if not self._heap:
                raise SimulationError(
                    "simulation ran out of events before target fired")
            if self.peek() > limit:
                raise SimulationError(
                    f"target event did not fire before t={limit}")
            self.step()
        return event.value
