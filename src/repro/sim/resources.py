"""Shared-resource primitives built on the event engine.

Three classics, modelled after the SimPy API surface the rest of the
code base needs:

* :class:`Resource` — capacity-limited server (e.g. a CPU core pool);
  processes ``yield resource.request()`` and later call ``release``.
* :class:`Container` — continuous stock (e.g. bytes of RAM);
  ``put``/``get`` block until the amount fits.
* :class:`Store` — FIFO of Python objects (e.g. a packet queue between
  a switch port and an NF process), optionally bounded.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Container", "Request", "Resource", "Store"]


class Request(Event):
    """Pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """Counted resource with FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        request = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(request)
        else:
            self.queue.append(request)
        return request

    def release(self, request: Request) -> None:
        if request not in self.users:
            raise SimulationError("releasing a request that holds no slot")
        self.users.remove(request)
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt)


class Container:
    """Continuous stock with blocking put/get."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: Deque[tuple[float, Event]] = deque()
        self._putters: Deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("put amount must be positive")
        if amount > self.capacity:
            raise ValueError("put amount exceeds container capacity")
        event = Event(self.sim)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("get amount must be positive")
        if amount > self.capacity:
            raise ValueError("get amount exceeds container capacity")
        event = Event(self.sim)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """FIFO object queue with optional capacity bound.

    ``put`` on a full store blocks the putter; ``get`` on an empty store
    blocks the getter — exactly the backpressure semantics a bounded
    packet queue needs.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (drop) when the store is full."""
        if len(self.items) >= self.capacity:
            return False
        self.put(item)
        return True

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                item, event = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True
