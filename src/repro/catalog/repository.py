"""The VNF repository: template catalogue keyed by functional type."""

from __future__ import annotations

from typing import Optional

from repro.catalog.templates import (
    NfImplementation,
    NfTemplate,
    Technology,
)

__all__ = ["VnfRepository"]


class VnfRepository:
    """Template store with a pre-populated ``stock()`` variant."""

    def __init__(self) -> None:
        self._templates: dict[str, NfTemplate] = {}

    def register(self, template: NfTemplate) -> None:
        if template.name in self._templates:
            raise ValueError(f"template {template.name!r} already registered")
        self._templates[template.name] = template

    def get(self, name: str) -> NfTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise KeyError(f"no template {name!r} in repository") from None

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def names(self) -> list[str]:
        return sorted(self._templates)

    def by_functional_type(self, functional_type: str) -> list[NfTemplate]:
        return [template for template in self._templates.values()
                if template.functional_type == functional_type]

    @staticmethod
    def stock() -> "VnfRepository":
        """Templates for the NFs the paper's scenarios use.

        Resource figures mirror Table 1 where the paper reports them
        (strongSwan RAM per flavor) and typical 2016 values elsewhere.
        """
        repo = VnfRepository()
        repo.register(NfTemplate(
            name="ipsec-endpoint",
            functional_type="ipsec-endpoint",
            ports=("lan", "wan"),
            proximity="cpe",
            implementations=(
                NfImplementation(
                    technology=Technology.VM, image="strongswan-vm",
                    cpu_cores=1.0, ram_mb=390.6, disk_mb=522.0,
                    # The paper: IPsec "executing in user space (i.e., in
                    # the process, within the hypervisor, running the VM)".
                    uses_kernel_datapath=False),
                NfImplementation(
                    technology=Technology.DOCKER, image="strongswan-docker",
                    cpu_cores=0.5, ram_mb=24.2, disk_mb=240.0),
                NfImplementation(
                    technology=Technology.NATIVE, image="strongswan-native",
                    cpu_cores=0.3, ram_mb=19.4, disk_mb=5.0,
                    plugin="strongswan"),
            )))
        repo.register(NfTemplate(
            name="nat",
            functional_type="nat",
            ports=("lan", "wan"),
            proximity="cpe",
            implementations=(
                NfImplementation(
                    technology=Technology.VM, image="generic-nf-vm",
                    cpu_cores=1.0, ram_mb=320.0, disk_mb=510.0,
                    uses_kernel_datapath=False),
                NfImplementation(
                    technology=Technology.DOCKER, image="generic-nf-docker",
                    cpu_cores=0.4, ram_mb=18.0, disk_mb=253.0),
                NfImplementation(
                    technology=Technology.NATIVE, image="iptables-native",
                    cpu_cores=0.1, ram_mb=2.5, disk_mb=0.3,
                    plugin="iptables-nat"),
            )))
        repo.register(NfTemplate(
            name="firewall",
            functional_type="firewall",
            ports=("lan", "wan"),
            implementations=(
                NfImplementation(
                    technology=Technology.VM, image="generic-nf-vm",
                    cpu_cores=1.0, ram_mb=320.0, disk_mb=510.0,
                    uses_kernel_datapath=False),
                NfImplementation(
                    technology=Technology.DOCKER, image="generic-nf-docker",
                    cpu_cores=0.4, ram_mb=16.0, disk_mb=253.0),
                NfImplementation(
                    technology=Technology.NATIVE, image="iptables-native",
                    cpu_cores=0.1, ram_mb=2.5, disk_mb=0.3,
                    plugin="iptables-firewall"),
            )))
        repo.register(NfTemplate(
            name="bridge",
            functional_type="bridge",
            ports=("p0", "p1"),
            implementations=(
                NfImplementation(
                    technology=Technology.DOCKER, image="generic-nf-docker",
                    cpu_cores=0.3, ram_mb=14.0, disk_mb=253.0),
                NfImplementation(
                    technology=Technology.NATIVE,
                    image="linuxbridge-native",
                    cpu_cores=0.05, ram_mb=1.0, disk_mb=0.1,
                    plugin="linuxbridge"),
            )))
        repo.register(NfTemplate(
            name="dhcp-server",
            functional_type="dhcp-server",
            ports=("lan",),
            proximity="cpe",
            implementations=(
                NfImplementation(
                    technology=Technology.DOCKER, image="generic-nf-docker",
                    cpu_cores=0.2, ram_mb=12.0, disk_mb=253.0),
                NfImplementation(
                    technology=Technology.NATIVE, image="dnsmasq-native",
                    cpu_cores=0.05, ram_mb=1.8, disk_mb=0.4,
                    plugin="dnsmasq"),
            )))
        repo.register(NfTemplate(
            name="dpi",
            functional_type="dpi",
            ports=("in", "out"),
            implementations=(
                NfImplementation(
                    technology=Technology.VM, image="generic-nf-vm",
                    cpu_cores=4.0, ram_mb=2048.0, disk_mb=530.0,
                    uses_kernel_datapath=False),
                NfImplementation(
                    technology=Technology.DOCKER, image="dpi-docker",
                    cpu_cores=2.0, ram_mb=512.0, disk_mb=285.0,
                    uses_kernel_datapath=False),
            )))
        repo.register(NfTemplate(
            name="l2-forwarder-dpdk",
            functional_type="l2-forwarder",
            ports=("in", "out"),
            implementations=(
                NfImplementation(
                    technology=Technology.DPDK, image="dpdk-fwd-vm",
                    cpu_cores=1.0, ram_mb=1024.0, disk_mb=568.0,
                    extra_features=frozenset({"hugepages"}),
                    uses_kernel_datapath=False),
                NfImplementation(
                    technology=Technology.DOCKER, image="generic-nf-docker",
                    cpu_cores=0.5, ram_mb=64.0, disk_mb=253.0),
            )))
        return repo
