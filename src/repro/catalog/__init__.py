"""NF catalogue: templates, repository, resolver and multi-node scheduler.

Figure 1's "VNF repository" + "VNF resolver" + "VNF scheduler".  A
*template* describes one network function abstractly (its functional
type and ports); each template carries one *implementation* per
packaging technology (VM / Docker / DPDK / native), with its image,
resource demand and requirements.  The resolver picks an implementation
for a specific node; the scheduler places the NFs of a graph across a
multi-node infrastructure (CPE + data center).
"""

from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import ResolutionError, ResolutionPolicy, VnfResolver
from repro.catalog.scheduler import PlacementError, VnfScheduler
from repro.catalog.templates import (
    NfImplementation,
    NfTemplate,
    Technology,
)

__all__ = [
    "NfImplementation",
    "NfTemplate",
    "PlacementError",
    "ResolutionError",
    "ResolutionPolicy",
    "Technology",
    "VnfRepository",
    "VnfResolver",
    "VnfScheduler",
]
