"""The VNF resolver: pick an implementation for a node.

This encodes the paper's core orchestration decision: "For each NF in a
NF-FG, the orchestrator decides whether to deploy it as VNF or NNF
based on its knowledge of the node capability set, the available NNFs
and their characteristics (e.g., whether they are sharable), and their
status (e.g., already used in another chain)."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.catalog.templates import NfImplementation, NfTemplate, Technology
from repro.resources.capabilities import NodeCapabilities

__all__ = ["NnfAvailability", "ResolutionError", "ResolutionPolicy",
           "VnfResolver"]


class ResolutionError(Exception):
    """No implementation of the template can run on this node."""


class ResolutionPolicy(Enum):
    """Tie-breaking preference among feasible implementations."""

    PREFER_NATIVE = "prefer-native"    # paper default on the CPE
    PREFER_VM = "prefer-vm"            # classic data-center NFV
    MIN_RAM = "min-ram"
    MIN_IMAGE = "min-image"

    def sort_key(self) -> Callable[[NfImplementation], tuple]:
        tech_rank_native_first = {
            Technology.NATIVE: 0, Technology.DOCKER: 1,
            Technology.DPDK: 2, Technology.VM: 3,
        }
        tech_rank_vm_first = {
            Technology.VM: 0, Technology.DPDK: 1,
            Technology.DOCKER: 2, Technology.NATIVE: 3,
        }
        if self is ResolutionPolicy.PREFER_NATIVE:
            return lambda impl: (tech_rank_native_first[impl.technology],
                                 impl.ram_mb)
        if self is ResolutionPolicy.PREFER_VM:
            return lambda impl: (tech_rank_vm_first[impl.technology],
                                 impl.ram_mb)
        if self is ResolutionPolicy.MIN_RAM:
            return lambda impl: (impl.ram_mb, impl.disk_mb)
        return lambda impl: (impl.disk_mb, impl.ram_mb)


@dataclass
class NnfAvailability:
    """Status the resolver needs about one NNF plugin on this node.

    ``installed`` — the host component exists (e.g. iptables binary);
    ``sharable`` — supports the marking mechanism of paper §2;
    ``busy`` — a non-sharable NNF already claimed by another graph.
    """

    installed: bool = True
    sharable: bool = False
    busy: bool = False

    @property
    def usable(self) -> bool:
        return self.installed and (self.sharable or not self.busy)


NnfStatusFn = Callable[[str], NnfAvailability]


class VnfResolver:
    """Chooses an :class:`NfImplementation` for one node."""

    def __init__(self, capabilities: NodeCapabilities,
                 nnf_status: Optional[NnfStatusFn] = None,
                 policy: ResolutionPolicy = ResolutionPolicy.PREFER_NATIVE):
        self.capabilities = capabilities
        self.nnf_status = nnf_status or (lambda plugin: NnfAvailability())
        self.policy = policy
        self.resolutions = 0
        self.fallbacks = 0  # native wanted but unusable -> other technology

    def feasible(self, impl: NfImplementation) -> bool:
        """Capability + NNF-status feasibility (not resource admission —
        that is the resource manager's call at deploy time)."""
        if not self.capabilities.supports_all(impl.required_features):
            return False
        if impl.technology is Technology.NATIVE:
            status = self.nnf_status(impl.plugin)
            return status.usable
        return True

    def resolve(self, template: NfTemplate,
                forced: Optional[Technology] = None) -> NfImplementation:
        """Pick the implementation; honours an explicit technology pin."""
        self.resolutions += 1
        if forced is not None:
            impl = template.implementation_for(forced)
            if impl is None:
                raise ResolutionError(
                    f"{template.name}: no {forced.value} implementation")
            if not self.feasible(impl):
                raise ResolutionError(
                    f"{template.name}: {forced.value} implementation not "
                    f"runnable on this node")
            return impl
        candidates = [impl for impl in template.implementations
                      if self.feasible(impl)]
        if not candidates:
            raise ResolutionError(
                f"{template.name}: no feasible implementation on node "
                f"(features={sorted(self.capabilities.features)})")
        choice = sorted(candidates, key=self.policy.sort_key())[0]
        native = template.implementation_for(Technology.NATIVE)
        if (self.policy is ResolutionPolicy.PREFER_NATIVE
                and native is not None
                and choice.technology is not Technology.NATIVE):
            self.fallbacks += 1
        return choice
