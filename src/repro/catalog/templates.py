"""NF templates and per-technology implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["NfImplementation", "NfTemplate", "Technology"]


class Technology(Enum):
    """Packaging/execution technology of one NF implementation."""

    VM = "vm"
    DOCKER = "docker"
    DPDK = "dpdk"
    NATIVE = "native"

    @property
    def required_feature(self) -> str:
        """Node feature the technology needs (cf. NodeCapabilities)."""
        return {
            Technology.VM: "kvm",
            Technology.DOCKER: "docker",
            Technology.DPDK: "dpdk",
            Technology.NATIVE: "native",
        }[self]


@dataclass(frozen=True)
class NfImplementation:
    """One way to run an NF.

    ``image`` names an entry in the :class:`ImageRegistry`.  For native
    implementations ``plugin`` names the NNF plugin that drives the
    host component.  ``uses_kernel_datapath`` records whether per-packet
    work happens in the (host or guest) kernel — the property Table 1's
    throughput column turns on.
    """

    technology: Technology
    image: str
    cpu_cores: float
    ram_mb: float
    disk_mb: float
    plugin: Optional[str] = None
    uses_kernel_datapath: bool = True
    extra_features: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.technology is Technology.NATIVE and self.plugin is None:
            raise ValueError("native implementations must name a plugin")
        if self.cpu_cores < 0 or self.ram_mb < 0 or self.disk_mb < 0:
            raise ValueError("resource demands cannot be negative")

    @property
    def required_features(self) -> frozenset[str]:
        return self.extra_features | {self.technology.required_feature}


@dataclass
class NfTemplate:
    """Abstract network function: functional type, ports, implementations."""

    name: str
    functional_type: str          # e.g. "ipsec-endpoint", "nat", "firewall"
    ports: tuple[str, ...]        # logical port names, e.g. ("lan", "wan")
    implementations: tuple[NfImplementation, ...]
    proximity: Optional[str] = None   # "cpe" pins the NF near the user

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError(f"template {self.name} declares no ports")
        if not self.implementations:
            raise ValueError(f"template {self.name} has no implementations")
        techs = [impl.technology for impl in self.implementations]
        if len(set(techs)) != len(techs):
            raise ValueError(
                f"template {self.name} has duplicate technologies")

    def implementation_for(
            self, technology: Technology) -> Optional[NfImplementation]:
        for impl in self.implementations:
            if impl.technology is technology:
                return impl
        return None

    @property
    def technologies(self) -> set[Technology]:
        return {impl.technology for impl in self.implementations}
