"""Multi-node VNF scheduler: split an NF-FG across CPE and data center.

The paper's introduction motivates exactly this: "while resource-hungry
VNFs are run in the NSP data center, simpler ones are run in the CPE,
possibly as NNFs".  The scheduler assigns each NF of a graph to a node,
respecting proximity pins (NFs that must sit near the user), feature
requirements and resource fit, and preferring the cheapest feasible
placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.resolver import ResolutionError, VnfResolver
from repro.catalog.templates import NfImplementation, NfTemplate, Technology
from repro.resources.capabilities import NodeCapabilities, NodeClass

__all__ = ["NodeDescriptor", "Placement", "PlacementError", "VnfScheduler"]


class PlacementError(Exception):
    """The graph cannot be mapped onto the available nodes."""


@dataclass
class NodeDescriptor:
    """One schedulable node: capabilities, resolver and live headroom."""

    name: str
    capabilities: NodeCapabilities
    resolver: VnfResolver
    cpu_free: float = field(init=False)
    ram_free_mb: float = field(init=False)

    def __post_init__(self) -> None:
        self.cpu_free = float(self.capabilities.cpu_cores)
        self.ram_free_mb = float(self.capabilities.ram_mb)

    def can_host(self, impl: NfImplementation) -> bool:
        return (self.cpu_free >= impl.cpu_cores
                and self.ram_free_mb >= impl.ram_mb)

    def reserve(self, impl: NfImplementation) -> None:
        self.cpu_free -= impl.cpu_cores
        self.ram_free_mb -= impl.ram_mb


@dataclass(frozen=True)
class Placement:
    """Final decision for one NF."""

    nf_name: str
    node: str
    implementation: NfImplementation

    @property
    def is_native(self) -> bool:
        return self.implementation.technology is Technology.NATIVE


class VnfScheduler:
    """Greedy scheduler with proximity and latency-cost preferences.

    Cost model: placing an NF on the CPE is free in WAN bandwidth but
    consumes scarce CPE resources; placement in the data center incurs a
    hairpin penalty.  The greedy order places pinned NFs first, then the
    most resource-hungry ones, which keeps the CPE available for the NFs
    that *must* live there.
    """

    def __init__(self, nodes: list[NodeDescriptor]) -> None:
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self.nodes = {node.name: node for node in nodes}

    def _candidates(self, template: NfTemplate) -> list[NodeDescriptor]:
        # Proximity is a soft pin: CPE nodes are tried first for
        # user-proximate NFs, but an edge that cannot host the NF at
        # all (e.g. no KVM, no native component) falls back to the data
        # center rather than failing the whole service.  Unpinned NFs
        # also prefer the CPE (no WAN hairpin) when they fit.
        return sorted(
            self.nodes.values(),
            key=lambda node: 0
            if node.capabilities.node_class is NodeClass.CPE else 1)

    def schedule(self, templates: list[NfTemplate]) -> list[Placement]:
        """Place every template; raises :class:`PlacementError` if any
        NF cannot be hosted anywhere."""
        placements: list[Placement] = []
        # Pinned NFs first; then big ones (best-fit-decreasing flavour).
        def order(template: NfTemplate) -> tuple:
            pinned = 0 if template.proximity == "cpe" else 1
            smallest = min(impl.ram_mb for impl in template.implementations)
            return (pinned, -smallest)

        for template in sorted(templates, key=order):
            placed = self._place_one(template)
            if placed is None:
                raise PlacementError(
                    f"NF {template.name!r} cannot be placed on any node")
            placements.append(placed)
        by_name = {template.name: index
                   for index, template in enumerate(templates)}
        placements.sort(key=lambda p: by_name[p.nf_name])
        return placements

    def _place_one(self, template: NfTemplate) -> Optional[Placement]:
        for node in self._candidates(template):
            try:
                impl = node.resolver.resolve(template)
            except ResolutionError:
                continue
            if not node.can_host(impl):
                # The preferred implementation does not fit; try the
                # smallest feasible one before giving up on the node.
                feasible = [i for i in template.implementations
                            if node.resolver.feasible(i)
                            and node.can_host(i)]
                if not feasible:
                    continue
                impl = sorted(feasible, key=lambda i: i.ram_mb)[0]
            node.reserve(impl)
            return Placement(nf_name=template.name, node=node.name,
                             implementation=impl)
        return None
