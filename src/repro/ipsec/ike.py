"""A minimal IKE-style key exchange over the simulated dataplane.

The strongSwan *plugin* installs SAs derived directly from the PSK so
deployments are synchronous (DESIGN.md §2).  This module implements the
dynamic alternative the real daemon uses: a two-message nonce exchange
on UDP/500 that derives fresh SA material per negotiation and installs
it into the namespace's XFRM database.  It exists to exercise the
control-plane path end to end (daemon sockets, UDP delivery through
LSIs, rekeying) and is used by the rekey tests and the API directly.

Wire format (UDP payload)::

    IKE_INIT:  "INIT"  | spi_i (8 hex) | nonce_i (32 hex)
    IKE_RESP:  "RESP"  | spi_i (8 hex) | spi_r (8 hex) | nonce_r (32 hex)

Security notice: this is a *protocol-shaped* stand-in (no DH, no
authentication beyond the PSK-derived keys); see the crypto module's
substitution note.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ipsec.crypto import derive_keys
from repro.ipsec.sa import SecurityAssociation, SpiAllocator
from repro.linuxnet.namespace import NetworkNamespace
from repro.linuxnet.xfrm import Selector, XfrmDirection, XfrmPolicy, XfrmState
from repro.net.ipv4 import IPv4Packet
from repro.net.transport import UdpDatagram

__all__ = ["IkeDaemon", "IkeError"]

IKE_PORT = 500
_NONCE_LEN = 16  # bytes


class IkeError(Exception):
    """Negotiation failure (bad message, unknown peer, no proposal)."""


@dataclass
class _Negotiation:
    peer: str
    local_spi: int
    nonce: bytes
    established: bool = False


class IkeDaemon:
    """One IKE endpoint bound to UDP/500 inside a namespace.

    Usage::

        left = IkeDaemon(ns_left, local="203.0.113.1", psk=b"s3cret",
                         local_subnet="192.168.100.0/24",
                         remote_subnet="192.168.200.0/24")
        right = IkeDaemon(ns_right, local="203.0.113.2", psk=b"s3cret",
                          local_subnet="192.168.200.0/24",
                          remote_subnet="192.168.100.0/24")
        left.initiate("203.0.113.2")   # -> SAs + policies on both ends

    Both daemons must be reachable through the simulated dataplane
    (routes + up devices), because the handshake really crosses it.
    """

    def __init__(self, namespace: NetworkNamespace, local: str, psk: bytes,
                 local_subnet: str, remote_subnet: str,
                 install_policies: bool = True) -> None:
        if not psk:
            raise IkeError("empty pre-shared key")
        self.namespace = namespace
        self.local = local
        self.psk = psk
        self.local_subnet = local_subnet
        self.remote_subnet = remote_subnet
        self.install_policies = install_policies
        self.spi_allocator = SpiAllocator(start=0x20000)
        self.negotiations: dict[int, _Negotiation] = {}
        self.established: list[str] = []
        self.rekeys = 0
        self._nonce_counter = 0
        namespace.bind_udp(IKE_PORT, self._on_datagram)

    def close(self) -> None:
        self.namespace.unbind_udp(IKE_PORT)

    # -- initiator side -----------------------------------------------------------
    def initiate(self, peer: str) -> None:
        """Send IKE_INIT; SAs are installed when the response arrives
        (synchronously, since the dataplane is synchronous)."""
        spi_i = self.spi_allocator.allocate()
        nonce_i = self._fresh_nonce(peer, spi_i)
        self.negotiations[spi_i] = _Negotiation(
            peer=peer, local_spi=spi_i, nonce=nonce_i)
        payload = f"INIT{spi_i:08x}{nonce_i.hex()}".encode()
        self.namespace.send_udp(self.local, peer, IKE_PORT, IKE_PORT,
                                payload)
        negotiation = self.negotiations.get(spi_i)
        if negotiation is None or not negotiation.established:
            raise IkeError(f"IKE negotiation with {peer} did not complete "
                           "(is the peer daemon reachable?)")

    def rekey(self, peer: str) -> None:
        """Negotiate fresh SAs with ``peer``, replacing the old ones."""
        self._drop_sas_for(peer)
        self.rekeys += 1
        self.initiate(peer)

    # -- responder side --------------------------------------------------------------
    def _on_datagram(self, namespace: NetworkNamespace, packet: IPv4Packet,
                     datagram: UdpDatagram) -> None:
        text = datagram.payload.decode(errors="replace")
        if text.startswith("INIT") and len(text) == 4 + 8 + 32:
            self._handle_init(packet.src, text)
        elif text.startswith("RESP") and len(text) == 4 + 16 + 32:
            self._handle_resp(packet.src, text)
        # Anything else is not ours: real charon logs and drops too.

    def _handle_init(self, peer: str, text: str) -> None:
        spi_i = int(text[4:12], 16)
        nonce_i = bytes.fromhex(text[12:])
        spi_r = self.spi_allocator.allocate()
        nonce_r = self._fresh_nonce(peer, spi_r)
        # Responder derives and installs immediately...
        self._install_pair(peer=peer, spi_in=spi_r, spi_out=spi_i,
                           nonce_i=nonce_i, nonce_r=nonce_r)
        # ...then answers so the initiator can do the same.
        payload = f"RESP{spi_i:08x}{spi_r:08x}{nonce_r.hex()}".encode()
        self.namespace.send_udp(self.local, peer, IKE_PORT, IKE_PORT,
                                payload)

    def _handle_resp(self, peer: str, text: str) -> None:
        spi_i = int(text[4:12], 16)
        spi_r = int(text[12:20], 16)
        nonce_r = bytes.fromhex(text[20:])
        negotiation = self.negotiations.get(spi_i)
        if negotiation is None or negotiation.peer != peer:
            raise IkeError(f"unsolicited IKE response from {peer}")
        self._install_pair(peer=peer, spi_in=spi_i, spi_out=spi_r,
                           nonce_i=negotiation.nonce, nonce_r=nonce_r)
        negotiation.established = True
        self.established.append(peer)

    # -- SA installation ---------------------------------------------------------------
    def _install_pair(self, peer: str, spi_in: int, spi_out: int,
                      nonce_i: bytes, nonce_r: bytes) -> None:
        """Install inbound + outbound SAs (and policies, once)."""
        enc_in, auth_in = derive_keys(self.psk, nonce_i, nonce_r, spi_in)
        enc_out, auth_out = derive_keys(self.psk, nonce_i, nonce_r,
                                        spi_out)
        self.namespace.xfrm.add_state(XfrmState(sa=SecurityAssociation(
            spi=spi_in, src=peer, dst=self.local,
            enc_key=enc_in, auth_key=auth_in)))
        self.namespace.xfrm.add_state(XfrmState(sa=SecurityAssociation(
            spi=spi_out, src=self.local, dst=peer,
            enc_key=enc_out, auth_key=auth_out)))
        if self.install_policies and not any(
                p.tmpl_dst == peer
                for p in self.namespace.xfrm.policies()):
            self.namespace.xfrm.add_policy(XfrmPolicy(
                selector=Selector(self.local_subnet, self.remote_subnet),
                direction=XfrmDirection.OUT,
                tmpl_src=self.local, tmpl_dst=peer))
            self.namespace.xfrm.add_policy(XfrmPolicy(
                selector=Selector(self.remote_subnet, self.local_subnet),
                direction=XfrmDirection.IN,
                tmpl_src=peer, tmpl_dst=self.local))

    def _drop_sas_for(self, peer: str) -> None:
        for state in list(self.namespace.xfrm.states()):
            if state.sa.src == peer or state.sa.dst == peer:
                self.namespace.xfrm.delete_state(state.sa.dst,
                                                 state.sa.spi)

    def _fresh_nonce(self, peer: str, spi: int) -> bytes:
        # Deterministic per (local, peer, spi, counter): reproducible
        # runs without OS randomness, unique per negotiation.
        self._nonce_counter += 1
        material = (f"{self.local}|{peer}|{spi}|{self._nonce_counter}"
                    .encode())
        return hashlib.sha256(material).digest()[:_NONCE_LEN]
