"""IPsec: ESP tunnel mode, SAs with anti-replay, and a strongSwan model.

The paper's Table 1 workload is a strongSwan ESP tunnel-mode endpoint.
This package implements:

* :mod:`repro.ipsec.crypto` — HMAC-SHA256 authentication and a
  SHA-256-in-counter-mode keystream cipher (documented stand-in for
  AES; no crypto libraries are available offline).
* :mod:`repro.ipsec.sa` — security associations: SPI, keys, sequence
  numbers, a 64-packet anti-replay window, lifetime counters.
* :mod:`repro.ipsec.esp` — RFC 4303 encapsulation/decapsulation in
  tunnel mode with real byte layouts.
* :mod:`repro.ipsec.ike` — a two-message pre-shared-key handshake
  (stand-in for IKEv2) that derives the SA key material.
* :mod:`repro.ipsec.strongswan` — the NF itself: a daemon that
  negotiates SAs and then processes packets either on the kernel XFRM
  fast path (native / Docker flavors) or in user space (VM flavor).
"""

from repro.ipsec.crypto import KeystreamCipher, derive_keys, hmac_sha256
from repro.ipsec.esp import EspError, esp_decapsulate, esp_encapsulate
from repro.ipsec.sa import ReplayError, SecurityAssociation, SpiAllocator

__all__ = [
    "EspError",
    "KeystreamCipher",
    "ReplayError",
    "SecurityAssociation",
    "SpiAllocator",
    "derive_keys",
    "esp_decapsulate",
    "esp_encapsulate",
    "hmac_sha256",
]
