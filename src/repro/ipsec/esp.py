"""ESP tunnel-mode encapsulation/decapsulation (RFC 4303 layout).

Wire format produced::

    outer IPv4 (proto 50)
      SPI (4) | sequence (4) | IV (8)
      ciphertext( inner IPv4 packet || padding || pad_len (1) || next_header (1) )
      ICV (12) — truncated HMAC-SHA256 over SPI..ciphertext

Padding aligns the encrypted block to 4 bytes as the RFC requires
(cipher-block alignment is moot for a stream cipher, so the minimum
alignment applies).
"""

from __future__ import annotations

import struct

from repro.ipsec.crypto import KeystreamCipher, hmac_sha256
from repro.ipsec.sa import SecurityAssociation
from repro.net.ipv4 import IPPROTO_ESP, IPv4Packet

__all__ = ["ESP_OVERHEAD_MIN", "EspError", "esp_decapsulate",
           "esp_encapsulate", "esp_overhead"]

_ESP_HEADER = struct.Struct("!II")  # SPI, sequence
_IV_LEN = 8
_ICV_LEN = 12
_NEXT_HEADER_IPV4 = 4  # IP-in-IP

#: Fixed bytes added before padding: outer IP + ESP hdr + IV + trailer + ICV.
ESP_OVERHEAD_MIN = 20 + _ESP_HEADER.size + _IV_LEN + 2 + _ICV_LEN


class EspError(Exception):
    """Authentication, format or replay failure during ESP processing."""


def esp_overhead(inner_length: int) -> int:
    """Exact byte overhead tunnel-mode ESP adds to an inner packet."""
    pad_len = (-(inner_length + 2)) % 4
    return ESP_OVERHEAD_MIN + pad_len


def _iv_for(sa: SecurityAssociation, seq: int) -> bytes:
    # Deterministic per-packet IV derived from the sequence number; fine
    # for a keystream keyed per-SA since (key, iv) pairs never repeat.
    return struct.pack("!II", sa.spi, seq)


def esp_encapsulate(sa: SecurityAssociation,
                    inner: IPv4Packet) -> IPv4Packet:
    """Wrap ``inner`` in an ESP tunnel to ``sa.dst``."""
    seq = sa.next_seq()
    plain = inner.to_bytes()
    pad_len = (-(len(plain) + 2)) % 4
    padding = bytes(range(1, pad_len + 1))  # RFC 4303 default pad bytes
    trailer = struct.pack("!BB", pad_len, _NEXT_HEADER_IPV4)
    iv = _iv_for(sa, seq)
    cipher = KeystreamCipher(sa.enc_key)
    ciphertext = cipher.encrypt(iv, plain + padding + trailer)
    body = _ESP_HEADER.pack(sa.spi, seq) + iv + ciphertext
    icv = hmac_sha256(sa.auth_key, body)[:_ICV_LEN]
    sa.packets_out += 1
    sa.bytes_out += len(plain)
    return IPv4Packet(src=sa.src, dst=sa.dst, proto=IPPROTO_ESP,
                      payload=body + icv)


def esp_decapsulate(sa: SecurityAssociation,
                    outer: IPv4Packet) -> IPv4Packet:
    """Authenticate, replay-check and unwrap an ESP packet."""
    if outer.proto != IPPROTO_ESP:
        raise EspError(f"not an ESP packet (proto={outer.proto})")
    payload = outer.payload
    if len(payload) < _ESP_HEADER.size + _IV_LEN + _ICV_LEN + 2:
        raise EspError("ESP payload too short")
    body, icv = payload[:-_ICV_LEN], payload[-_ICV_LEN:]
    expected = hmac_sha256(sa.auth_key, body)[:_ICV_LEN]
    if not _constant_time_eq(icv, expected):
        raise EspError("ESP ICV mismatch (authentication failed)")
    spi, seq = _ESP_HEADER.unpack_from(body, 0)
    if spi != sa.spi:
        raise EspError(f"SPI mismatch: packet {spi:#x}, SA {sa.spi:#x}")
    sa.check_replay(seq)  # raises ReplayError; caller surfaces it
    iv = body[_ESP_HEADER.size:_ESP_HEADER.size + _IV_LEN]
    ciphertext = body[_ESP_HEADER.size + _IV_LEN:]
    cipher = KeystreamCipher(sa.enc_key)
    plain = cipher.decrypt(iv, ciphertext)
    if len(plain) < 2:
        raise EspError("decrypted ESP body too short")
    pad_len, next_header = plain[-2], plain[-1]
    if next_header != _NEXT_HEADER_IPV4:
        raise EspError(f"unsupported next header {next_header}")
    if pad_len + 2 > len(plain):
        raise EspError("pad length exceeds decrypted body")
    padding = plain[len(plain) - 2 - pad_len:len(plain) - 2]
    if padding != bytes(range(1, pad_len + 1)):
        raise EspError("ESP padding check failed")
    inner_bytes = plain[:len(plain) - 2 - pad_len]
    try:
        inner = IPv4Packet.from_bytes(inner_bytes)
    except ValueError as exc:
        raise EspError(f"inner packet malformed: {exc}") from exc
    sa.mark_seen(seq)
    sa.packets_in += 1
    sa.bytes_in += len(inner_bytes)
    return inner


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
