"""Security associations and SPI management."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ReplayError", "SecurityAssociation", "SpiAllocator"]

REPLAY_WINDOW = 64


class ReplayError(Exception):
    """Sequence number replayed or too far behind the window."""


@dataclass
class SecurityAssociation:
    """One unidirectional ESP SA (tunnel mode).

    ``src``/``dst`` are the *outer* tunnel endpoints.  The anti-replay
    window is the standard 64-bit sliding bitmap of RFC 4303 appendix A.
    """

    spi: int
    src: str
    dst: str
    enc_key: bytes
    auth_key: bytes
    seq_out: int = 0
    replay_top: int = 0          # highest sequence number seen
    replay_bitmap: int = 0       # bit i => (replay_top - i) seen
    packets_out: int = 0
    packets_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    hard_packet_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 < self.spi < 1 << 32:
            raise ValueError(f"SPI out of range: {self.spi}")
        if len(self.enc_key) < 16 or len(self.auth_key) < 16:
            raise ValueError("SA keys must be at least 128 bits")

    def next_seq(self) -> int:
        """Allocate the next outbound sequence number."""
        self.seq_out += 1
        if self.seq_out >= 1 << 32:
            raise OverflowError("ESP sequence number space exhausted; rekey")
        if (self.hard_packet_limit is not None
                and self.seq_out > self.hard_packet_limit):
            raise OverflowError("SA hard packet lifetime exceeded; rekey")
        return self.seq_out

    def check_replay(self, seq: int) -> None:
        """Raise :class:`ReplayError` if ``seq`` was seen or is stale."""
        if seq == 0:
            raise ReplayError("ESP sequence number 0 is invalid")
        if seq > self.replay_top:
            return
        offset = self.replay_top - seq
        if offset >= REPLAY_WINDOW:
            raise ReplayError(f"sequence {seq} below replay window")
        if self.replay_bitmap & (1 << offset):
            raise ReplayError(f"sequence {seq} replayed")

    def mark_seen(self, seq: int) -> None:
        """Slide the window after a packet authenticated successfully."""
        if seq > self.replay_top:
            shift = seq - self.replay_top
            if shift >= REPLAY_WINDOW:
                self.replay_bitmap = 1
            else:
                self.replay_bitmap = ((self.replay_bitmap << shift) | 1) & (
                    (1 << REPLAY_WINDOW) - 1)
            self.replay_top = seq
        else:
            self.replay_bitmap |= 1 << (self.replay_top - seq)


class SpiAllocator:
    """Hands out unique SPIs; real stacks pick random non-colliding ones."""

    RESERVED = 256  # SPIs 0-255 are reserved by RFC 4303

    def __init__(self, start: int = 0x1000) -> None:
        if start < self.RESERVED:
            raise ValueError("SPI start collides with reserved range")
        self._next = start
        self._in_use: set[int] = set()

    def allocate(self) -> int:
        spi = self._next
        self._next += 1
        self._in_use.add(spi)
        return spi

    def release(self, spi: int) -> None:
        self._in_use.discard(spi)

    def reserve(self, spi: int) -> None:
        """Claim a peer-chosen SPI; raises if already taken."""
        if spi in self._in_use:
            raise ValueError(f"SPI {spi:#x} already in use")
        if spi < self.RESERVED:
            raise ValueError(f"SPI {spi:#x} is in the reserved range")
        self._in_use.add(spi)
