"""Cryptographic primitives built on hashlib/hmac only.

**Substitution note** (see DESIGN.md §2): the paper's strongSwan setup
uses AES for ESP encryption.  No AES implementation is available in the
offline environment's stdlib, so encryption here is a keystream cipher:

    block_i = SHA256(key || iv || counter_i)

XORed over the plaintext.  It has the two properties the reproduction
needs — the transform is length-preserving-modulo-padding and invertible
only with the key — while remaining a few lines of auditable code.  It
is NOT a secure cipher for production use (no claims about
indistinguishability are needed here: the experiments measure packet
processing paths, not cryptanalysis).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct

__all__ = ["KeystreamCipher", "derive_keys", "hmac_sha256"]

_BLOCK = 32  # SHA-256 digest size


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Full 32-byte HMAC-SHA256 tag."""
    return _hmac.new(key, data, hashlib.sha256).digest()


class KeystreamCipher:
    """Counter-mode keystream cipher over SHA-256 (AES stand-in)."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("cipher key must be at least 128 bits")
        self._key = key

    def _keystream(self, iv: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(hashlib.sha256(
                self._key + iv + struct.pack("!Q", counter)).digest())
        return b"".join(blocks)[:length]

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        stream = self._keystream(iv, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    # XOR keystream: decryption is the same operation.
    decrypt = encrypt


def derive_keys(shared_secret: bytes, nonce_i: bytes, nonce_r: bytes,
                spi: int) -> tuple[bytes, bytes]:
    """Derive (encryption_key, authentication_key) for one SA.

    HKDF-shaped: extract with the concatenated nonces as salt, then two
    labelled expansions.  Both sides of the toy IKE handshake call this
    with the same inputs and obtain the same key material.
    """
    if not shared_secret:
        raise ValueError("empty shared secret")
    salt = nonce_i + nonce_r + struct.pack("!I", spi)
    prk = _hmac.new(salt, shared_secret, hashlib.sha256).digest()
    enc_key = _hmac.new(prk, b"ENCR" + b"\x01", hashlib.sha256).digest()
    auth_key = _hmac.new(prk, b"AUTH" + b"\x02", hashlib.sha256).digest()
    return enc_key, auth_key
