"""Node capability descriptions.

Two canonical profiles matter to the paper: the resource-constrained
residential CPE (no KVM, little RAM, Linux with native NFs) and the NSP
data-center server (plenty of everything).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["NodeCapabilities", "NodeClass"]


class NodeClass(Enum):
    CPE = "cpe"
    DATACENTER = "datacenter"


@dataclass
class NodeCapabilities:
    """Static description of what a compute node can run."""

    node_class: NodeClass
    cpu_cores: int
    cpu_mhz: int
    ram_mb: int
    disk_mb: int
    features: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError("node needs at least one CPU core")
        for amount, name in ((self.ram_mb, "RAM"), (self.disk_mb, "disk"),
                             (self.cpu_mhz, "CPU clock")):
            if amount <= 0:
                raise ValueError(f"{name} must be positive")

    def supports(self, feature: str) -> bool:
        return feature in self.features

    def supports_all(self, features: "frozenset[str] | set[str]") -> bool:
        return set(features) <= set(self.features)

    @classmethod
    def residential_cpe(cls) -> "NodeCapabilities":
        """A typical Linux home gateway: dual-core ARM, 512 MB RAM.

        ``kvm`` is absent by default: many CPE SoCs lack virtualization
        extensions, which is precisely why the paper wants NNFs there.
        (Table 1 was measured on a box that *could* run KVM, so the
        benchmarks use ``residential_cpe_with_kvm``.)
        """
        return cls(node_class=NodeClass.CPE, cpu_cores=2, cpu_mhz=1200,
                   ram_mb=512, disk_mb=4096,
                   features=frozenset({"native", "docker", "linux",
                                       "netns", "iptables", "xfrm"}))

    @classmethod
    def residential_cpe_with_kvm(cls) -> "NodeCapabilities":
        """An x86 CPE like the paper's testbed: can run all three flavors."""
        return cls(node_class=NodeClass.CPE, cpu_cores=4, cpu_mhz=2400,
                   ram_mb=4096, disk_mb=32768,
                   features=frozenset({"native", "docker", "kvm", "linux",
                                       "netns", "iptables", "xfrm"}))

    @classmethod
    def datacenter_server(cls) -> "NodeCapabilities":
        return cls(node_class=NodeClass.DATACENTER, cpu_cores=32,
                   cpu_mhz=2600, ram_mb=262144, disk_mb=4194304,
                   features=frozenset({"kvm", "docker", "dpdk", "hugepages",
                                       "linux", "netns", "iptables",
                                       "xfrm"}))
