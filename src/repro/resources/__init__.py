"""Node resource model: capabilities, accounting, images.

The local orchestrator decides VNF-vs-NNF "based on its knowledge of
the node capability set" (paper §2); the resource manager of Figure 1
tracks CPU/RAM/disk so admission control can refuse graphs that do not
fit a low-cost CPE.  The image registry composes VM disk images, Docker
layer stacks and native packages from component sizes, which is where
the Table 1 image-size column comes from.
"""

from repro.resources.accounting import (
    AdmissionError,
    Allocation,
    ResourceAccountant,
)
from repro.resources.capabilities import NodeCapabilities, NodeClass
from repro.resources.images import (
    DockerImage,
    ImageRegistry,
    NativePackage,
    VmImage,
)

__all__ = [
    "AdmissionError",
    "Allocation",
    "DockerImage",
    "ImageRegistry",
    "NativePackage",
    "NodeCapabilities",
    "NodeClass",
    "ResourceAccountant",
    "VmImage",
]
