"""Image model: VM disks, Docker layer stacks, native packages.

Table 1's image-size column (522 MB / 240 MB / 5 MB) is the visible
consequence of what each packaging carries: a VM ships a whole OS, a
container ships a rootfs minus the kernel, a native package ships just
the NF binaries because everything else is already on the CPE.  The
classes below compose those sizes from parts, so the benchmark derives
the column instead of quoting it.

Component sizes are catalogued from the 2016-era artefacts the paper
used (Ubuntu cloud images, Docker Hub strongSwan images, OpenWrt ipk
packages); see ``STOCK_COMPONENTS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["DockerImage", "ImageComponent", "ImageRegistry",
           "NativePackage", "STOCK_COMPONENTS", "VmImage"]


@dataclass(frozen=True)
class ImageComponent:
    """A named chunk of bytes inside an image."""

    name: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"negative component size: {self.name}")


#: Catalogue of 2016-era component sizes (MB).
STOCK_COMPONENTS: dict[str, ImageComponent] = {
    comp.name: comp for comp in (
        # Full VM guest: Ubuntu 14.04 server cloud image content.
        ImageComponent("linux-kernel", 60.0),
        ImageComponent("ubuntu-rootfs", 380.0),
        ImageComponent("cloud-init-tools", 45.0),
        # Docker: trimmed ubuntu base layers + runtime deps.
        ImageComponent("ubuntu-docker-base", 165.0),
        ImageComponent("apt-runtime-deps", 36.0),
        # The NF itself.
        ImageComponent("strongswan-full", 37.0),
        ImageComponent("strongswan-pkg", 5.0),  # ipk: binaries + configs only
        ImageComponent("iptables-pkg", 0.3),
        ImageComponent("dnsmasq-pkg", 0.4),
        ImageComponent("bridge-utils-pkg", 0.1),
        ImageComponent("dpdk-runtime", 120.0),
    )
}


@dataclass
class VmImage:
    """A qcow2-style disk: kernel + rootfs + tooling + the NF."""

    name: str
    components: tuple[ImageComponent, ...]
    format: str = "qcow2"

    @property
    def size_mb(self) -> float:
        return sum(component.size_mb for component in self.components)

    @property
    def technology(self) -> str:
        return "vm"


@dataclass
class DockerImage:
    """Layered image; layers shared with other images are still stored
    once on disk, but the *image* size reported (and pulled) includes
    them — matching ``docker images`` output, which is what Table 1
    quotes."""

    name: str
    layers: tuple[ImageComponent, ...]

    @property
    def size_mb(self) -> float:
        return sum(layer.size_mb for layer in self.layers)

    @property
    def technology(self) -> str:
        return "docker"


@dataclass
class NativePackage:
    """An opkg/apt package for an NF already supported by the host OS."""

    name: str
    components: tuple[ImageComponent, ...]

    @property
    def size_mb(self) -> float:
        return sum(component.size_mb for component in self.components)

    @property
    def technology(self) -> str:
        return "native"


Image = "VmImage | DockerImage | NativePackage"


class ImageRegistry:
    """The VNF repository's artefact store (image name -> image)."""

    def __init__(self) -> None:
        self._images: dict[str, object] = {}

    def register(self, image: "VmImage | DockerImage | NativePackage") -> None:
        if image.name in self._images:
            raise ValueError(f"image {image.name!r} already registered")
        self._images[image.name] = image

    def get(self, name: str) -> "VmImage | DockerImage | NativePackage":
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"no image {name!r} in registry") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def names(self) -> list[str]:
        return sorted(self._images)

    def transfer_seconds(self, name: str, link_mbps: float = 100.0) -> float:
        """Time to pull the image to a node over ``link_mbps``.

        Native packages are usually preinstalled on the CPE; the pull
        time still matters when the orchestrator must fetch a missing
        plugin package.
        """
        if link_mbps <= 0:
            raise ValueError("link rate must be positive")
        image = self.get(name)
        return image.size_mb * 8.0 / link_mbps

    @staticmethod
    def stock() -> "ImageRegistry":
        """Registry pre-loaded with the images the benchmarks use."""
        c = STOCK_COMPONENTS
        registry = ImageRegistry()
        registry.register(VmImage(
            name="strongswan-vm",
            components=(c["linux-kernel"], c["ubuntu-rootfs"],
                        c["cloud-init-tools"], c["strongswan-full"])))
        registry.register(DockerImage(
            name="strongswan-docker",
            layers=(c["ubuntu-docker-base"], c["apt-runtime-deps"],
                    c["strongswan-full"],
                    ImageComponent("docker-image-metadata", 2.0))))
        registry.register(NativePackage(
            name="strongswan-native", components=(c["strongswan-pkg"],)))
        registry.register(NativePackage(
            name="iptables-native", components=(c["iptables-pkg"],)))
        registry.register(NativePackage(
            name="dnsmasq-native", components=(c["dnsmasq-pkg"],)))
        registry.register(NativePackage(
            name="linuxbridge-native",
            components=(c["bridge-utils-pkg"],)))
        registry.register(VmImage(
            name="generic-nf-vm",
            components=(c["linux-kernel"], c["ubuntu-rootfs"],
                        c["cloud-init-tools"],
                        ImageComponent("generic-nf", 25.0))))
        registry.register(DockerImage(
            name="generic-nf-docker",
            layers=(c["ubuntu-docker-base"], c["apt-runtime-deps"],
                    ImageComponent("generic-nf", 25.0))))
        registry.register(DockerImage(
            name="dpi-docker",
            layers=(c["ubuntu-docker-base"], c["apt-runtime-deps"],
                    ImageComponent("ndpi-engine", 55.0))))
        registry.register(VmImage(
            name="dpdk-fwd-vm",
            components=(c["linux-kernel"], c["ubuntu-rootfs"],
                        c["dpdk-runtime"],
                        ImageComponent("l2fwd-app", 8.0))))
        return registry
