"""Resource accounting and admission control (Figure 1's resource manager)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.resources.capabilities import NodeCapabilities

__all__ = ["AdmissionError", "Allocation", "ResourceAccountant"]

_allocation_ids = itertools.count(1)


class AdmissionError(Exception):
    """The node cannot host the requested allocation."""


@dataclass
class Allocation:
    """One granted reservation (usually one NF instance)."""

    owner: str
    cpu_cores: float
    ram_mb: float
    disk_mb: float
    allocation_id: int = field(default_factory=lambda: next(_allocation_ids))
    released: bool = False


class ResourceAccountant:
    """Tracks reservations against a node's capabilities."""

    def __init__(self, capabilities: NodeCapabilities,
                 ram_headroom_mb: float = 64.0) -> None:
        """``ram_headroom_mb`` is reserved for the host OS itself."""
        self.capabilities = capabilities
        self.ram_headroom_mb = ram_headroom_mb
        self._allocations: dict[int, Allocation] = {}
        self.rejections = 0

    # -- usage views ------------------------------------------------------------
    @property
    def cpu_used(self) -> float:
        return sum(a.cpu_cores for a in self._allocations.values())

    @property
    def ram_used_mb(self) -> float:
        return sum(a.ram_mb for a in self._allocations.values())

    @property
    def disk_used_mb(self) -> float:
        return sum(a.disk_mb for a in self._allocations.values())

    @property
    def cpu_free(self) -> float:
        return self.capabilities.cpu_cores - self.cpu_used

    @property
    def ram_free_mb(self) -> float:
        return (self.capabilities.ram_mb - self.ram_headroom_mb
                - self.ram_used_mb)

    @property
    def disk_free_mb(self) -> float:
        return self.capabilities.disk_mb - self.disk_used_mb

    def allocations(self) -> list[Allocation]:
        return list(self._allocations.values())

    # -- admission ---------------------------------------------------------------
    def fits(self, cpu_cores: float, ram_mb: float, disk_mb: float) -> bool:
        return (cpu_cores <= self.cpu_free + 1e-9
                and ram_mb <= self.ram_free_mb + 1e-9
                and disk_mb <= self.disk_free_mb + 1e-9)

    def allocate(self, owner: str, cpu_cores: float = 0.0,
                 ram_mb: float = 0.0, disk_mb: float = 0.0) -> Allocation:
        if min(cpu_cores, ram_mb, disk_mb) < 0:
            raise ValueError("resource amounts cannot be negative")
        if not self.fits(cpu_cores, ram_mb, disk_mb):
            self.rejections += 1
            raise AdmissionError(
                f"{owner}: needs cpu={cpu_cores} ram={ram_mb}MB "
                f"disk={disk_mb}MB; free cpu={self.cpu_free:.2f} "
                f"ram={self.ram_free_mb:.1f}MB "
                f"disk={self.disk_free_mb:.1f}MB")
        allocation = Allocation(owner=owner, cpu_cores=cpu_cores,
                                ram_mb=ram_mb, disk_mb=disk_mb)
        self._allocations[allocation.allocation_id] = allocation
        return allocation

    def resize(self, allocation: Allocation, cpu_cores: Optional[float] = None,
               ram_mb: Optional[float] = None) -> None:
        """Grow/shrink a live allocation (graph update path)."""
        new_cpu = cpu_cores if cpu_cores is not None else allocation.cpu_cores
        new_ram = ram_mb if ram_mb is not None else allocation.ram_mb
        delta_cpu = new_cpu - allocation.cpu_cores
        delta_ram = new_ram - allocation.ram_mb
        if not self.fits(max(delta_cpu, 0.0), max(delta_ram, 0.0), 0.0):
            self.rejections += 1
            raise AdmissionError(f"{allocation.owner}: resize does not fit")
        allocation.cpu_cores = new_cpu
        allocation.ram_mb = new_ram

    def release(self, allocation: Allocation) -> None:
        if allocation.released:
            raise ValueError(
                f"allocation {allocation.allocation_id} already released")
        removed = self._allocations.pop(allocation.allocation_id, None)
        if removed is None:
            raise KeyError(
                f"allocation {allocation.allocation_id} not held here")
        allocation.released = True

    def utilisation(self) -> dict[str, float]:
        """Fractional usage per dimension, for the REST status endpoint."""
        return {
            "cpu": self.cpu_used / self.capabilities.cpu_cores,
            "ram": self.ram_used_mb / self.capabilities.ram_mb,
            "disk": self.disk_used_mb / self.capabilities.disk_mb,
        }
