"""repro — reproduction of *Modeling Native Software Components as
Virtual Network Functions* (Baldi, Bonafiglia, Risso, Sapio — SIGCOMM
2016).

The package implements the paper's NFV compute node end to end: a
simulated Linux networking substrate, OpenFlow-programmed Logical
Switch Instances, management drivers for VM/Docker/DPDK packaging, the
Native-Network-Function driver with its sharability and adaptation
machinery, the local orchestrator, a REST front-end and the performance
harness that regenerates the paper's evaluation.

Quickstart::

    from repro import ComputeNode, Nffg

    node = ComputeNode("cpe")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")

    graph = Nffg(graph_id="home")
    graph.add_nf("nat1", "nat", config={"lan.address": "192.168.1.1/24",
                                        "wan.address": "203.0.113.2/24",
                                        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")

    record = node.deploy(graph)           # nat1 becomes a native NF
    print(record.technologies())
"""

from repro.core.node import ComputeNode
from repro.core.orchestrator import DeployedGraph, OrchestrationError
from repro.nffg.model import Nffg
from repro.nffg.json_codec import nffg_from_json, nffg_to_json
from repro.rest.app import RestApp
from repro.rest.client import RestClient

__version__ = "1.0.0"

__all__ = [
    "ComputeNode",
    "DeployedGraph",
    "Nffg",
    "OrchestrationError",
    "RestApp",
    "RestClient",
    "__version__",
    "nffg_from_json",
    "nffg_to_json",
]
