"""The driver abstraction every management driver implements.

Paper §2: "All the above drivers must implement a specific abstraction
defined by the local orchestrator, which enables multiple drivers to
coexist".  The abstraction is the lifecycle verb set (create /
configure / start / stop / update / destroy / restart) over
:class:`~repro.compute.instances.NfInstance`, the :meth:`health` probe
the reconciler polls on every tick, plus the port-attachment contract
(``switch_devices``/``port_vlans``) the steering layer reads.

The namespace-backed drivers share plumbing here: each NF instance gets
a network namespace and one veth pair per logical port, with the
root-namespace half left for the LSI to claim.  The guest-side
configuration is produced by the NNF *plugins* regardless of packaging
technology — a strongSwan VM and a strongSwan NNF run the same
component, so they are configured by the same command generator; only
the wrapping (and its costs) differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.templates import Technology
from repro.compute.instances import InstanceSpec, InstanceState, NfInstance
from repro.linuxnet.cmdline import ScriptRunner
from repro.linuxnet.host import LinuxHost
from repro.nnf.plugin import NnfPlugin, PluginContext
from repro.nnf.registry import NnfRegistry

__all__ = ["ComputeDriver", "DriverError", "Health"]


class DriverError(Exception):
    """Driver-level failure (bad spec, unusable plugin, ...)."""


@dataclass(frozen=True)
class Health:
    """Result of one :meth:`ComputeDriver.health` probe."""

    healthy: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.healthy


class ComputeDriver:
    """Base class for the management drivers."""

    technology: Technology
    #: modelled instantiation latency (seconds) added per instance
    boot_seconds: float = 1.0
    #: name prefix for instance namespaces
    netns_prefix: str = "nf"

    def __init__(self, host: LinuxHost,
                 behaviors: Optional[NnfRegistry] = None) -> None:
        self.host = host
        self.runner = ScriptRunner(host)
        #: plugin registry used as *behaviour generators* for guest
        #: configuration (may be shared with the native driver).
        self.behaviors = behaviors
        self.instances_created = 0
        self.commands_run = 0

    # -- shared plumbing ---------------------------------------------------------
    def _netns_name(self, spec: InstanceSpec) -> str:
        return f"{self.netns_prefix}-{spec.instance_id}"

    def _inner_port_name(self, spec: InstanceSpec, index: int,
                         logical: str) -> str:
        """Guest-side device name; technology-flavoured."""
        return logical

    def _run(self, commands: list[str]) -> None:
        self.commands_run += len(commands)
        self.runner.run_script(commands)

    def _create_namespace_and_ports(self, spec: InstanceSpec) -> NfInstance:
        netns = self._netns_name(spec)
        self._run([f"ip netns add {netns}"])
        instance = NfInstance(spec=spec, technology=self.technology,
                              netns=netns)
        for index, logical in enumerate(spec.logical_ports):
            outer = f"{spec.instance_id}-{logical}"
            inner = self._inner_port_name(spec, index, logical)
            self._run([
                f"ip link add {outer} type veth peer name {inner}",
                f"ip link set {inner} netns {netns}",
                f"ip link set {outer} up",
            ])
            instance.switch_devices[logical] = self.host.root.device(outer)
            instance.inner_devices[logical] = inner
            instance.port_vlans[logical] = None
        return instance

    def _behavior_plugin(self, spec: InstanceSpec) -> Optional[NnfPlugin]:
        """Plugin acting as the guest's configuration generator."""
        if self.behaviors is None:
            return None
        for name in self.behaviors.names():
            plugin = self.behaviors.get(name)
            if plugin.functional_type == spec.functional_type:
                return plugin
        return None

    def _context(self, instance: NfInstance) -> PluginContext:
        return PluginContext(instance_id=instance.instance_id,
                             netns=instance.netns,
                             ports=dict(instance.inner_devices),
                             config=dict(instance.spec.config))

    # -- abstraction verbs ---------------------------------------------------------
    def create(self, spec: InstanceSpec) -> NfInstance:
        instance = self._create_namespace_and_ports(spec)
        instance.boot_seconds = self.boot_seconds
        instance.transition("create")
        plugin = self._behavior_plugin(spec)
        if plugin is not None:
            instance.plugin_name = plugin.name
            self._run(plugin.create_script(self._context(instance)))
        self.instances_created += 1
        return instance

    def configure(self, instance: NfInstance) -> None:
        plugin = self._named_plugin(instance)
        if plugin is not None:
            self._run(plugin.configure_script(self._context(instance)))
        instance.transition("configure")

    def start(self, instance: NfInstance) -> None:
        plugin = self._named_plugin(instance)
        if plugin is not None:
            self._run(plugin.start_script(self._context(instance)))
            plugin.post_start(self._context(instance), self.host)
        else:
            self._run([f"ip netns exec {instance.netns} ip link set "
                       f"{device} up"
                       for device in instance.inner_devices.values()])
        instance.transition("start")

    def stop(self, instance: NfInstance) -> None:
        plugin = self._named_plugin(instance)
        if plugin is not None:
            self._run(plugin.stop_script(self._context(instance)))
            plugin.post_stop(self._context(instance), self.host)
        instance.transition("stop")

    def update(self, instance: NfInstance,
               new_config: dict[str, str]) -> None:
        instance.spec.config.clear()
        instance.spec.config.update(new_config)
        plugin = self._named_plugin(instance)
        if plugin is not None:
            self._run(plugin.update_script(self._context(instance)))
        instance.transition("update")

    def destroy(self, instance: NfInstance) -> None:
        plugin = self._named_plugin(instance)
        if plugin is not None and instance.state is not None:
            try:
                self._run(plugin.destroy_script(self._context(instance)))
            except Exception:
                pass  # teardown is best-effort, like the real scripts
        for device in instance.unique_switch_devices():
            if device.peer is not None:
                device.peer.peer = None
            if device.namespace is not None:
                device.namespace.remove_device(device.name)
        if instance.netns in self.host.namespaces:
            self._run([f"ip netns del {instance.netns}"])
        # else: the namespace already evaporated (crashed instance) —
        # destroy is idempotent so the reconciler can clean up wrecks.
        instance.transition("destroy")

    def restart(self, instance: NfInstance) -> None:
        """Heal a FAILED instance in place.

        The namespace and ports survived (only the NF itself died), so
        the driver re-runs its start machinery: stop scripts
        best-effort, then the start scripts, on the same substrate.
        Raises :class:`~repro.compute.instances.LifecycleError` when the
        instance is not FAILED.
        """
        plugin = self._named_plugin(instance)
        if plugin is not None:
            try:
                self._run(plugin.stop_script(self._context(instance)))
                plugin.post_stop(self._context(instance), self.host)
            except Exception:
                pass  # the dead NF may not answer its stop scripts
            self._run(plugin.start_script(self._context(instance)))
            plugin.post_start(self._context(instance), self.host)
        else:
            self._run([f"ip netns exec {instance.netns} ip link set "
                       f"{device} up"
                       for device in instance.inner_devices.values()])
        instance.transition("restart")

    def health(self, instance: NfInstance) -> Health:
        """Probe whether the instance's substrate is still alive.

        The base probe checks the marked state and that the instance's
        network namespace still exists on the host; technology drivers
        refine it (poll loops for DPDK, component registration for
        shared NNFs).  The probe never mutates state — the reconciler
        decides what to do with an unhealthy verdict.
        """
        if instance.state is InstanceState.FAILED:
            return Health(False, "marked failed")
        if instance.state is InstanceState.DESTROYED:
            return Health(False, "destroyed")
        if instance.netns not in self.host.namespaces:
            return Health(False, f"namespace {instance.netns} is gone")
        return Health(True, instance.state.value)

    def _named_plugin(self, instance: NfInstance) -> Optional[NnfPlugin]:
        if instance.plugin_name is None or self.behaviors is None:
            return None
        return self.behaviors.get(instance.plugin_name)

    # -- bookkeeping -------------------------------------------------------------
    def runtime_ram_mb(self, instance: NfInstance) -> float:
        """Runtime RAM of the instance; overridden per technology."""
        return instance.spec.implementation.ram_mb
