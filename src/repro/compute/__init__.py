"""Compute layer: NF instances, driver abstraction, compute manager.

Figure 1's "compute manager" with its per-technology "management
drivers" (libvirt / Docker / DPDK / native).  All drivers implement the
same abstraction "defined by the local orchestrator, which enables
multiple drivers to coexist, hence implementing complex services that
include VNFs created with different technologies" (paper §2).
"""

from repro.compute.instances import InstanceState, InstanceSpec, NfInstance
from repro.compute.base import ComputeDriver, DriverError
from repro.compute.manager import ComputeManager
from repro.compute.drivers.vm_kvm import KvmDriver
from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.dpdk import DpdkDriver
from repro.compute.drivers.native import NativeDriver

__all__ = [
    "ComputeDriver",
    "ComputeManager",
    "DockerDriver",
    "DpdkDriver",
    "DriverError",
    "InstanceSpec",
    "InstanceState",
    "KvmDriver",
    "NativeDriver",
    "NfInstance",
]
