"""KVM/QEMU driver (the libvirt driver of Figure 1).

The guest is modelled as a network namespace (its kernel) configured by
the same behaviour plugin as the other flavors; the virtualization tax
shows up in the instantiation latency, the memory footprint (guest RAM
+ hypervisor RSS) and the per-packet cost model, which is where the
paper locates it (vm-exits, and the NF "executing in user space (i.e.,
in the process, within the hypervisor, running the VM)").
"""

from __future__ import annotations

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, Health
from repro.compute.instances import InstanceSpec, NfInstance

__all__ = ["KvmDriver"]


class KvmDriver(ComputeDriver):
    technology = Technology.VM
    netns_prefix = "vm"
    #: guest kernel boot + cloud-init, dominated the paper-era deploys
    boot_seconds = 24.0

    #: memory decomposition (MB): see repro.perf.memory for derivation
    guest_ram_mb = 256.0
    qemu_rss_mb = 134.6

    def _inner_port_name(self, spec: InstanceSpec, index: int,
                         logical: str) -> str:
        # The guest sees virtio NICs enumerated as eth0, eth1, ...
        return f"eth{index}"

    def runtime_ram_mb(self, instance: NfInstance) -> float:
        """Allocated at runtime = full guest RAM + hypervisor overhead.

        The guest's own processes live *inside* guest_ram_mb, so the NF
        RSS does not appear as a separate term — the whole guest
        allocation is resident from the host's point of view.
        """
        return self.guest_ram_mb + self.qemu_rss_mb

    def create(self, spec: InstanceSpec) -> NfInstance:
        instance = super().create(spec)
        instance.runtime_ram_mb = self.runtime_ram_mb(instance)
        return instance

    def health(self, instance: NfInstance) -> Health:
        base = super().health(instance)
        if not base.healthy or not instance.is_running:
            return base
        # The guest kernel is the instance namespace: a QEMU crash
        # removes it wholesale, but a hung guest still answers the
        # namespace probe — only the loopback state betrays it.
        namespace = self.host.namespace(instance.netns)
        if not namespace.device("lo").up:
            return Health(False, "guest lost its loopback (hung kernel)")
        return base
