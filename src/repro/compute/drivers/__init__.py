"""Management drivers: one per packaging technology (Figure 1)."""

from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.dpdk import DpdkDriver
from repro.compute.drivers.native import NativeDriver
from repro.compute.drivers.vm_kvm import KvmDriver

__all__ = ["DockerDriver", "DpdkDriver", "KvmDriver", "NativeDriver"]
