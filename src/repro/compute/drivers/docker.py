"""Docker driver.

A container is a namespace on the host kernel plus a runtime shim —
which is exactly how it is modelled.  Packet processing happens in the
host kernel (Table 1: Docker ≈ Native throughput); the container tax is
image size and a few MB of runtime overhead.
"""

from __future__ import annotations

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, Health
from repro.compute.instances import InstanceSpec, NfInstance

__all__ = ["DockerDriver"]


class DockerDriver(ComputeDriver):
    technology = Technology.DOCKER
    netns_prefix = "docker"
    boot_seconds = 0.9  # image already pulled; containerd start

    #: containerd-shim + docker-proxy attribution per container (MB)
    shim_rss_mb = 4.8
    #: NF process RSS inside the container; per-NF, strongSwan's charon
    #: + starter measured 19.4 MB (Table 1 native row)
    default_nf_rss_mb = 19.4

    def _inner_port_name(self, spec: InstanceSpec, index: int,
                         logical: str) -> str:
        return f"eth{index}"

    def nf_rss_mb(self, instance: NfInstance) -> float:
        text = instance.spec.config.get("nf_rss_mb")
        return float(text) if text else self.default_nf_rss_mb

    def runtime_ram_mb(self, instance: NfInstance) -> float:
        """Container RAM = NF process RSS + runtime shim."""
        return self.nf_rss_mb(instance) + self.shim_rss_mb

    def create(self, spec: InstanceSpec) -> NfInstance:
        instance = super().create(spec)
        instance.runtime_ram_mb = self.runtime_ram_mb(instance)
        return instance

    def health(self, instance: NfInstance) -> Health:
        base = super().health(instance)
        if not base.healthy or not instance.is_running:
            return base
        # The runtime shim keeps the veth pair plumbed; a torn-down
        # container loses the host-side peer.
        for device in instance.unique_switch_devices():
            if device.peer is None:
                return Health(
                    False, f"container veth {device.name} lost its peer")
        return base
