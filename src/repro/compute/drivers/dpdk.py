"""DPDK process driver.

Kernel-bypass: the NF polls its ports from user space, burning a core
but skipping the kernel entirely.  The modelled instance wires its two
ports together with direct device handlers (an l2fwd-style app); the
hugepage reservation is charged as RAM.
"""

from __future__ import annotations

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.compute.instances import InstanceSpec, NfInstance

__all__ = ["DpdkDriver"]


class DpdkDriver(ComputeDriver):
    technology = Technology.DPDK
    netns_prefix = "dpdk"
    boot_seconds = 2.2  # EAL init + hugepage mapping

    hugepages_mb = 1024.0
    eal_rss_mb = 45.0

    def create(self, spec: InstanceSpec) -> NfInstance:
        if len(spec.logical_ports) != 2:
            raise DriverError(
                "the modelled DPDK app is a two-port forwarder; got "
                f"{len(spec.logical_ports)} ports")
        instance = super().create(spec)
        instance.runtime_ram_mb = self.runtime_ram_mb(instance)
        return instance

    def runtime_ram_mb(self, instance: NfInstance) -> float:
        return self.hugepages_mb + self.eal_rss_mb

    def _wire_ports(self, instance: NfInstance) -> None:
        # Poll-mode forwarding: patch the two inner devices together,
        # bypassing the namespace stack (kernel bypass).
        namespace = self.host.namespace(instance.netns)
        a, b = [namespace.device(name)
                for name in instance.inner_devices.values()]
        a.set_up()
        b.set_up()
        a.attach_handler(lambda dev, frame: b.transmit(frame))
        b.attach_handler(lambda dev, frame: a.transmit(frame))

    def _unwire_ports(self, instance: NfInstance) -> None:
        namespace = self.host.namespace(instance.netns)
        for name in instance.inner_devices.values():
            namespace.device(name).detach_handler()

    def start(self, instance: NfInstance) -> None:
        self._wire_ports(instance)
        instance.transition("start")

    def stop(self, instance: NfInstance) -> None:
        self._unwire_ports(instance)
        instance.transition("stop")

    def restart(self, instance: NfInstance) -> None:
        # Re-launch the poll-mode app: drop whatever handler wiring
        # survived the crash and rebuild the two-port patch.
        self._unwire_ports(instance)
        self._wire_ports(instance)
        instance.transition("restart")

    def health(self, instance: NfInstance) -> Health:
        base = super().health(instance)
        if not base.healthy or not instance.is_running:
            return base
        # A live poll-mode app means both inner ports carry a handler;
        # a crashed EAL process leaves them dangling.
        namespace = self.host.namespace(instance.netns)
        for name in instance.inner_devices.values():
            if namespace.device(name)._handler is None:  # noqa: SLF001
                return Health(False, f"poll loop on {name} is gone")
        return base
