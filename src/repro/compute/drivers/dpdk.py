"""DPDK process driver.

Kernel-bypass: the NF polls its ports from user space, burning a core
but skipping the kernel entirely.  The modelled instance wires its two
ports together with direct device handlers (an l2fwd-style app); the
hugepage reservation is charged as RAM.
"""

from __future__ import annotations

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError
from repro.compute.instances import InstanceSpec, NfInstance

__all__ = ["DpdkDriver"]


class DpdkDriver(ComputeDriver):
    technology = Technology.DPDK
    netns_prefix = "dpdk"
    boot_seconds = 2.2  # EAL init + hugepage mapping

    hugepages_mb = 1024.0
    eal_rss_mb = 45.0

    def create(self, spec: InstanceSpec) -> NfInstance:
        if len(spec.logical_ports) != 2:
            raise DriverError(
                "the modelled DPDK app is a two-port forwarder; got "
                f"{len(spec.logical_ports)} ports")
        instance = super().create(spec)
        instance.runtime_ram_mb = self.runtime_ram_mb(instance)
        return instance

    def runtime_ram_mb(self, instance: NfInstance) -> float:
        return self.hugepages_mb + self.eal_rss_mb

    def start(self, instance: NfInstance) -> None:
        # Poll-mode forwarding: patch the two inner devices together,
        # bypassing the namespace stack (kernel bypass).
        namespace = self.host.namespace(instance.netns)
        ports = [namespace.device(name)
                 for name in instance.inner_devices.values()]
        a, b = ports
        a.set_up()
        b.set_up()
        a.attach_handler(lambda dev, frame: b.transmit(frame))
        b.attach_handler(lambda dev, frame: a.transmit(frame))
        instance.transition("start")

    def stop(self, instance: NfInstance) -> None:
        namespace = self.host.namespace(instance.netns)
        for name in instance.inner_devices.values():
            namespace.device(name).detach_handler()
        instance.transition("stop")
