"""The NNF driver — the management driver this paper contributes.

"When a NNF should be used, the compute manager selects a NNF driver
developed as part of this work.  This NNF driver implements the same
abstraction defined for the other compute drivers and dynamically
activates the plugin associated to the selected NNF. [...]  The NNF
driver starts the NNF in a new network namespace, to provide a basic
form of isolation, and configures the NNF with a predefined
configuration script."  (paper §2)

Two instantiation modes:

* **dedicated** — multi-instance plugins get their own namespace with
  one veth per logical port, like any other driver's instance;
* **shared** — sharable plugins get (at most) one component instance;
  additional graphs are attached through the adaptation layer: one
  trunk port, per-graph VLAN subinterfaces, per-graph marks, and the
  plugin's ``add_path`` script building the isolated internal path.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.compute.instances import InstanceSpec, InstanceState, NfInstance
from repro.nnf.plugin import NnfPlugin, PluginContext
from repro.nnf.registry import NnfRegistry
from repro.nnf.sharing import SharedNnfManager
from repro.linuxnet.host import LinuxHost

__all__ = ["NativeDriver"]


class NativeDriver(ComputeDriver):
    technology = Technology.NATIVE
    netns_prefix = "nnf"
    boot_seconds = 0.15  # namespace + a handful of commands

    #: NF process RSS charged for daemon-backed NNFs (strongSwan's
    #: charon measured 19.4 MB in Table 1); rule-only NNFs
    #: (iptables/bridge) cost kernel memory only, a fraction of a MB.
    default_daemon_rss_mb = 19.4
    rules_only_rss_mb = 0.4

    def __init__(self, host: LinuxHost, registry: NnfRegistry,
                 shared: Optional[SharedNnfManager] = None) -> None:
        super().__init__(host, behaviors=registry)
        self.registry = registry
        self.shared = shared if shared is not None else SharedNnfManager()
        self.shared_attachments = 0
        self.dedicated_instances = 0

    # -- plugin selection -----------------------------------------------------------
    def _plugin_for(self, spec: InstanceSpec) -> NnfPlugin:
        plugin_name = spec.implementation.plugin
        if plugin_name is None:
            raise DriverError(
                f"{spec.instance_id}: native implementation without plugin")
        if plugin_name not in self.registry:
            raise DriverError(f"no NNF plugin {plugin_name!r} on this node")
        if not self.registry.is_installed(plugin_name):
            raise DriverError(
                f"NNF plugin {plugin_name!r}: host package "
                f"{self.registry.get(plugin_name).package!r} not installed")
        return self.registry.get(plugin_name)

    # -- create ------------------------------------------------------------------------
    def create(self, spec: InstanceSpec) -> NfInstance:
        plugin = self._plugin_for(spec)
        other_users = self.registry.users(plugin.name) - {spec.graph_id}
        if other_users and not plugin.multi_instance and not plugin.sharable:
            raise DriverError(
                f"NNF {plugin.name} is exclusive and already used by "
                f"graph(s) {sorted(other_users)}")
        if plugin.sharable and (other_users or plugin.single_interface):
            instance = self._create_shared(spec, plugin)
        else:
            instance = self._create_dedicated(spec, plugin)
        self.registry.claim(plugin.name, spec.graph_id)
        self.instances_created += 1
        return instance

    def _create_dedicated(self, spec: InstanceSpec,
                          plugin: NnfPlugin) -> NfInstance:
        instance = self._create_namespace_and_ports(spec)
        instance.plugin_name = plugin.name
        instance.boot_seconds = self.boot_seconds
        instance.runtime_ram_mb = self.runtime_ram_mb(instance)
        instance.transition("create")
        self._run(plugin.create_script(self._context(instance)))
        self.dedicated_instances += 1
        return instance

    def _create_shared(self, spec: InstanceSpec,
                       plugin: NnfPlugin) -> NfInstance:
        shared, created = self.shared.ensure_instance(
            plugin, netns=f"nnf-shared-{plugin.name}")
        if created:
            trunk_outer = f"sh-{plugin.name}"
            self._run([
                f"ip netns add {shared.netns}",
                f"ip link add {trunk_outer} type veth peer name "
                f"{shared.adaptation.trunk_device}",
                f"ip link set {shared.adaptation.trunk_device} netns "
                f"{shared.netns}",
                f"ip link set {trunk_outer} up",
                f"ip netns exec {shared.netns} ip link set "
                f"{shared.adaptation.trunk_device} up",
            ])
            bootstrap = PluginContext(instance_id=shared.instance_id,
                                      netns=shared.netns,
                                      config=dict(spec.config))
            self._run(plugin.create_script(bootstrap))
        # L2 plugins need the same VLAN on every port so the tag
        # survives across the component.
        if plugin.functional_type == "bridge":
            shared.adaptation.per_port_vids = False
        attachment = self.shared.attach(plugin.name, spec.graph_id,
                                        list(spec.logical_ports))
        self._run(shared.adaptation.subinterface_commands(
            shared.netns, attachment))
        trunk_device = self.host.root.device(f"sh-{plugin.name}")
        instance = NfInstance(spec=spec, technology=self.technology,
                              netns=shared.netns, shared=True,
                              mark=attachment.mark,
                              plugin_name=plugin.name)
        instance.boot_seconds = self.boot_seconds if created else 0.05
        for logical in spec.logical_ports:
            instance.switch_devices[logical] = trunk_device
            instance.inner_devices[logical] = \
                attachment.port_devices[logical]
            instance.port_vlans[logical] = attachment.port_vids[logical]
        instance.runtime_ram_mb = (self.runtime_ram_mb(instance)
                                   if created else 0.0)
        instance.transition("create")
        self.shared_attachments += 1
        return instance

    # -- configure / start / destroy -----------------------------------------------
    def configure(self, instance: NfInstance) -> None:
        plugin = self.registry.get(instance.plugin_name)
        if instance.shared:
            self._run(plugin.add_path_script(self._context(instance)))
        else:
            self._run(plugin.configure_script(self._context(instance)))
        instance.transition("configure")

    def start(self, instance: NfInstance) -> None:
        plugin = self.registry.get(instance.plugin_name)
        if instance.shared:
            # Subinterfaces were raised at attach time; the component
            # itself is already live.
            for device in instance.inner_devices.values():
                self._run([f"ip netns exec {instance.netns} "
                           f"ip link set {device} up"])
        else:
            self._run(plugin.start_script(self._context(instance)))
            plugin.post_start(self._context(instance), self.host)
        instance.transition("start")

    def stop(self, instance: NfInstance) -> None:
        plugin = self.registry.get(instance.plugin_name)
        if not instance.shared:
            self._run(plugin.stop_script(self._context(instance)))
            plugin.post_stop(self._context(instance), self.host)
        instance.transition("stop")

    def restart(self, instance: NfInstance) -> None:
        plugin = self.registry.get(instance.plugin_name)
        if instance.shared:
            # The component is shared across graphs — restarting one
            # attachment only re-raises its subinterfaces.
            for device in instance.inner_devices.values():
                self._run([f"ip netns exec {instance.netns} "
                           f"ip link set {device} up"])
            instance.transition("restart")
            return
        try:
            self._run(plugin.stop_script(self._context(instance)))
            plugin.post_stop(self._context(instance), self.host)
        except Exception:
            pass  # dead component may not answer its stop scripts
        self._run(plugin.start_script(self._context(instance)))
        plugin.post_start(self._context(instance), self.host)
        instance.transition("restart")

    def health(self, instance: NfInstance) -> Health:
        base = super().health(instance)
        if not base.healthy:
            return base
        if instance.shared and instance.plugin_name is not None:
            # The shared component must still be registered — a torn
            # down trunk means every attachment of it is dead.
            if self.shared.instance_of(instance.plugin_name) is None:
                return Health(
                    False,
                    f"shared component {instance.plugin_name} released")
        return base

    def _run_best_effort(self, commands: list[str]) -> None:
        """Teardown semantics of the real scripts' ``cmd || true``: a
        rule that was never installed (rolled-back half-deploy) must
        not abort the rest of the cleanup."""
        for command in commands:
            try:
                self._run([command])
            except Exception:
                pass

    def destroy(self, instance: NfInstance) -> None:
        plugin = self.registry.get(instance.plugin_name)
        if instance.shared:
            shared = self.shared.instance_of(plugin.name)
            if shared is not None:
                self._run_best_effort(plugin.remove_path_script(
                    self._context(instance)))
                attachment = self.shared.detach(plugin.name,
                                                instance.graph_id)
                self._run_best_effort(shared.adaptation.teardown_commands(
                    shared.netns, attachment))
                released = self.shared.release_if_unused(plugin.name)
                if released is not None:
                    trunk = f"sh-{plugin.name}"
                    found = self.host.find_device(trunk)
                    if found is not None:
                        ns, device = found
                        if device.peer is not None:
                            device.peer.peer = None
                        ns.remove_device(trunk)
                    self._run([f"ip netns del {released.netns}"])
            self.registry.unclaim(plugin.name, instance.graph_id)
            instance.transition("destroy")
            return
        self.registry.unclaim(plugin.name, instance.graph_id)
        super().destroy(instance)

    # -- context / accounting ---------------------------------------------------------
    def _context(self, instance: NfInstance) -> PluginContext:
        return PluginContext(instance_id=instance.instance_id,
                             netns=instance.netns,
                             ports=dict(instance.inner_devices),
                             config=dict(instance.spec.config),
                             mark=instance.mark)

    def runtime_ram_mb(self, instance: NfInstance) -> float:
        """Native RAM = just the NF process (Table 1: 19.4 MB for
        strongSwan); rule-only components cost well under a MB."""
        plugin = self.registry.get(instance.plugin_name)
        daemon_backed = plugin.functional_type in ("ipsec-endpoint",
                                                   "dhcp-server")
        if daemon_backed:
            text = instance.spec.config.get("nf_rss_mb")
            return float(text) if text else self.default_daemon_rss_mb
        return self.rules_only_rss_mb
