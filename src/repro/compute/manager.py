"""The compute manager: driver registry + instance tracking.

Paper §2: "VNFs are instantiated and managed by a compute manager
through ad-hoc drivers matching the specific VNF support technology".
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.compute.instances import InstanceSpec, NfInstance

__all__ = ["ComputeManager"]


class ComputeManager:
    """Dispatches lifecycle verbs to the driver for each technology."""

    def __init__(self) -> None:
        self._drivers: dict[Technology, ComputeDriver] = {}
        self._instances: dict[str, NfInstance] = {}

    # -- drivers ---------------------------------------------------------------
    def register_driver(self, driver: ComputeDriver) -> None:
        if driver.technology in self._drivers:
            raise ValueError(
                f"driver for {driver.technology.value} already registered")
        self._drivers[driver.technology] = driver

    def driver(self, technology: Technology) -> ComputeDriver:
        try:
            return self._drivers[technology]
        except KeyError:
            raise DriverError(
                f"no driver for technology {technology.value!r}; "
                f"available: {[t.value for t in self._drivers]}") from None

    @property
    def technologies(self) -> list[Technology]:
        return list(self._drivers)

    # -- instance lifecycle -----------------------------------------------------
    def create(self, spec: InstanceSpec) -> NfInstance:
        if spec.instance_id in self._instances:
            raise DriverError(
                f"instance {spec.instance_id!r} already exists")
        driver = self.driver(spec.implementation.technology)
        instance = driver.create(spec)
        self._instances[spec.instance_id] = instance
        return instance

    def configure(self, instance_id: str) -> None:
        instance = self.get(instance_id)
        self.driver(instance.technology).configure(instance)

    def start(self, instance_id: str) -> None:
        instance = self.get(instance_id)
        self.driver(instance.technology).start(instance)

    def stop(self, instance_id: str) -> None:
        instance = self.get(instance_id)
        self.driver(instance.technology).stop(instance)

    def update(self, instance_id: str, config: dict[str, str]) -> None:
        instance = self.get(instance_id)
        self.driver(instance.technology).update(instance, config)

    def restart(self, instance_id: str) -> None:
        """In-place heal of a FAILED instance (reconciler verb)."""
        instance = self.get(instance_id)
        self.driver(instance.technology).restart(instance)

    def health(self, instance_id: str) -> Health:
        """Probe the instance through its technology driver."""
        instance = self.get(instance_id)
        return self.driver(instance.technology).health(instance)

    def destroy(self, instance_id: str) -> NfInstance:
        instance = self.get(instance_id)
        self.driver(instance.technology).destroy(instance)
        del self._instances[instance_id]
        return instance

    # -- queries ------------------------------------------------------------------
    def get(self, instance_id: str) -> NfInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise DriverError(f"no instance {instance_id!r}") from None

    def instances(self, graph_id: Optional[str] = None) -> list[NfInstance]:
        rows = list(self._instances.values())
        if graph_id is not None:
            rows = [i for i in rows if i.graph_id == graph_id]
        return rows

    def total_runtime_ram_mb(self) -> float:
        return sum(i.runtime_ram_mb for i in self._instances.values())
