"""NF instance records and their lifecycle state machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.catalog.templates import NfImplementation, Technology
from repro.linuxnet.devices import NetDevice
from repro.resources.accounting import Allocation

__all__ = ["InstanceSpec", "InstanceState", "LifecycleError", "NfInstance"]


class LifecycleError(Exception):
    """Invalid state transition requested."""


class InstanceState(Enum):
    INIT = "init"
    CREATED = "created"
    CONFIGURED = "configured"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"
    DESTROYED = "destroyed"


#: Legal transitions: operation -> (allowed source states, target state).
#: ``fail`` records a health-probe failure (the reconciler's detection
#: path); ``restart`` is the in-place heal — the driver re-runs its
#: start machinery on the surviving namespace/ports.
_TRANSITIONS: dict[str, tuple[tuple[InstanceState, ...], InstanceState]] = {
    "create": ((InstanceState.INIT,), InstanceState.CREATED),
    "configure": ((InstanceState.CREATED,), InstanceState.CONFIGURED),
    "start": ((InstanceState.CONFIGURED, InstanceState.STOPPED),
              InstanceState.RUNNING),
    "stop": ((InstanceState.RUNNING,), InstanceState.STOPPED),
    "update": ((InstanceState.RUNNING,), InstanceState.RUNNING),
    "fail": ((InstanceState.RUNNING,), InstanceState.FAILED),
    "restart": ((InstanceState.FAILED,), InstanceState.RUNNING),
    "destroy": ((InstanceState.CREATED, InstanceState.CONFIGURED,
                 InstanceState.RUNNING, InstanceState.STOPPED,
                 InstanceState.FAILED),
                InstanceState.DESTROYED),
}


@dataclass(frozen=True)
class InstanceSpec:
    """What the orchestrator asks a driver to instantiate."""

    instance_id: str
    graph_id: str
    nf_id: str
    template_name: str
    functional_type: str
    logical_ports: tuple[str, ...]
    implementation: NfImplementation
    config: dict[str, str] = field(default_factory=dict)


@dataclass
class NfInstance:
    """A live (or torn-down) network function."""

    spec: InstanceSpec
    technology: Technology
    netns: str
    state: InstanceState = InstanceState.INIT
    #: logical port -> device in the root namespace (LSI attachment side)
    switch_devices: dict[str, NetDevice] = field(default_factory=dict)
    #: logical port -> device name inside the instance namespace
    inner_devices: dict[str, str] = field(default_factory=dict)
    #: logical port -> VLAN id the steering layer must push (shared NNFs)
    port_vlans: dict[str, Optional[int]] = field(default_factory=dict)
    allocation: Optional[Allocation] = None
    boot_seconds: float = 0.0
    runtime_ram_mb: float = 0.0
    shared: bool = False
    mark: Optional[int] = None
    plugin_name: Optional[str] = None

    @property
    def instance_id(self) -> str:
        return self.spec.instance_id

    @property
    def graph_id(self) -> str:
        return self.spec.graph_id

    @property
    def is_running(self) -> bool:
        return self.state is InstanceState.RUNNING

    @property
    def is_failed(self) -> bool:
        return self.state is InstanceState.FAILED

    def transition(self, operation: str) -> None:
        """Apply a lifecycle operation or raise :class:`LifecycleError`."""
        try:
            allowed, target = _TRANSITIONS[operation]
        except KeyError:
            raise LifecycleError(f"unknown operation {operation!r}") from None
        if self.state not in allowed:
            raise LifecycleError(
                f"{self.instance_id}: cannot {operation} from state "
                f"{self.state.value}")
        self.state = target

    def unique_switch_devices(self) -> list[NetDevice]:
        """Deduplicated root-side devices (a shared NNF trunk appears
        once even though several logical ports map onto it)."""
        seen: list[NetDevice] = []
        for device in self.switch_devices.values():
            if device not in seen:
                seen.append(device)
        return seen

    def __repr__(self) -> str:
        return (f"<NfInstance {self.instance_id} "
                f"[{self.technology.value}] {self.state.value}>")
