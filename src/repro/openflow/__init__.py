"""OpenFlow-style control channel between controllers and LSIs.

Each LSI in the compute node "is managed by its own OpenFlow controller
that dynamically inserts the proper rules in flow table(s)" (paper §2).
This package implements a binary, struct-packed message codec modelled
on OpenFlow 1.0 (HELLO / FEATURES / FLOW_MOD / PACKET_IN / PACKET_OUT /
STATS / BARRIER), an in-process channel that really serialises every
message to bytes and back, the switch-side agent, and the controller
class the traffic-steering manager drives.

The wire format is OpenFlow-*inspired* rather than byte-compatible
with the IETF spec (see DESIGN.md §2): the message set, semantics and
programming model match what the un-orchestrator exercises.
"""

from repro.openflow.channel import ControlChannel
from repro.openflow.controller import LsiController
from repro.openflow.messages import (
    FlowModCommand,
    OfpType,
    decode_message,
    encode_flow_mod,
    encode_hello,
    encode_packet_in,
)
from repro.openflow.agent import SwitchAgent

__all__ = [
    "ControlChannel",
    "FlowModCommand",
    "LsiController",
    "OfpType",
    "SwitchAgent",
    "decode_message",
    "encode_flow_mod",
    "encode_hello",
    "encode_packet_in",
]
