"""Binary codec for the control-channel messages.

Every message is ``header || body`` with the 8-byte header::

    version (B) | type (B) | length (H) | xid (I)

Matches are encoded as TLV lists, actions as typed records — the same
shape OpenFlow uses, with simplified field layouts.  All multi-byte
integers are network byte order.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.addresses import MacAddress, int_to_ip, ip_to_int, parse_cidr
from repro.switch.actions import (
    Action,
    Controller,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    SetField,
)
from repro.switch.flowtable import FlowMatch

__all__ = [
    "CodecError",
    "FlowModCommand",
    "OFP_VERSION",
    "OfpType",
    "decode_message",
    "encode_barrier",
    "encode_echo",
    "encode_error",
    "encode_features_reply",
    "encode_features_request",
    "encode_flow_mod",
    "encode_hello",
    "encode_packet_in",
    "encode_packet_out",
    "encode_stats_reply",
    "encode_stats_request",
]

OFP_VERSION = 0x01

_HEADER = struct.Struct("!BBHI")


class CodecError(Exception):
    """Malformed message bytes."""


class OfpType(enum.IntEnum):
    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    PACKET_IN = 10
    PACKET_OUT = 13
    FLOW_MOD = 14
    STATS_REQUEST = 16
    STATS_REPLY = 17
    BARRIER_REQUEST = 18
    BARRIER_REPLY = 19


class FlowModCommand(enum.IntEnum):
    ADD = 0
    DELETE = 3
    DELETE_STRICT = 4


# -- match TLVs ---------------------------------------------------------------

_MF_IN_PORT = 1
_MF_ETH_SRC = 2
_MF_ETH_DST = 3
_MF_ETH_TYPE = 4
_MF_VLAN_VID = 5
_MF_IP_SRC = 6
_MF_IP_DST = 7
_MF_IP_PROTO = 8
_MF_TP_SRC = 9
_MF_TP_DST = 10


def _encode_match(match: FlowMatch) -> bytes:
    out = bytearray()

    def tlv(field_id: int, payload: bytes) -> None:
        out.extend(struct.pack("!BB", field_id, len(payload)))
        out.extend(payload)

    if match.in_port is not None:
        tlv(_MF_IN_PORT, struct.pack("!H", match.in_port))
    if match.eth_src is not None:
        tlv(_MF_ETH_SRC, match.eth_src.packed)
    if match.eth_dst is not None:
        tlv(_MF_ETH_DST, match.eth_dst.packed)
    if match.eth_type is not None:
        tlv(_MF_ETH_TYPE, struct.pack("!H", match.eth_type))
    if match.vlan_vid is not None:
        tlv(_MF_VLAN_VID, struct.pack("!h", match.vlan_vid))
    if match.ip_src is not None:
        network, plen = parse_cidr(
            match.ip_src if "/" in match.ip_src else match.ip_src + "/32")
        tlv(_MF_IP_SRC, struct.pack("!IB", network, plen))
    if match.ip_dst is not None:
        network, plen = parse_cidr(
            match.ip_dst if "/" in match.ip_dst else match.ip_dst + "/32")
        tlv(_MF_IP_DST, struct.pack("!IB", network, plen))
    if match.ip_proto is not None:
        tlv(_MF_IP_PROTO, struct.pack("!B", match.ip_proto))
    if match.tp_src is not None:
        tlv(_MF_TP_SRC, struct.pack("!H", match.tp_src))
    if match.tp_dst is not None:
        tlv(_MF_TP_DST, struct.pack("!H", match.tp_dst))
    return struct.pack("!H", len(out)) + bytes(out)


def _decode_match(data: bytes, offset: int) -> tuple[FlowMatch, int]:
    if offset + 2 > len(data):
        raise CodecError("truncated match length")
    (length,) = struct.unpack_from("!H", data, offset)
    offset += 2
    end = offset + length
    if end > len(data):
        raise CodecError("truncated match body")
    kwargs: dict = {}
    while offset < end:
        field_id, flen = struct.unpack_from("!BB", data, offset)
        offset += 2
        payload = data[offset:offset + flen]
        if len(payload) != flen:
            raise CodecError("truncated match TLV")
        offset += flen
        if field_id == _MF_IN_PORT:
            kwargs["in_port"] = struct.unpack("!H", payload)[0]
        elif field_id == _MF_ETH_SRC:
            kwargs["eth_src"] = MacAddress(payload)
        elif field_id == _MF_ETH_DST:
            kwargs["eth_dst"] = MacAddress(payload)
        elif field_id == _MF_ETH_TYPE:
            kwargs["eth_type"] = struct.unpack("!H", payload)[0]
        elif field_id == _MF_VLAN_VID:
            kwargs["vlan_vid"] = struct.unpack("!h", payload)[0]
        elif field_id == _MF_IP_SRC:
            network, plen = struct.unpack("!IB", payload)
            kwargs["ip_src"] = f"{int_to_ip(network)}/{plen}"
        elif field_id == _MF_IP_DST:
            network, plen = struct.unpack("!IB", payload)
            kwargs["ip_dst"] = f"{int_to_ip(network)}/{plen}"
        elif field_id == _MF_IP_PROTO:
            kwargs["ip_proto"] = payload[0]
        elif field_id == _MF_TP_SRC:
            kwargs["tp_src"] = struct.unpack("!H", payload)[0]
        elif field_id == _MF_TP_DST:
            kwargs["tp_dst"] = struct.unpack("!H", payload)[0]
        else:
            raise CodecError(f"unknown match field {field_id}")
    return FlowMatch(**kwargs), end


# -- action records ------------------------------------------------------------

_AT_OUTPUT = 0
_AT_PUSH_VLAN = 1
_AT_POP_VLAN = 2
_AT_SET_ETH_SRC = 3
_AT_SET_ETH_DST = 4
_AT_SET_VLAN_VID = 5
_AT_CONTROLLER = 6
# OpenFlow 1.1+ "select" group, flattened: the hash-balanced replica
# port set travels inline as a count-prefixed port list.
_AT_SELECT = 7


def _encode_actions(actions: Sequence[Action]) -> bytes:
    out = bytearray()

    def record(atype: int, payload: bytes = b"") -> None:
        out.extend(struct.pack("!BB", atype, len(payload)))
        out.extend(payload)

    for action in actions:
        if isinstance(action, Output):
            record(_AT_OUTPUT, struct.pack("!H", action.port))
        elif isinstance(action, PushVlan):
            record(_AT_PUSH_VLAN, struct.pack("!HB", action.vid, action.pcp))
        elif isinstance(action, PopVlan):
            record(_AT_POP_VLAN)
        elif isinstance(action, Controller):
            record(_AT_CONTROLLER, struct.pack("!H", action.max_len))
        elif isinstance(action, SelectOutput):
            # Count-prefixed port list, then the (possibly empty)
            # state-group id: the group names a per-flow state table
            # on the executing datapath, so it must survive the wire
            # hop from controller to agent like any other action field.
            group = (action.group or "").encode("utf-8")
            record(_AT_SELECT, struct.pack(
                f"!H{len(action.ports)}H", len(action.ports),
                *action.ports) + struct.pack("!B", 1 if action.group
                                             is not None else 0) + group)
        elif isinstance(action, SetField):
            if action.field == "eth_src":
                record(_AT_SET_ETH_SRC, MacAddress(action.value).packed)
            elif action.field == "eth_dst":
                record(_AT_SET_ETH_DST, MacAddress(action.value).packed)
            else:
                record(_AT_SET_VLAN_VID, struct.pack("!H", int(action.value)))
        else:  # pragma: no cover - closed union
            raise CodecError(f"unencodable action {action!r}")
    return struct.pack("!H", len(out)) + bytes(out)


def _decode_actions(data: bytes, offset: int) -> tuple[list[Action], int]:
    if offset + 2 > len(data):
        raise CodecError("truncated action list length")
    (length,) = struct.unpack_from("!H", data, offset)
    offset += 2
    end = offset + length
    if end > len(data):
        raise CodecError("truncated action list")
    actions: list[Action] = []
    while offset < end:
        atype, alen = struct.unpack_from("!BB", data, offset)
        offset += 2
        payload = data[offset:offset + alen]
        if len(payload) != alen:
            raise CodecError("truncated action record")
        offset += alen
        if atype == _AT_OUTPUT:
            actions.append(Output(struct.unpack("!H", payload)[0]))
        elif atype == _AT_PUSH_VLAN:
            vid, pcp = struct.unpack("!HB", payload)
            actions.append(PushVlan(vid, pcp))
        elif atype == _AT_POP_VLAN:
            actions.append(PopVlan())
        elif atype == _AT_CONTROLLER:
            actions.append(Controller(struct.unpack("!H", payload)[0]))
        elif atype == _AT_SELECT:
            if len(payload) < 2:
                raise CodecError("truncated select-output action")
            (count,) = struct.unpack_from("!H", payload)
            ports_end = 2 + 2 * count
            if count == 0 or len(payload) < ports_end:
                raise CodecError("malformed select-output action")
            ports = struct.unpack_from(f"!{count}H", payload, 2)
            group: "str | None" = None
            tail = payload[ports_end:]
            if tail:
                # Flagged state-group id (absent in records encoded
                # before stateful selects existed — those decode to a
                # stateless spread, which is what they meant).
                if tail[0] == 1:
                    group = tail[1:].decode("utf-8")
                elif tail[0] != 0 or len(tail) > 1:
                    raise CodecError("malformed select-output group")
            actions.append(SelectOutput(ports, group=group))
        elif atype == _AT_SET_ETH_SRC:
            actions.append(SetField("eth_src", MacAddress(payload)))
        elif atype == _AT_SET_ETH_DST:
            actions.append(SetField("eth_dst", MacAddress(payload)))
        elif atype == _AT_SET_VLAN_VID:
            actions.append(SetField("vlan_vid",
                                    struct.unpack("!H", payload)[0]))
        else:
            raise CodecError(f"unknown action type {atype}")
    return actions, end


# -- decoded message views -------------------------------------------------------

@dataclass
class Message:
    """Decoded message; body fields populated per type."""

    msg_type: OfpType
    xid: int
    # FLOW_MOD
    command: Optional[FlowModCommand] = None
    match: Optional[FlowMatch] = None
    actions: list[Action] = field(default_factory=list)
    priority: int = 0
    cookie: int = 0
    # PACKET_IN / PACKET_OUT
    in_port: int = 0
    frame: bytes = b""
    reason: int = 0
    # FEATURES_REPLY
    dpid: int = 0
    port_names: dict[int, str] = field(default_factory=dict)
    # STATS
    stats_kind: int = 0
    stats: list = field(default_factory=list)
    # ERROR / ECHO
    code: int = 0
    payload: bytes = b""


def _pack(msg_type: OfpType, xid: int, body: bytes) -> bytes:
    total = _HEADER.size + len(body)
    if total > 0xFFFF:
        raise CodecError(f"message too large: {total} bytes")
    return _HEADER.pack(OFP_VERSION, int(msg_type), total, xid) + body


def encode_hello(xid: int) -> bytes:
    return _pack(OfpType.HELLO, xid, b"")


def encode_echo(xid: int, payload: bytes = b"",
                reply: bool = False) -> bytes:
    kind = OfpType.ECHO_REPLY if reply else OfpType.ECHO_REQUEST
    return _pack(kind, xid, payload)


def encode_error(xid: int, code: int, detail: bytes = b"") -> bytes:
    return _pack(OfpType.ERROR, xid, struct.pack("!H", code) + detail)


def encode_features_request(xid: int) -> bytes:
    return _pack(OfpType.FEATURES_REQUEST, xid, b"")


def encode_features_reply(xid: int, dpid: int,
                          ports: dict[int, str]) -> bytes:
    body = bytearray(struct.pack("!QH", dpid, len(ports)))
    for port_no, name in sorted(ports.items()):
        raw = name.encode()[:16]
        body.extend(struct.pack("!H16s", port_no, raw))
    return _pack(OfpType.FEATURES_REPLY, xid, bytes(body))


def encode_flow_mod(xid: int, command: FlowModCommand, match: FlowMatch,
                    actions: Sequence[Action] = (), priority: int = 100,
                    cookie: int = 0) -> bytes:
    body = struct.pack("!BHQ", int(command), priority, cookie)
    body += _encode_match(match)
    body += _encode_actions(actions)
    return _pack(OfpType.FLOW_MOD, xid, body)


def encode_packet_in(xid: int, in_port: int, reason: int,
                     frame: bytes) -> bytes:
    return _pack(OfpType.PACKET_IN, xid,
                 struct.pack("!HB", in_port, reason) + frame)


def encode_packet_out(xid: int, in_port: int, actions: Sequence[Action],
                      frame: bytes) -> bytes:
    body = struct.pack("!H", in_port) + _encode_actions(actions) + frame
    return _pack(OfpType.PACKET_OUT, xid, body)


def encode_barrier(xid: int, reply: bool = False) -> bytes:
    kind = OfpType.BARRIER_REPLY if reply else OfpType.BARRIER_REQUEST
    return _pack(kind, xid, b"")


#: stats kinds
STATS_FLOW = 1
STATS_PORT = 2


def encode_stats_request(xid: int, kind: int) -> bytes:
    return _pack(OfpType.STATS_REQUEST, xid, struct.pack("!B", kind))


def encode_stats_reply(xid: int, kind: int,
                       rows: Sequence[tuple]) -> bytes:
    body = bytearray(struct.pack("!BH", kind, len(rows)))
    for row in rows:
        if kind == STATS_FLOW:
            priority, packets, nbytes, match = row
            body.extend(struct.pack("!HQQ", priority, packets, nbytes))
            body.extend(_encode_match(match))
        else:
            port_no, rx_packets, tx_packets, rx_bytes, tx_bytes = row
            body.extend(struct.pack("!HQQQQ", port_no, rx_packets,
                                    tx_packets, rx_bytes, tx_bytes))
    return _pack(OfpType.STATS_REPLY, xid, bytes(body))


def decode_message(data: bytes) -> Message:
    """Decode one complete message; raises :class:`CodecError` on junk."""
    if len(data) < _HEADER.size:
        raise CodecError("truncated header")
    version, raw_type, length, xid = _HEADER.unpack_from(data, 0)
    if version != OFP_VERSION:
        raise CodecError(f"unsupported version {version}")
    if length != len(data):
        raise CodecError(f"length field {length} != buffer {len(data)}")
    try:
        msg_type = OfpType(raw_type)
    except ValueError:
        raise CodecError(f"unknown message type {raw_type}") from None
    message = Message(msg_type=msg_type, xid=xid)
    body = data[_HEADER.size:]
    if msg_type in (OfpType.HELLO, OfpType.FEATURES_REQUEST,
                    OfpType.BARRIER_REQUEST, OfpType.BARRIER_REPLY):
        return message
    if msg_type in (OfpType.ECHO_REQUEST, OfpType.ECHO_REPLY):
        message.payload = body
        return message
    if msg_type == OfpType.ERROR:
        (message.code,) = struct.unpack_from("!H", body, 0)
        message.payload = body[2:]
        return message
    if msg_type == OfpType.FEATURES_REPLY:
        dpid, count = struct.unpack_from("!QH", body, 0)
        message.dpid = dpid
        offset = 10
        for _ in range(count):
            port_no, raw_name = struct.unpack_from("!H16s", body, offset)
            offset += 18
            message.port_names[port_no] = raw_name.rstrip(b"\x00").decode()
        return message
    if msg_type == OfpType.FLOW_MOD:
        command, priority, cookie = struct.unpack_from("!BHQ", body, 0)
        message.command = FlowModCommand(command)
        message.priority = priority
        message.cookie = cookie
        match, offset = _decode_match(body, 11)
        message.match = match
        message.actions, _offset = _decode_actions(body, offset)
        return message
    if msg_type == OfpType.PACKET_IN:
        in_port, reason = struct.unpack_from("!HB", body, 0)
        message.in_port = in_port
        message.reason = reason
        message.frame = body[3:]
        return message
    if msg_type == OfpType.PACKET_OUT:
        (in_port,) = struct.unpack_from("!H", body, 0)
        message.in_port = in_port
        message.actions, offset = _decode_actions(body, 2)
        message.frame = body[offset:]
        return message
    if msg_type == OfpType.STATS_REQUEST:
        message.stats_kind = body[0]
        return message
    if msg_type == OfpType.STATS_REPLY:
        kind, count = struct.unpack_from("!BH", body, 0)
        message.stats_kind = kind
        offset = 3
        for _ in range(count):
            if kind == STATS_FLOW:
                priority, packets, nbytes = struct.unpack_from(
                    "!HQQ", body, offset)
                offset += 18
                match, offset = _decode_match(body, offset)
                message.stats.append((priority, packets, nbytes, match))
            else:
                row = struct.unpack_from("!HQQQQ", body, offset)
                offset += 34
                message.stats.append(row)
        return message
    raise CodecError(f"no decoder for {msg_type}")  # pragma: no cover
