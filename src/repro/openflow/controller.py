"""Per-LSI OpenFlow controller.

The traffic-steering manager instantiates one of these per LSI (as in
Figure 1) and drives the flow tables exclusively through it, so every
steering decision crosses the binary control channel.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from repro.openflow.channel import ControlChannel
from repro.openflow.messages import (
    FlowModCommand,
    Message,
    OfpType,
    decode_message,
    encode_features_request,
    encode_flow_mod,
    encode_hello,
    encode_packet_out,
    encode_stats_request,
    STATS_FLOW,
    STATS_PORT,
)
from repro.switch.actions import Action
from repro.switch.flowtable import FlowMatch

__all__ = ["LsiController"]

PacketInCallback = Callable[[int, bytes], None]


class LsiController:
    """Controller endpoint: handshake, flow programming, stats."""

    def __init__(self, channel: ControlChannel, name: str = "ctrl") -> None:
        self.channel = channel
        self.name = name
        self._xids = itertools.count(1)
        self.dpid: Optional[int] = None
        self.ports: dict[int, str] = {}
        self.connected = False
        self.flow_mods_sent = 0
        self.packet_ins = 0
        self.packet_in_callback: Optional[PacketInCallback] = None
        self._pending_stats: list = []
        channel.controller_end.on_receive(self._on_bytes)

    # -- handshake -----------------------------------------------------------
    def handshake(self) -> None:
        """HELLO exchange followed by a features request."""
        self.channel.controller_end.send(encode_hello(next(self._xids)))
        self.channel.controller_end.send(
            encode_features_request(next(self._xids)))
        if self.dpid is None:
            raise RuntimeError(f"{self.name}: features reply not received")
        self.connected = True

    # -- flow programming -------------------------------------------------------
    def flow_add(self, match: FlowMatch, actions: Sequence[Action],
                 priority: int = 100, cookie: int = 0) -> None:
        self.flow_mods_sent += 1
        self.channel.controller_end.send(encode_flow_mod(
            next(self._xids), FlowModCommand.ADD, match, actions,
            priority=priority, cookie=cookie))

    def flow_delete(self, match: FlowMatch,
                    cookie: int = 0, strict: bool = False,
                    priority: int = 0) -> None:
        self.flow_mods_sent += 1
        command = (FlowModCommand.DELETE_STRICT if strict
                   else FlowModCommand.DELETE)
        self.channel.controller_end.send(encode_flow_mod(
            next(self._xids), command, match, (), priority=priority,
            cookie=cookie))

    def flow_delete_by_cookie(self, cookie: int) -> None:
        """Remove every flow installed with ``cookie`` (graph teardown)."""
        self.flow_delete(FlowMatch(), cookie=cookie)

    def packet_out(self, in_port: int, actions: Sequence[Action],
                   frame_bytes: bytes) -> None:
        self.channel.controller_end.send(encode_packet_out(
            next(self._xids), in_port, actions, frame_bytes))

    # -- stats ----------------------------------------------------------------
    def flow_stats(self) -> list:
        self._pending_stats = []
        self.channel.controller_end.send(
            encode_stats_request(next(self._xids), STATS_FLOW))
        return self._pending_stats

    def port_stats(self) -> list:
        self._pending_stats = []
        self.channel.controller_end.send(
            encode_stats_request(next(self._xids), STATS_PORT))
        return self._pending_stats

    # -- inbound ---------------------------------------------------------------
    def _on_bytes(self, data: bytes) -> None:
        message = decode_message(data)
        if message.msg_type is OfpType.FEATURES_REPLY:
            self.dpid = message.dpid
            self.ports = dict(message.port_names)
        elif message.msg_type is OfpType.PACKET_IN:
            self.packet_ins += 1
            if self.packet_in_callback is not None:
                self.packet_in_callback(message.in_port, message.frame)
        elif message.msg_type is OfpType.STATS_REPLY:
            self._pending_stats.extend(message.stats)
        elif message.msg_type is OfpType.ERROR:
            raise RuntimeError(
                f"{self.name}: switch reported error code {message.code}")
        # HELLO/ECHO/BARRIER replies need no action.
