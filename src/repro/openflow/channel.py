"""Control channel: byte-stream pipe between controller and switch agent.

Both endpoints exchange *encoded* messages — every FLOW_MOD the
steering manager sends really round-trips through the binary codec, so
codec regressions surface in integration tests, not just unit tests.
Delivery is synchronous (in-process); message and byte counters feed
the orchestration-scalability bench.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["ChannelClosed", "ControlChannel", "Endpoint"]

Receiver = Callable[[bytes], None]


class ChannelClosed(Exception):
    """Send on a closed channel."""


class Endpoint:
    """One side of the channel."""

    def __init__(self, channel: "ControlChannel", label: str) -> None:
        self.channel = channel
        self.label = label
        self.receiver: Optional[Receiver] = None
        self.tx_messages = 0
        self.rx_messages = 0
        self.tx_bytes = 0

    def on_receive(self, receiver: Receiver) -> None:
        self.receiver = receiver

    def send(self, data: bytes) -> None:
        if self.channel.closed:
            raise ChannelClosed(f"channel {self.channel.name} is closed")
        self.tx_messages += 1
        self.tx_bytes += len(data)
        far = self.channel.far_end(self)
        far.rx_messages += 1
        if far.receiver is None:
            self.channel.undelivered.append((far.label, data))
        else:
            far.receiver(data)


class ControlChannel:
    """A pair of endpoints; bytes written to one pop out of the other."""

    def __init__(self, name: str = "of-channel") -> None:
        self.name = name
        self.controller_end = Endpoint(self, "controller")
        self.switch_end = Endpoint(self, "switch")
        self.closed = False
        self.undelivered: list[tuple[str, bytes]] = []

    def far_end(self, endpoint: Endpoint) -> Endpoint:
        if endpoint is self.controller_end:
            return self.switch_end
        if endpoint is self.switch_end:
            return self.controller_end
        raise ValueError("endpoint not on this channel")

    def close(self) -> None:
        self.closed = True

    @property
    def messages_exchanged(self) -> int:
        return self.controller_end.tx_messages + self.switch_end.tx_messages
