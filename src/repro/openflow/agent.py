"""Switch-side protocol endpoint: applies FLOW_MODs to the datapath.

The agent owns the switch end of a :class:`ControlChannel`, decodes
incoming messages, mutates the flow table, answers FEATURES/STATS/
BARRIER, and punts table-miss frames upstream as PACKET_INs.
"""

from __future__ import annotations

import itertools

from repro.net.ethernet import EthernetFrame
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import (
    CodecError,
    FlowModCommand,
    Message,
    OfpType,
    STATS_FLOW,
    STATS_PORT,
    decode_message,
    encode_barrier,
    encode_echo,
    encode_error,
    encode_features_reply,
    encode_hello,
    encode_packet_in,
    encode_stats_reply,
)
from repro.switch.datapath import Datapath
from repro.switch.flowtable import FlowEntry

__all__ = ["SwitchAgent"]

#: PACKET_IN reason codes
REASON_NO_MATCH = 0
REASON_ACTION = 1

_ERR_BAD_REQUEST = 1
_ERR_BAD_FLOW_MOD = 2


class SwitchAgent:
    """Binds a :class:`Datapath` to the switch end of a channel."""

    def __init__(self, datapath: Datapath, channel: ControlChannel) -> None:
        self.datapath = datapath
        self.channel = channel
        self._xids = itertools.count(1)
        self.flow_mods_applied = 0
        self.errors_sent = 0
        channel.switch_end.on_receive(self._on_bytes)
        datapath.packet_in_handler = self._on_table_miss

    # -- switch -> controller ------------------------------------------------
    def _on_table_miss(self, datapath: Datapath, in_port: int,
                       frame: EthernetFrame) -> None:
        self.channel.switch_end.send(encode_packet_in(
            next(self._xids), in_port, REASON_NO_MATCH, frame.to_bytes()))

    # -- controller -> switch ------------------------------------------------
    def _on_bytes(self, data: bytes) -> None:
        try:
            message = decode_message(data)
        except CodecError:
            self.errors_sent += 1
            self.channel.switch_end.send(
                encode_error(0, _ERR_BAD_REQUEST))
            return
        handler = getattr(self, f"_handle_{message.msg_type.name.lower()}",
                          None)
        if handler is None:
            self.errors_sent += 1
            self.channel.switch_end.send(
                encode_error(message.xid, _ERR_BAD_REQUEST))
            return
        handler(message)

    def _handle_hello(self, message: Message) -> None:
        self.channel.switch_end.send(encode_hello(message.xid))

    def _handle_echo_request(self, message: Message) -> None:
        self.channel.switch_end.send(
            encode_echo(message.xid, message.payload, reply=True))

    def _handle_features_request(self, message: Message) -> None:
        ports = {number: port.name
                 for number, port in self.datapath.ports.items()}
        self.channel.switch_end.send(encode_features_reply(
            message.xid, self.datapath.dpid, ports))

    def _handle_flow_mod(self, message: Message) -> None:
        if message.match is None or message.command is None:
            self.errors_sent += 1
            self.channel.switch_end.send(
                encode_error(message.xid, _ERR_BAD_FLOW_MOD))
            return
        if message.command is FlowModCommand.ADD:
            self.datapath.table.add(FlowEntry(
                match=message.match, actions=tuple(message.actions),
                priority=message.priority, cookie=message.cookie))
        elif message.command is FlowModCommand.DELETE:
            self.datapath.table.delete(match=message.match,
                                       cookie=message.cookie or None)
        else:  # DELETE_STRICT
            self.datapath.table.delete(match=message.match,
                                       priority=message.priority,
                                       strict=True)
        self.flow_mods_applied += 1

    def _handle_packet_out(self, message: Message) -> None:
        # One-shot action list: interpret it directly instead of
        # building (and compiling) a throwaway FlowEntry per message.
        frame = EthernetFrame.from_bytes(message.frame)
        self.datapath.execute_interpreted(tuple(message.actions),
                                          message.in_port, frame)

    def _handle_barrier_request(self, message: Message) -> None:
        # All processing is synchronous: the barrier is trivially met.
        self.channel.switch_end.send(encode_barrier(message.xid, reply=True))

    def _handle_stats_request(self, message: Message) -> None:
        if message.stats_kind == STATS_FLOW:
            rows = [(entry.priority, entry.packets, entry.bytes, entry.match)
                    for entry in self.datapath.table]
            self.channel.switch_end.send(encode_stats_reply(
                message.xid, STATS_FLOW, rows))
            return
        rows = [(number, port.rx_packets, port.tx_packets,
                 port.rx_bytes, port.tx_bytes)
                for number, port in sorted(self.datapath.ports.items())]
        self.channel.switch_end.send(encode_stats_reply(
            message.xid, STATS_PORT, rows))
