#!/usr/bin/env python3
"""Self-healing: kill an NF and watch the reconciler bring it back.

The orchestrator is no longer a one-shot pipeline — deploy/update set
*desired* state and a reconciliation engine keeps the *observed* state
converged to it.  This example:

1. deploys a NAT -> DPI chain (both Docker, so each has its own
   instance to lose);
2. simulates a container crash by deleting the DPI's network namespace
   out from under it — exactly what the driver health probe checks;
3. runs one reconcile: the probe marks the instance FAILED, restart
   cannot help (the substrate is gone), so the engine recreates it and
   reinstalls *only the DPI's* steering rules;
4. prints the append-only event journal of the whole recovery and
   proves the untouched NAT rules kept their flow counters.

Run:  PYTHONPATH=src python examples/self_healing.py
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame
from repro.resources.capabilities import NodeCapabilities

CLIENT = MacAddress("02:aa:00:00:00:01")
GATEWAY = MacAddress("02:aa:00:00:00:02")


def build_graph() -> Nffg:
    graph = Nffg(graph_id="edge-chain", name="NAT + DPI chain")
    graph.add_nf("nat1", "nat", technology="docker", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1",
    })
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r3", "vnf:dpi1:out", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan")
    return graph


def nat_ingress_counters(node) -> list[tuple[int, int]]:
    """(entry_id, packets) of the LAN->NAT rule's flow entries."""
    steering = node.steering
    network = steering.graph_network("edge-chain")
    rows = []
    for controller, match, priority in network.installed["r1"].segments:
        datapath = (steering.base.datapath
                    if controller is steering.base_controller
                    else network.lsi.datapath)
        for entry in datapath.table:
            if entry.match == match and entry.priority == priority:
                rows.append((entry.entry_id, entry.packets))
    return rows


def main() -> None:
    node = ComputeNode("dc-edge",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    node.deploy(build_graph())
    print("deployed:", node.orchestrator.status("edge-chain")["nfs"])

    # Traffic before the crash, to put counters on the NAT's rules.
    node.steering.inject_batch("lan0", [make_udp_frame(
        CLIENT, GATEWAY, "192.168.1.5", "8.8.8.8", 1111, 53, b"hello")])
    before = nat_ingress_counters(node)
    print("NAT ingress entries before crash:", before)

    # Crash the DPI container: its namespace evaporates.
    victim = node.compute.get("edge-chain-dpi1")
    del node.host.namespaces[victim.netns]
    print(f"\n*** killed {victim.instance_id} "
          f"(namespace {victim.netns} gone) ***\n")

    result = node.orchestrator.reconcile("edge-chain")
    print(f"reconcile: converged={result.converged} in {result.ticks} "
          f"tick(s), {result.steps_executed} step(s)\n")

    print("event journal:")
    for event in node.orchestrator.events("edge-chain"):
        target = event.nf_id or event.rule_id
        print(f"  {event.seq:>3}  {event.kind:<15} {target:<6} "
              f"{event.detail}".rstrip())

    after = nat_ingress_counters(node)
    print("\nNAT ingress entries after heal:  ", after)
    assert after == before, "untouched NF lost its flow state!"
    replacement = node.compute.get("edge-chain-dpi1")
    assert replacement is not victim and replacement.is_running
    print("untouched NAT flow entries (ids + counters) preserved; "
          "DPI recreated and running.")


if __name__ == "__main__":
    main()
