#!/usr/bin/env python3
"""Flight-recorder tracing: sample a chain-4 batch, capture a heal.

The tracer rides both planes: sampled dataplane batches become span
trees (ingress -> dispatch -> fused chain -> per-hop -> egress), and
reconcile plans/steps become spans carrying the journal seq of the
event they logged.  A bounded flight recorder keeps the recent past;
an anomaly — here, an induced NF crash that the reconciler heals —
freezes it into a dump.  This example:

1. deploys a chain of four Docker DPIs and turns sampling up to 1/1
   (production default is 1/64 — unsampled batches pay one counter
   compare);
2. pushes traffic and prints the span tree of a sampled batch;
3. crashes one NF mid-chain and reconciles: the heal freezes a flight
   dump whose trigger seq and span seqs line up with the event
   journal;
4. prints the dump and the p50/p95/p99 of the batch-latency histogram.

Run:  PYTHONPATH=src python examples/trace_chain.py
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame
from repro.resources.capabilities import NodeCapabilities

CLIENT = MacAddress("02:aa:00:00:00:01")
GATEWAY = MacAddress("02:aa:00:00:00:02")


def build_chain4() -> Nffg:
    graph = Nffg(graph_id="c4", name="chain of four DPIs")
    names = ["a", "b", "c", "d"]
    for name in names:
        graph.add_nf(name, "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r0", "endpoint:lan", "vnf:a:in")
    for index, (left, right) in enumerate(zip(names, names[1:])):
        graph.add_flow_rule(f"r{index + 1}", f"vnf:{left}:out",
                            f"vnf:{right}:in")
    graph.add_flow_rule("r9", "vnf:d:out", "endpoint:wan")
    return graph


def traffic(count: int):
    return [make_udp_frame(CLIENT, GATEWAY, f"10.0.0.{2 + flow}",
                           "8.8.8.8", 4000 + flow, 53, b"q")
            for flow in range(count)]


def print_span_tree(spans: list, indent: str = "  ") -> None:
    by_id = {span["span-id"]: span for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent-id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def emit(span, depth):
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        seq = span.get("seq")
        seq_text = f" seq={seq}" if seq is not None else ""
        print(f"{indent}{'  ' * depth}{span['name']}{seq_text}"
              + (f" [{attr_text}]" if attr_text else ""))
        for child in children.get(span["span-id"], ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)


def main() -> None:
    node = ComputeNode("traced-edge",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    tracer = node.tracer
    tracer.sample_every = 1  # demo: sample every batch (default 1/64)
    node.deploy(build_chain4())

    for _ in range(3):
        node.steering.inject_batch("lan0", traffic(8))
    print(f"sampled {tracer.sampled_batches} batches; last batch's "
          "span tree:")
    spans = tracer.flight.recent_spans()
    batch_roots = [s for s in spans if s["name"] == "batch"]
    last_trace = batch_roots[-1]["trace-id"]
    print_span_tree([s for s in spans if s["trace-id"] == last_trace])

    # Crash an NF mid-chain: its namespace evaporates, the reconciler
    # heals it, and the heal anomaly freezes the flight recorder.
    victim = node.compute.get("c4-b")
    del node.host.namespaces[victim.netns]
    print(f"\n*** killed {victim.instance_id} ***\n")
    result = node.orchestrator.reconcile("c4")
    assert result.converged

    dumps = [d for d in tracer.flight.dump_list() if d["reason"] == "heal"]
    assert dumps, "the heal did not freeze a flight dump"
    dump = dumps[-1]
    events = {event.seq: event for event in node.orchestrator.events("c4")}
    trigger = events[dump["seq"]]
    print(f"flight dump frozen: reason={dump['reason']!r} "
          f"seq={dump['seq']} -> journal: {trigger.kind} "
          f"({trigger.detail})")
    span_seqs = sorted({s["seq"] for s in dump["spans"]
                        if s.get("seq") is not None})
    correlated = [seq for seq in span_seqs if seq in events]
    assert correlated, "no frozen span correlates with the journal"
    print(f"{len(dump['spans'])} frozen spans; journal-correlated seqs: "
          f"{correlated}")

    histogram = tracer.histograms.get("dataplane_batch", ("LSI-0",))
    quantiles = histogram.percentiles()
    print("\nLSI-0 batch latency: "
          + ", ".join(f"{name}={1e6 * value:.1f}us"
                      for name, value in quantiles.items()))
    print("\ntraffic still flows after the heal:")
    node.steering.inject_batch("lan0", traffic(4))
    print(f"  sampled batches now {tracer.sampled_batches}, "
          f"spans recorded {tracer.flight.recorded}")


if __name__ == "__main__":
    main()
