#!/usr/bin/env python3
"""The paper's validation scenario (§3): an IPsec endpoint on the CPE.

"a customer activates an IPSec endpoint VNF on his domestic CPE [...]
We compare the cost of running the Strongswan IPSec endpoint,
configured to use the ESP protocol in tunnel mode, as a NNF, a Docker
container and a VM using KVM/QEMU as hypervisor."

The script deploys the same NF three times (pinned per technology),
verifies each deployment really encrypts on the wire, and prints the
reproduced Table 1 next to the paper's numbers.
"""

from repro.perf.table1 import render_table, run_table1


def main() -> None:
    print("Reproducing Table 1 (three deployments + calibrated cost "
          "model)...\n")
    rows = run_table1(duration=0.2)
    print(render_table(rows))
    print()
    for row in rows:
        status = "ok" if (row.probe_delivered and row.esp_on_wire) \
            else "FAILED"
        print(f"  {row.flavor:<8} dataplane probe: frame delivered and "
              f"ESP-encrypted on the WAN wire [{status}]")
    print("\nper-packet cost breakdown (1500B frames):")
    for row in rows:
        parts = ", ".join(f"{name}={seconds*1e6:.2f}us"
                          for name, seconds in sorted(
                              row.breakdown.items()))
        print(f"  {row.flavor:<8} {parts}")

    native = next(r for r in rows if r.flavor == "native")
    docker = next(r for r in rows if r.flavor == "docker")
    vm = next(r for r in rows if r.flavor == "vm")
    print("\nshape checks (what the paper's Table 1 shows):")
    print(f"  VM/native throughput ratio: "
          f"{vm.throughput_mbps / native.throughput_mbps:.3f} "
          f"(paper: {796/1094:.3f})")
    print(f"  docker ~= native: "
          f"{docker.throughput_mbps / native.throughput_mbps:.3f}")
    print(f"  image ratio VM:docker:native = "
          f"{vm.image_mb:.0f}:{docker.image_mb:.0f}:{native.image_mb:.0f}")


if __name__ == "__main__":
    main()
