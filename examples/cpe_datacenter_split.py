#!/usr/bin/env python3
"""Scheduling a service across CPE and data center.

Paper §1: the goal is an infrastructure where "while resource-hungry
VNFs are run in the NSP data center, simpler ones are run in the CPE,
possibly as Native Network Functions".

A subscriber orders a service with four NFs:

* ``vpn``  — IPsec endpoint, pinned near the user (proximity=cpe);
* ``nat``  — cheap, runs anywhere;
* ``dpi``  — 2 GB of RAM: hopeless on a 512 MB CPE;
* ``fw``   — cheap firewall.

The multi-node scheduler places them across a residential CPE (no KVM!)
and a data-center server, then the per-node resolvers pick packaging:
native on the CPE, VM/Docker in the DC.
"""

from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import ResolutionPolicy, VnfResolver
from repro.catalog.scheduler import NodeDescriptor, VnfScheduler
from repro.nnf.plugins import stock_registry
from repro.resources.capabilities import NodeCapabilities


def main() -> None:
    repository = VnfRepository.stock()
    cpe_caps = NodeCapabilities.residential_cpe()       # no KVM on board
    dc_caps = NodeCapabilities.datacenter_server()

    cpe_nnfs = stock_registry()
    cpe = NodeDescriptor(
        name="cpe-home", capabilities=cpe_caps,
        resolver=VnfResolver(cpe_caps, nnf_status=cpe_nnfs.availability,
                             policy=ResolutionPolicy.PREFER_NATIVE))
    dc = NodeDescriptor(
        name="dc-server", capabilities=dc_caps,
        resolver=VnfResolver(dc_caps,
                             policy=ResolutionPolicy.PREFER_VM))
    scheduler = VnfScheduler([cpe, dc])

    service = [repository.get(name)
               for name in ("ipsec-endpoint", "nat", "dpi", "firewall")]
    placements = scheduler.schedule(service)

    print(f"{'NF':<16} {'node':<10} {'technology':<10} "
          f"{'RAM(MB)':>8} {'image':>22}")
    print("-" * 70)
    for placement in placements:
        impl = placement.implementation
        print(f"{placement.nf_name:<16} {placement.node:<10} "
              f"{impl.technology.value:<10} {impl.ram_mb:>8.1f} "
              f"{impl.image:>22}")

    by_name = {p.nf_name: p for p in placements}
    assert by_name["ipsec-endpoint"].node == "cpe-home"   # proximity pin
    assert by_name["ipsec-endpoint"].is_native            # NNF on the CPE
    assert by_name["dpi"].node == "dc-server"             # too big for CPE

    print("\nremaining headroom:")
    for node in (cpe, dc):
        print(f"  {node.name}: {node.cpu_free:.1f} cores, "
              f"{node.ram_free_mb:.0f} MB RAM")
    print("\nthe heavy DPI went to the data center; everything the CPE "
          "could run natively stayed at the edge.")


if __name__ == "__main__":
    main()
