#!/usr/bin/env python3
"""Sharable NNFs: several service graphs through one native component.

Paper §2: "Such NNFs must be 'sharable' to have multiple service graphs
traversing the same NF.  A NNF is 'sharable' only if (i) it can use an
ad-hoc marking mechanism to distinguish between traffic belonging to
different service graphs [...] and (ii) the NNF can create multiple
internal paths [...] to process the above multiple traffic streams in
isolation."

Three tenants deploy three NAT graphs on one CPE.  All three are served
by a *single* iptables instance in a single namespace; the adaptation
layer multiplexes them over one trunk port using per-graph VLANs, and
fwmark-keyed rules + policy routing keep the paths isolated.  The
script prints the shared namespace's state so the marking machinery is
visible, then proves isolation with live traffic.
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame, parse_frame

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


def tenant_graph(index: int) -> Nffg:
    graph = Nffg(graph_id=f"tenant{index}", name=f"tenant {index} NAT")
    graph.add_nf("nat", "nat", config={
        "lan.address": f"10.{index}.0.1/24",
        "wan.address": f"100.64.{index}.2/24",
        "gateway": f"100.64.{index}.1",
    })
    graph.add_endpoint("lan", f"lan{index}")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat:lan")
    graph.add_flow_rule("r2", "vnf:nat:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat:wan",
                        ip_dst=f"100.64.{index}.0/24")
    return graph


def main() -> None:
    node = ComputeNode("cpe")
    node.add_physical_interface("wan0")
    records = []
    for index in (1, 2, 3):
        node.add_physical_interface(f"lan{index}")
        records.append(node.deploy(tenant_graph(index)))

    instances = [record.instances["nat"] for record in records]
    print("three tenants, one native component:")
    for record, instance in zip(records, instances):
        print(f"  {record.graph_id}: netns={instance.netns} "
              f"mark={instance.mark} "
              f"vlans={instance.port_vlans}")
    assert len({i.netns for i in instances}) == 1, "must share one netns"
    assert len({i.mark for i in instances}) == 3, "marks must differ"

    shared_ns = node.host.namespace(instances[0].netns)
    print(f"\nshared namespace {shared_ns.name!r}:")
    print(f"  devices: {sorted(shared_ns.devices)}")
    print("  mangle rules (the marking mechanism):")
    for line in shared_ns.iptables.list_rules("mangle"):
        if "MARK" in line:
            print(f"    {line}")
    print("  policy-routing rules (the isolated internal paths):")
    for mark, mask, table in shared_ns.policy_rules:
        print(f"    fwmark {mark} -> table {table}")

    # Live proof: each tenant's traffic leaves from its own NAT pool.
    egress = []
    node.wire("wan0").attach_handler(
        lambda dev, frame: egress.append(parse_frame(frame)))
    for index in (1, 2, 3):
        node.wire(f"lan{index}").transmit(make_udp_frame(
            CLIENT, REMOTE, f"10.{index}.0.77", "8.8.8.8",
            1000 + index, 53, f"tenant{index}".encode()))
    print(f"\n{len(egress)} frames on the WAN wire:")
    for parsed in egress:
        print(f"  {parsed.ipv4.src} -> {parsed.ipv4.dst} "
              f"payload={parsed.udp.payload.decode()}")
    sources = {parsed.ipv4.src for parsed in egress}
    assert sources == {"100.64.1.2", "100.64.2.2", "100.64.3.2"}
    print("\neach tenant exited via its own masquerade address: "
          "paths are isolated.")


if __name__ == "__main__":
    main()
