#!/usr/bin/env python3
"""Mixed-technology service chain: NNF + Docker VNF in one NF-FG.

Paper §2: the driver abstraction "enables multiple drivers to coexist,
hence implementing complex services that include VNFs created with
different technologies".  Here a residential service chains:

    LAN -> firewall (native iptables) -> dpi (Docker, no native impl)
        -> WAN

The orchestrator keeps the cheap firewall native on the CPE but has to
fall back to Docker for the DPI, which simply has no native
counterpart.  The example then drives traffic through both NFs and
shows the firewall's policy (only DNS allowed) enforced by real
iptables rules inside the NNF namespace.
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame, parse_frame

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


def build_graph() -> Nffg:
    graph = Nffg(graph_id="residential", name="firewall + DPI chain")
    graph.add_nf("fw", "firewall", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "10.10.0.1/24",
        "gateway": "10.10.0.2",
        "firewall.allow": "udp:53",       # DNS only
    })
    graph.add_nf("dpi1", "dpi")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan")
    graph.add_flow_rule("r2", "vnf:fw:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:fw:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r4", "vnf:dpi1:in", "vnf:fw:wan")
    graph.add_flow_rule("r5", "vnf:dpi1:out", "endpoint:wan")
    graph.add_flow_rule("r6", "endpoint:wan", "vnf:dpi1:out")
    return graph


def main() -> None:
    node = ComputeNode("cpe")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    record = node.deploy(build_graph())

    print("one graph, two packaging technologies:")
    for nf_id, technology in record.technologies().items():
        print(f"  {nf_id:<5} -> {technology}")
    assert record.technologies()["fw"] == "native"
    assert record.technologies()["dpi1"] == "docker"

    egress = []
    node.wire("wan0").attach_handler(
        lambda dev, frame: egress.append(parse_frame(frame)))

    # Allowed: DNS.
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT, REMOTE, "192.168.1.50", "8.8.8.8", 40000, 53, b"dns"))
    # Blocked by the firewall policy: NTP.
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT, REMOTE, "192.168.1.50", "132.163.97.1", 40001, 123,
        b"ntp"))

    print(f"\nsent 2 LAN flows (DNS + NTP); {len(egress)} reached the WAN")
    for parsed in egress:
        print(f"  passed: {parsed.ipv4.src} -> {parsed.ipv4.dst} "
              f"dport={parsed.udp.dst_port}")
    assert len(egress) == 1 and egress[0].udp.dst_port == 53

    fw_ns = node.host.namespace(record.instances["fw"].netns)
    print("\nfirewall NNF namespace rules (iptables -S filter):")
    for line in fw_ns.iptables.list_rules("filter"):
        print(f"  {line}")


if __name__ == "__main__":
    main()
