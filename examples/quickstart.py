#!/usr/bin/env python3
"""Quickstart: deploy a NAT service graph on a CPE and pass traffic.

This is the smallest end-to-end tour of the public API:

1. build a compute node with two physical interfaces;
2. describe a service as an NF-FG (one NAT between LAN and WAN);
3. deploy — the orchestrator picks the *native* iptables NAT, because
   this node is a Linux CPE and the paper's placement policy prefers
   NNFs there;
4. push a real frame through the deployed dataplane and watch it come
   out masqueraded.
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame, parse_frame


def build_graph() -> Nffg:
    graph = Nffg(graph_id="quickstart", name="home NAT service")
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1",
    })
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return graph


def main() -> None:
    node = ComputeNode("my-cpe")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")

    record = node.deploy(build_graph())
    print("placement decisions (VNF vs NNF):")
    for nf_id, technology in record.technologies().items():
        print(f"  {nf_id} -> {technology}")
    print(f"flow rules installed: {record.rules_installed}")
    print(f"modeled deploy time:  {record.modeled_deploy_seconds:.2f}s")

    # Capture whatever leaves the WAN interface.
    egress = []
    node.wire("wan0").attach_handler(
        lambda dev, frame: egress.append(frame))

    # A LAN client talks to an internet host.
    client_mac = MacAddress("02:aa:00:00:00:01")
    node.wire("lan0").transmit(make_udp_frame(
        client_mac, MacAddress("02:aa:00:00:00:02"),
        "192.168.1.100", "8.8.8.8", 5353, 53, b"quickstart!"))

    parsed = parse_frame(egress[0])
    print(f"\nLAN sent      192.168.1.100 -> 8.8.8.8")
    print(f"WAN observed  {parsed.ipv4.src} -> {parsed.ipv4.dst} "
          f"(masqueraded by the native NAT)")
    assert parsed.ipv4.src == "203.0.113.2"

    print("\nnode state:")
    for line in node.steering.describe().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
