#!/usr/bin/env python3
"""Elastic chain: overload one NF, watch replicas appear and drain away.

The telemetry + autoscaling subsystem closes the loop the reconciler
opened: measured load edits *desired* state, and convergence is the
reconciler's job.  This example runs entirely on the discrete-event
simulator (virtual clock — deterministic, instant), driving:

1. a LAN -> DPI -> WAN chain with a scaling policy on the DPI
   (100 pps per replica, at most 3 replicas, 2 s cooldown);
2. a traffic source that offers 300 pps of 30 distinct UDP flows for
   the first 9 virtual seconds, then backs off to 30 pps;
3. the :class:`~repro.telemetry.ControlLoop`: every virtual second it
   reconcile-ticks the graph, samples per-NF rates into the metrics
   registry and lets the autoscaler act on them.

Watch the timeline: the overload is measurable after one sampling
window, the autoscaler jumps desired replicas 1 -> 3 (hash-LB steering
splits the flows with 5-tuple affinity — replica 0's instance is never
touched), and once the load drops the cooldown paces the drain
3 -> 2 -> 1.  The same figures are what ``GET /metrics`` (Prometheus)
and ``repro top`` serve on a live node.

Run:  PYTHONPATH=src python examples/elastic_chain.py
"""

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame
from repro.resources.capabilities import NodeCapabilities
from repro.sim.engine import Simulator
from repro.telemetry import Autoscaler, ControlLoop, ScalingPolicy

CLIENT = MacAddress("02:aa:00:00:00:01")
GATEWAY = MacAddress("02:aa:00:00:00:02")

OVERLOAD_PPS = 300
QUIET_PPS = 30
OVERLOAD_UNTIL = 9.0
HORIZON = 26.0


def build_graph() -> Nffg:
    graph = Nffg(graph_id="elastic", name="elastic DPI chain")
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi1:in")
    graph.add_flow_rule("r2", "vnf:dpi1:out", "endpoint:wan")
    return graph


def frames_for(rate: int) -> list:
    """``rate`` frames spread over 30 distinct 5-tuples."""
    out = []
    per_flow = max(rate // 30, 1)
    for flow in range(30):
        for _ in range(per_flow):
            out.append(make_udp_frame(
                CLIENT, GATEWAY, f"10.7.{flow % 6}.{flow % 27}",
                "198.51.100.10", 7000 + flow, 53, b"q"))
    return out


def main() -> None:
    node = ComputeNode("dc",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")

    sim = Simulator()
    scaler = Autoscaler(node.orchestrator.reconciler, node.telemetry)
    scaler.add_policy("elastic", ScalingPolicy(
        nf_id="dpi1", target_pps=100.0, max_replicas=3,
        cooldown_seconds=2.0))
    loop = ControlLoop(node.orchestrator, node.telemetry,
                       autoscaler=scaler, interval=1.0)
    loop.run_sim(sim)

    node.deploy(build_graph())
    print("deployed 'elastic' with 1 DPI replica; policy: 100 pps/replica,"
          " max 3, cooldown 2s")
    print(f"offered load: {OVERLOAD_PPS} pps until t={OVERLOAD_UNTIL:g}s, "
          f"then {QUIET_PPS} pps\n")

    def traffic():
        while sim.now < HORIZON - 2.0:
            rate = (OVERLOAD_PPS if sim.now < OVERLOAD_UNTIL
                    else QUIET_PPS)
            node.steering.inject_batch("lan0", frames_for(rate))
            yield sim.timeout(1.0)

    timeline: list[tuple[float, int, float]] = []

    def watcher():
        while True:
            replicas = node.telemetry.replica_counts("elastic") \
                .get("dpi1", 0)
            pps = node.telemetry.group_pps("elastic", "dpi1") or 0.0
            timeline.append((sim.now, replicas, pps))
            yield sim.timeout(1.0)

    sim.process(traffic(), name="traffic")
    sim.process(watcher(), name="watcher")
    sim.run(until=HORIZON)

    print(f"{'t':>5}  {'replicas':>8}  {'measured pps':>12}")
    for t, replicas, pps in timeline:
        bar = "#" * replicas
        print(f"{t:>5.0f}  {replicas:>8}  {pps:>12.0f}  {bar}")

    print("\nautoscale decisions:")
    for decision in scaler.decisions:
        print(f"  t={decision.at:>4.0f}s  {decision.from_replicas} -> "
              f"{decision.to_replicas}  ({decision.reason})")

    availability = node.telemetry.availability("elastic")
    print(f"\ntime-to-scale (last decision -> converged): "
          f"{availability['time-to-scale-seconds']:g}s virtual")

    counts = [replicas for _, replicas, _ in timeline]
    assert max(counts) == 3, "expected the chain to scale out to 3"
    assert counts[-1] == 1, "expected the chain to drain back to 1"
    assert [(d.from_replicas, d.to_replicas) for d in scaler.decisions] \
        == [(1, 3), (3, 2), (2, 1)]
    print("\nOK: scaled 1 -> 3 under overload, drained 3 -> 2 -> 1 "
          "after it passed")


if __name__ == "__main__":
    main()
