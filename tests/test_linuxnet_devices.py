"""NetDevice / veth / bridge-free delivery tests."""

import pytest

from repro.linuxnet import NetworkNamespace, VethPair
from repro.linuxnet.devices import NetDevice
from repro.net import ETHERTYPE_IPV4, EthernetFrame, MacAddress, make_udp_frame


def frame_between(a, b, payload=b"x"):
    return make_udp_frame(a.mac, b.mac, "10.0.0.1", "10.0.0.2",
                          1000, 2000, payload)


def test_veth_cross_delivery():
    pair = VethPair("v0", "v1")
    pair.a.set_up()
    pair.b.set_up()
    received = []
    pair.b.attach_handler(lambda dev, frame: received.append(frame))
    pair.a.transmit(frame_between(pair.a, pair.b))
    assert len(received) == 1
    assert pair.a.tx_packets == 1
    assert pair.b.rx_packets == 1


def test_down_device_drops_tx_and_rx():
    pair = VethPair("v0", "v1")
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, frame: None)
    pair.a.transmit(frame_between(pair.a, pair.b))  # a is down
    assert pair.a.tx_dropped == 1
    pair.a.set_up()
    pair.b.set_down()
    pair.a.transmit(frame_between(pair.a, pair.b))
    assert pair.b.rx_dropped == 1


def test_mtu_enforced_on_transmit():
    pair = VethPair("v0", "v1", mtu=100)
    pair.a.set_up()
    pair.b.set_up()
    received = []
    pair.b.attach_handler(lambda dev, frame: received.append(frame))
    big = make_udp_frame(pair.a.mac, pair.b.mac, "10.0.0.1", "10.0.0.2",
                         1, 2, b"y" * 200)
    pair.a.transmit(big)
    assert received == []
    assert pair.a.tx_dropped == 1


def test_handler_exclusive():
    device = NetDevice("eth0")
    device.attach_handler(lambda dev, frame: None)
    with pytest.raises(ValueError):
        device.attach_handler(lambda dev, frame: None)
    device.detach_handler()
    device.attach_handler(lambda dev, frame: None)


def test_unique_auto_macs():
    macs = {str(NetDevice(f"d{i}").mac) for i in range(50)}
    assert len(macs) == 50


def test_address_management():
    device = NetDevice("eth0")
    device.add_address("192.168.1.1", 24)
    assert device.owns_address("192.168.1.1")
    with pytest.raises(ValueError):
        device.add_address("192.168.1.1", 24)


def test_device_requires_valid_name_and_mtu():
    with pytest.raises(ValueError):
        NetDevice("")
    with pytest.raises(ValueError):
        NetDevice("eth0", mtu=10)


def test_namespace_exclusive_membership():
    ns_a = NetworkNamespace("a")
    ns_b = NetworkNamespace("b")
    device = NetDevice("eth0")
    ns_a.add_device(device)
    with pytest.raises(ValueError):
        ns_b.add_device(device)
    ns_a.remove_device("eth0")
    ns_b.add_device(device)
    assert device.namespace is ns_b


def test_unattached_device_counts_drops():
    device = NetDevice("orphan")
    device.set_up()
    device.receive(EthernetFrame(dst=device.mac,
                                 src=MacAddress("02:00:00:00:00:99"),
                                 ethertype=ETHERTYPE_IPV4, payload=b""))
    assert device.rx_dropped == 1
    assert device.rx_packets == 0
